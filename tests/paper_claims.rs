//! Integration tests that pin the paper's qualitative claims — the
//! relationships its figures are built on. Each test names the claim and
//! the paper section it comes from.

use sssp_mps::core::config::SsspConfig;
use sssp_mps::core::engine::{run_sssp, SsspOutput};
use sssp_mps::core::instrument::PhaseKind;
use sssp_mps::dist::DistGraph;
use sssp_mps::graph::rmat::{RmatGenerator, RmatParams};
use sssp_mps::graph::{Csr, CsrBuilder};
use sssp_mps::prelude::MachineModel;

fn rmat(params: RmatParams, scale: u32) -> Csr {
    let el = RmatGenerator::new(params, scale, 16)
        .seed(1)
        .generate_weighted(255);
    CsrBuilder::new().build(&el)
}

fn run(g: &Csr, cfg: &SsspConfig) -> SsspOutput {
    let dg = DistGraph::build(g, 8, 4);
    let root = g.vertices().find(|&v| g.degree(v) > 0).unwrap();
    run_sssp(&dg, root, cfg, &MachineModel::bgq_like())
}

/// §II-B: work-done ordering — Dijkstra ≤ Δ-stepping ≤ Bellman-Ford.
#[test]
fn work_done_ordering() {
    let g = rmat(RmatParams::RMAT1, 11);
    let dij = run(&g, &SsspConfig::dijkstra()).stats.relaxations_total();
    let del = run(&g, &SsspConfig::del(25)).stats.relaxations_total();
    let bf = run(&g, &SsspConfig::bellman_ford())
        .stats
        .relaxations_total();
    assert!(dij <= del + del / 4, "Dijkstra {dij} should be ≲ Del {del}");
    assert!(del < bf, "Del {del} should be < Bellman-Ford {bf}");
}

/// §II-B: phase ordering — Bellman-Ford ≤ Δ-stepping ≤ Dijkstra.
#[test]
fn phase_count_ordering() {
    let g = rmat(RmatParams::RMAT1, 11);
    let dij = run(&g, &SsspConfig::dijkstra()).stats.phases;
    let del = run(&g, &SsspConfig::del(25)).stats.phases;
    let bf = run(&g, &SsspConfig::bellman_ford()).stats.phases;
    assert!(bf <= del, "BF {bf} phases should be ≤ Del {del}");
    assert!(del <= dij, "Del {del} phases should be ≤ Dijkstra {dij}");
}

/// §III-A: IOS cuts short-edge relaxations (paper: ≈ 10%) without touching
/// long-edge counts.
#[test]
fn ios_prunes_short_relaxations() {
    let g = rmat(RmatParams::RMAT1, 11);
    let base = run(&g, &SsspConfig::del(25));
    let ios = run(&g, &SsspConfig::del(25).with_ios(true));
    assert!(ios.stats.short_relaxations < base.stats.short_relaxations);
    assert_eq!(
        ios.stats.long_push_relaxations, base.stats.long_push_relaxations,
        "IOS must not change the long-edge relaxation count"
    );
    // The deferred outer shorts cost less than what the short phases saved.
    assert!(
        ios.stats.short_relaxations + ios.stats.outer_short_relaxations
            < base.stats.short_relaxations + base.stats.outer_short_relaxations
    );
}

/// §III-B/Fig 3b: pruning beats even Dijkstra's 2m relaxation bound on the
/// skewed family (paper: ≈ 5×; small scales give a smaller but clear win).
#[test]
fn pruning_beats_dijkstra_on_rmat1() {
    let g = rmat(RmatParams::RMAT1, 12);
    let dij = run(&g, &SsspConfig::dijkstra()).stats.relaxations_total();
    let prune = run(&g, &SsspConfig::prune(25)).stats.relaxations_total();
    assert!(
        (prune as f64) < 0.6 * dij as f64,
        "Prune {prune} not well below Dijkstra {dij}"
    );
}

/// §III-D/Fig 10d: hybridization collapses the bucket count (paper: ~30 → ≤5)
/// and the collapse is insensitive to scale.
#[test]
fn hybridization_collapses_buckets() {
    for scale in [10u32, 12] {
        let g = rmat(RmatParams::RMAT1, scale);
        let del = run(&g, &SsspConfig::del(25));
        let opt = run(&g, &SsspConfig::opt(25));
        assert!(del.stats.buckets() >= 10, "Del should use many buckets");
        assert!(opt.stats.buckets() <= 6, "OPT should use few buckets");
    }
}

/// §III-B/Fig 4: long-edge phases dominate short-edge phases in relaxations.
#[test]
fn long_phases_dominate() {
    let g = rmat(RmatParams::RMAT1, 12);
    let out = run(&g, &SsspConfig::del(25));
    let short: u64 = out
        .stats
        .phase_records
        .iter()
        .filter(|r| r.kind == PhaseKind::Short)
        .map(|r| r.relaxations)
        .sum();
    let long: u64 = out
        .stats
        .phase_records
        .iter()
        .filter(|r| r.kind == PhaseKind::LongPush)
        .map(|r| r.relaxations)
        .sum();
    assert!(long > short, "long {long} should dominate short {short}");
}

/// §IV-E/Fig 8: RMAT-1's maximum degree vastly exceeds RMAT-2's and the gap
/// widens with scale.
#[test]
fn degree_skew_gap_widens() {
    let gap = |scale: u32| {
        let d1 = rmat(RmatParams::RMAT1, scale).max_degree() as f64;
        let d2 = rmat(RmatParams::RMAT2, scale).max_degree() as f64;
        d1 / d2
    };
    let g10 = gap(10);
    let g13 = gap(13);
    assert!(
        g10 > 2.0,
        "RMAT-1 should be more skewed at scale 10 ({g10:.1}x)"
    );
    assert!(
        g13 > g10,
        "gap should widen with scale ({g10:.1}x → {g13:.1}x)"
    );
}

/// §IV-C vs §IV-D: pruning's relaxation reduction is stronger on RMAT-1
/// than on RMAT-2 (paper: 5–6× vs ≈ 2×).
#[test]
fn pruning_stronger_on_rmat1() {
    let reduction = |params| {
        let g = rmat(params, 12);
        let del = run(&g, &SsspConfig::del(25)).stats.relaxations_total() as f64;
        let prune = run(&g, &SsspConfig::prune(25)).stats.relaxations_total() as f64;
        del / prune
    };
    let r1 = reduction(RmatParams::RMAT1);
    let r2 = reduction(RmatParams::RMAT2);
    assert!(
        r1 > r2,
        "RMAT-1 reduction {r1:.2}x should exceed RMAT-2 {r2:.2}x"
    );
}

/// §IV/Fig 10–11: the simulated GTEPS ranking Del ≤ Prune < OPT holds on
/// both families. (On RMAT-2 the paper's pruning gain is only ≈ 12%, so
/// Prune is allowed to tie Del there; OPT must strictly win everywhere.)
/// Sender-side coalescing is pinned off: the paper's machines had none,
/// and it flatters the push-heavy Del baseline (unpruned pushes generate
/// the most duplicate deliveries), which would blur the algorithmic
/// comparison this test is about.
#[test]
fn gteps_ranking() {
    for params in [RmatParams::RMAT1, RmatParams::RMAT2] {
        let g = rmat(params, 12);
        let m = g.num_undirected_edges() as u64;
        let del = run(&g, &SsspConfig::del(25).with_coalescing(false))
            .stats
            .gteps(m);
        let prune = run(&g, &SsspConfig::prune(25).with_coalescing(false))
            .stats
            .gteps(m);
        let opt = run(&g, &SsspConfig::opt(25).with_coalescing(false))
            .stats
            .gteps(m);
        // RMAT-2's pruning gain is small even in the paper (≈ 12%) and at
        // this reproduction's scale it is break-even; only guard against a
        // real regression.
        assert!(
            prune >= 0.95 * del,
            "Prune {prune:.3} regressed vs Del {del:.3}"
        );
        assert!(opt > del, "OPT {opt:.3} should beat Del {del:.3}");
        assert!(opt > prune, "OPT {opt:.3} should beat Prune {prune:.3}");
    }
    // On the heavily skewed family the pruning win itself must be strict.
    let g = rmat(RmatParams::RMAT1, 12);
    let m = g.num_undirected_edges() as u64;
    let del = run(&g, &SsspConfig::del(25).with_coalescing(false))
        .stats
        .gteps(m);
    let prune = run(&g, &SsspConfig::prune(25).with_coalescing(false))
        .stats
        .gteps(m);
    assert!(
        prune > del,
        "RMAT-1: Prune {prune:.3} should beat Del {del:.3}"
    );
}

/// §IV-E claims RMAT-2's shortest distances span a larger range than
/// RMAT-1's at the paper's scales. At this reproduction's scales the two
/// families span *comparable* ranges (measured: 12–18 populated Δ=25
/// buckets for both at scales 11–15), so this test pins only the part that
/// does reproduce: both families populate enough buckets for hybridization
/// to have something to merge, and the hybrid run collapses that count.
#[test]
fn both_families_populate_many_buckets_and_hybrid_collapses_them() {
    use sssp_mps::core::seq;
    for params in [RmatParams::RMAT1, RmatParams::RMAT2] {
        let g = rmat(params, 12);
        let root = g.vertices().find(|&v| g.degree(v) > 0).unwrap();
        let dist = seq::dijkstra(&g, root);
        let (buckets, _) = seq::distance_spread(&dist, 25);
        assert!(buckets >= 8, "expected a wide bucket span, got {buckets}");
        let opt = run(&g, &SsspConfig::opt(25));
        assert!(opt.stats.buckets() as usize * 2 < buckets);
    }
}

/// Fig 9: mid-range Δ beats both extremes in simulated GTEPS. (Bellman-
/// Ford's redundancy only bites once there is enough work per rank, so this
/// runs at the largest scale the test budget allows.)
#[test]
fn mid_delta_beats_extremes() {
    let g = rmat(RmatParams::RMAT1, 14);
    let m = g.num_undirected_edges() as u64;
    let dij = run(&g, &SsspConfig::dijkstra()).stats.gteps(m);
    let mid = run(&g, &SsspConfig::del(50)).stats.gteps(m);
    let bf = run(&g, &SsspConfig::bellman_ford()).stats.gteps(m);
    assert!(mid > dij, "Δ=50 ({mid:.3}) should beat Dijkstra ({dij:.3})");
    assert!(
        mid > bf,
        "Δ=50 ({mid:.3}) should beat Bellman-Ford ({bf:.3})"
    );
}
