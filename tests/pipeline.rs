//! End-to-end integration tests spanning all crates: generator → CSR →
//! (optional splitting) → distributed graph → engine → validation.

use sssp_mps::core::config::{DirectionPolicy, SsspConfig};
use sssp_mps::core::engine::run_sssp;
use sssp_mps::core::validate::assert_matches_dijkstra;
use sssp_mps::dist::{split_heavy_vertices, DistGraph};
use sssp_mps::graph::rmat::{RmatGenerator, RmatParams};
use sssp_mps::graph::{Csr, CsrBuilder};
use sssp_mps::prelude::MachineModel;

fn rmat(params: RmatParams, scale: u32, seed: u64) -> Csr {
    let el = RmatGenerator::new(params, scale, 16)
        .seed(seed)
        .generate_weighted(255);
    CsrBuilder::new().build(&el)
}

#[test]
fn full_pipeline_rmat1() {
    let g = rmat(RmatParams::RMAT1, 11, 3);
    let dg = DistGraph::build(&g, 8, 4);
    for cfg in [
        SsspConfig::del(25),
        SsspConfig::prune(25),
        SsspConfig::opt(25),
    ] {
        let out = run_sssp(&dg, 0, &cfg, &MachineModel::bgq_like());
        assert_matches_dijkstra(&g, 0, &out);
    }
}

#[test]
fn full_pipeline_rmat2() {
    let g = rmat(RmatParams::RMAT2, 11, 4);
    let dg = DistGraph::build(&g, 6, 4);
    let out = run_sssp(&dg, 1, &SsspConfig::opt(40), &MachineModel::bgq_like());
    assert_matches_dijkstra(&g, 1, &out);
}

#[test]
fn full_pipeline_with_splitting() {
    let g = rmat(RmatParams::RMAT1, 11, 5);
    let thr = sssp_mps::dist::split::auto_threshold(&g, 8).min(200);
    let (split, part, rep) = split_heavy_vertices(&g, 8, thr);
    assert!(
        rep.proxies_created > 0,
        "scale-11 RMAT-1 should have heavy hubs"
    );
    let dg = DistGraph::build_with_partition(&split, part, 4, g.num_undirected_edges() as u64);
    let out = run_sssp(&dg, 0, &SsspConfig::lb_opt(25), &MachineModel::bgq_like());
    assert_matches_dijkstra(&g, 0, &out);
}

#[test]
fn social_standin_pipeline() {
    let gen = sssp_mps::graph::social::social_preset("livejournal", 4096).unwrap();
    let g = CsrBuilder::new().build(&gen.generate());
    let dg = DistGraph::build(&g, 4, 4);
    let root = g.vertices().find(|&v| g.degree(v) > 0).unwrap();
    let out = run_sssp(&dg, root, &SsspConfig::opt(40), &MachineModel::bgq_like());
    assert_matches_dijkstra(&g, root, &out);
}

#[test]
fn multiple_roots_same_graph() {
    let g = rmat(RmatParams::RMAT2, 10, 6);
    let dg = DistGraph::build(&g, 5, 2);
    for root in [0u32, 17, 250, 900] {
        let out = run_sssp(&dg, root, &SsspConfig::opt(25), &MachineModel::bgq_like());
        assert_matches_dijkstra(&g, root, &out);
    }
}

#[test]
fn forced_sequences_agree_with_heuristic_results() {
    use sssp_mps::core::config::LongPhaseMode::*;
    let g = rmat(RmatParams::RMAT1, 10, 7);
    let dg = DistGraph::build(&g, 4, 2);
    let model = MachineModel::bgq_like();
    let heur = run_sssp(&dg, 0, &SsspConfig::prune(25), &model);
    for forced in [
        vec![Push; 8],
        vec![Pull; 8],
        vec![Push, Pull, Push, Pull, Push, Pull],
    ] {
        let cfg = SsspConfig::prune(25).with_direction(DirectionPolicy::Forced(forced));
        let out = run_sssp(&dg, 0, &cfg, &model);
        assert_eq!(out.distances, heur.distances);
    }
}

#[test]
fn facade_prelude_covers_the_quickstart_flow() {
    use sssp_mps::prelude::*;
    let el = RmatGenerator::new(RmatParams::RMAT1, 9, 8)
        .seed(1)
        .generate_weighted(255);
    let csr = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&csr, 3, 2);
    let out = run_sssp(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like());
    assert_eq!(out.distances, seq::dijkstra(&csr, 0));
}

#[test]
fn deterministic_across_identical_pipelines() {
    let run = || {
        let g = rmat(RmatParams::RMAT1, 10, 9);
        let dg = DistGraph::build(&g, 6, 4);
        run_sssp(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like())
    };
    let a = run();
    let b = run();
    assert_eq!(a.distances, b.distances);
    assert_eq!(a.stats.relaxations_total(), b.stats.relaxations_total());
    assert_eq!(
        a.stats.comm.total_remote_bytes(),
        b.stats.comm.total_remote_bytes()
    );
    assert!((a.stats.ledger.total_s() - b.stats.ledger.total_s()).abs() < 1e-15);
}

#[test]
fn unreachable_component_reported() {
    // Two disjoint paths; root in the first.
    let mut el = sssp_mps::graph::EdgeList::new(10);
    for i in 1..5u32 {
        el.push(i - 1, i, 3);
    }
    for i in 6..10u32 {
        el.push(i - 1, i, 3);
    }
    let g = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&g, 3, 1);
    let out = run_sssp(&dg, 0, &SsspConfig::opt(5), &MachineModel::bgq_like());
    assert_eq!(out.reachable(), 5);
    for v in 5..10u32 {
        assert_eq!(out.dist(v), u64::MAX);
    }
}
