//! Property-based tests of the graph substrate.

use proptest::prelude::*;

use sssp_graph::{gen, CsrBuilder, Edge, EdgeList};

fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (2usize..80).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..100), 0..300);
        edges.prop_map(move |es| EdgeList {
            n,
            edges: es.into_iter().map(|(u, v, w)| Edge { u, v, w }).collect(),
        })
    })
}

proptest! {
    #[test]
    fn csr_preserves_non_loop_edges(el in arb_edge_list()) {
        let g = CsrBuilder::new().build(&el);
        let expected = el.edges.iter().filter(|e| e.u != e.v).count();
        prop_assert_eq!(g.num_undirected_edges(), expected);
        prop_assert_eq!(g.num_directed_edges(), 2 * expected);
    }

    #[test]
    fn csr_edge_multiset_roundtrips(el in arb_edge_list()) {
        let g = CsrBuilder::new().build(&el);
        let mut original: Vec<(u32, u32, u32)> = el
            .edges
            .iter()
            .filter(|e| e.u != e.v)
            .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w))
            .collect();
        let mut roundtrip: Vec<(u32, u32, u32)> =
            g.undirected_edges().map(|(u, v, w)| (u.min(v), u.max(v), w)).collect();
        original.sort_unstable();
        roundtrip.sort_unstable();
        prop_assert_eq!(original, roundtrip);
    }

    #[test]
    fn rows_are_weight_sorted(el in arb_edge_list()) {
        let g = CsrBuilder::new().build(&el);
        for v in g.vertices() {
            let ws: Vec<u32> = g.row(v).map(|(_, w)| w).collect();
            prop_assert!(ws.windows(2).all(|p| p[0] <= p[1]));
        }
    }

    #[test]
    fn count_weight_below_matches_linear_scan(el in arb_edge_list(), bound in 0u32..120) {
        let g = CsrBuilder::new().build(&el);
        for v in g.vertices() {
            let expect = g.row(v).filter(|&(_, w)| w < bound).count();
            prop_assert_eq!(g.count_weight_below(v, bound), expect);
        }
    }

    #[test]
    fn degrees_sum_to_directed_edges(el in arb_edge_list()) {
        let g = CsrBuilder::new().build(&el);
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, g.num_directed_edges());
    }

    #[test]
    fn dedup_is_idempotent_and_minimal(el in arb_edge_list()) {
        let g = CsrBuilder::new().dedup_min_weight().build(&el);
        // No duplicate (u, v) pairs remain in any row.
        for v in g.vertices() {
            let mut targets: Vec<u32> = g.row(v).map(|(t, _)| t).collect();
            let before = targets.len();
            targets.sort_unstable();
            targets.dedup();
            prop_assert_eq!(before, targets.len());
        }
    }

    #[test]
    fn uniform_generator_respects_bounds(
        n in 2usize..60,
        m in 0usize..200,
        w_max in 1u32..50,
        seed in 0u64..1000,
    ) {
        let el = gen::uniform(n, m, w_max, seed);
        prop_assert_eq!(el.len(), m);
        for e in &el.edges {
            prop_assert!((e.u as usize) < n && (e.v as usize) < n);
            prop_assert!(e.w >= 1 && e.w <= w_max);
        }
    }

    #[test]
    fn rmat_deterministic_across_calls(scale in 4u32..9, seed in 0u64..100) {
        use sssp_graph::rmat::{RmatGenerator, RmatParams};
        let g1 = RmatGenerator::new(RmatParams::RMAT2, scale, 4).seed(seed).generate_tuples();
        let g2 = RmatGenerator::new(RmatParams::RMAT2, scale, 4).seed(seed).generate_tuples();
        prop_assert_eq!(g1, g2);
    }
}
