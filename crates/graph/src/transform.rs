//! Graph transformations used in preprocessing pipelines.
//!
//! Real deployments of the paper's algorithm preprocess their inputs: the
//! Graph 500 spec scrambles ids (done at generation here), production runs
//! extract the giant component (SSSP from a random root otherwise wastes a
//! run on a tiny fragment), and locality studies relabel vertices by degree.

use crate::components::components_union_find;
use crate::{Csr, Edge, EdgeList, VertexId};

/// Extract the subgraph induced by `keep` (vertices with `keep[v] = true`).
/// Returns the new edge list plus the mapping `old id → new id`
/// (`u32::MAX` for dropped vertices).
pub fn induced_subgraph(el: &EdgeList, keep: &[bool]) -> (EdgeList, Vec<VertexId>) {
    assert_eq!(keep.len(), el.n);
    let mut map = vec![VertexId::MAX; el.n];
    let mut next = 0 as VertexId;
    for (v, &k) in keep.iter().enumerate() {
        if k {
            map[v] = next;
            next += 1;
        }
    }
    let mut out = EdgeList::new(next as usize);
    for e in &el.edges {
        let (nu, nv) = (map[e.u as usize], map[e.v as usize]);
        if nu != VertexId::MAX && nv != VertexId::MAX {
            out.edges.push(Edge {
                u: nu,
                v: nv,
                w: e.w,
            });
        }
    }
    (out, map)
}

/// Keep only the largest connected component. Returns the reduced edge list
/// and the old→new id mapping.
pub fn largest_component(el: &EdgeList) -> (EdgeList, Vec<VertexId>) {
    if el.n == 0 {
        return (EdgeList::new(0), Vec::new());
    }
    let labels = components_union_find(el);
    let k = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut counts = vec![0usize; k];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    let giant = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(l, _)| l as u32)
        .unwrap();
    let keep: Vec<bool> = labels.iter().map(|&l| l == giant).collect();
    induced_subgraph(el, &keep)
}

/// Relabel vertices so ids are ordered by descending degree (hubs first).
/// Returns the relabeled edge list and the old→new mapping. This is the
/// *opposite* of the Graph 500 scrambling — it concentrates hubs at low
/// ids, which the partition ablation uses to stress block distribution.
pub fn relabel_by_degree(el: &EdgeList) -> (EdgeList, Vec<VertexId>) {
    let mut degree = vec![0u32; el.n];
    for e in &el.edges {
        if e.u != e.v {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
    }
    let mut order: Vec<VertexId> = (0..el.n as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse((degree[v as usize], std::cmp::Reverse(v))));
    let mut map = vec![0 as VertexId; el.n];
    for (new_id, &old_id) in order.iter().enumerate() {
        map[old_id as usize] = new_id as VertexId;
    }
    let mut out = EdgeList::new(el.n);
    for e in &el.edges {
        out.edges.push(Edge {
            u: map[e.u as usize],
            v: map[e.v as usize],
            w: e.w,
        });
    }
    (out, map)
}

/// Check that two CSR graphs are isomorphic under an explicit vertex
/// mapping (used to validate transforms in tests): `map[old] = new`.
pub fn is_isomorphic_under(a: &Csr, b: &Csr, map: &[VertexId]) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_directed_edges() != b.num_directed_edges() {
        return false;
    }
    for v in a.vertices() {
        let mut ra: Vec<(VertexId, u32)> = a.row(v).map(|(t, w)| (map[t as usize], w)).collect();
        let mut rb: Vec<(VertexId, u32)> = b.row(map[v as usize]).collect();
        ra.sort_unstable();
        rb.sort_unstable();
        if ra != rb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CsrBuilder};

    #[test]
    fn induced_subgraph_drops_cross_edges() {
        let el = gen::path(5, 1); // 0-1-2-3-4
        let keep = vec![true, true, false, true, true];
        let (sub, map) = induced_subgraph(&el, &keep);
        assert_eq!(sub.n, 4);
        // Only edges 0-1 and 3-4 survive.
        assert_eq!(sub.edges.len(), 2);
        assert_eq!(map[2], u32::MAX);
        assert_eq!(map[3], 2);
    }

    #[test]
    fn largest_component_extraction() {
        let mut el = gen::path(5, 1); // component of 5
        el.n = 8;
        el.push(5, 6, 1); // component of 2; vertex 7 isolated
        let (giant, map) = largest_component(&el);
        assert_eq!(giant.n, 5);
        assert_eq!(giant.edges.len(), 4);
        assert_eq!(map[6], u32::MAX);
        assert_eq!(map[7], u32::MAX);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity_sized() {
        let el = gen::clique(6, 2);
        let (giant, _) = largest_component(&el);
        assert_eq!(giant.n, 6);
        assert_eq!(giant.edges.len(), 15);
    }

    #[test]
    fn relabel_by_degree_puts_hub_first() {
        let el = gen::star(10, 1);
        let (rel, map) = relabel_by_degree(&el);
        assert_eq!(map[0], 0); // the center has the top degree
        let g = CsrBuilder::new().build(&rel);
        assert_eq!(g.degree(0), 9);
        // Degrees are non-increasing in the new id order.
        let degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn relabel_preserves_structure() {
        let el = gen::uniform(60, 300, 20, 9);
        let (rel, map) = relabel_by_degree(&el);
        let a = CsrBuilder::new().build(&el);
        let b = CsrBuilder::new().build(&rel);
        assert!(is_isomorphic_under(&a, &b, &map));
    }

    #[test]
    fn distances_invariant_under_relabeling() {
        // Shortest distances commute with the relabeling map.
        let el = gen::uniform(50, 260, 15, 4);
        let (rel, map) = relabel_by_degree(&el);
        let a = CsrBuilder::new().build(&el);
        let b = CsrBuilder::new().build(&rel);
        // Simple local Dijkstra on both.
        let dij = |g: &Csr, root: u32| -> Vec<u64> {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut dist = vec![u64::MAX; g.num_vertices()];
            let mut heap = BinaryHeap::new();
            dist[root as usize] = 0;
            heap.push(Reverse((0u64, root)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                for (v, w) in g.row(u) {
                    let nd = d + w as u64;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            dist
        };
        let da = dij(&a, 0);
        let db = dij(&b, map[0]);
        for v in 0..50usize {
            assert_eq!(da[v], db[map[v] as usize], "vertex {v}");
        }
    }

    #[test]
    fn empty_inputs() {
        let el = EdgeList::new(0);
        let (giant, map) = largest_component(&el);
        assert_eq!(giant.n, 0);
        assert!(map.is_empty());
    }
}
