//! Deterministic structured generators for tests, examples and the paper's
//! worked examples.

use crate::prng::SplitMix;
use crate::{EdgeList, VertexId, Weight};

/// Uniform random graph: `m` edges with independently uniform endpoints
/// (self-loops possible; the builder drops them). G(n, m) style.
pub fn uniform(n: usize, m: usize, w_max: u32, seed: u64) -> EdgeList {
    assert!(n > 0);
    let mut el = EdgeList::new(n);
    for i in 0..m {
        let mut rng = SplitMix::derive(seed, i as u64);
        let u = rng.next_below(n as u64) as VertexId;
        let v = rng.next_below(n as u64) as VertexId;
        let w = 1 + rng.next_below(w_max.max(1) as u64) as Weight;
        el.push(u, v, w);
    }
    el
}

/// Path 0 — 1 — 2 — … — (n−1) with the given per-hop weight.
pub fn path(n: usize, w: Weight) -> EdgeList {
    let mut el = EdgeList::new(n);
    for i in 1..n {
        el.push((i - 1) as VertexId, i as VertexId, w);
    }
    el
}

/// Star: center 0 connected to 1..n−1.
pub fn star(n: usize, w: Weight) -> EdgeList {
    let mut el = EdgeList::new(n);
    for i in 1..n {
        el.push(0, i as VertexId, w);
    }
    el
}

/// Complete graph on `n` vertices.
pub fn clique(n: usize, w: Weight) -> EdgeList {
    let mut el = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            el.push(u as VertexId, v as VertexId, w);
        }
    }
    el
}

/// The illustrative graph of the paper's Fig. 6 (generalized): a root vertex
/// connected to a `clique_size`-clique by weight-`w_root` edges; the clique is
/// internally connected with weight-`w_clique` edges; each clique vertex is
/// further connected to `fanout` private "isolated" leaf vertices by
/// weight-`w_leaf` edges.
///
/// With `Δ = 5`, `w_root = 10`, `w_clique = 6`, `w_leaf = 10` and the paper's
/// sizes this reproduces Fig. 6's counts exactly: the push model spends 40
/// relaxations (5 root edges + 30 for the clique epoch + 5 leaf edges), while
/// switching the clique epoch to pull drops its cost from 30 (1 backward +
/// 4 self + 1 forward edge per clique vertex) to 10 (one request + one
/// response per leaf).
pub struct PullExample {
    /// Number of vertices in the central clique.
    pub clique_size: usize,
    /// Leaves attached to each clique vertex.
    pub fanout: usize,
    /// Weight of root-to-clique edges.
    pub w_root: Weight,
    /// Weight of clique-internal edges.
    pub w_clique: Weight,
    /// Weight of clique-to-leaf edges.
    pub w_leaf: Weight,
}

impl Default for PullExample {
    fn default() -> Self {
        // Sized so the counts match the paper's illustration (total push
        // cost 40 relaxation messages across three long phases, 30 of them
        // in the clique epoch).
        PullExample {
            clique_size: 5,
            fanout: 1,
            w_root: 10,
            w_clique: 6,
            w_leaf: 10,
        }
    }
}

impl PullExample {
    /// Vertex layout: 0 = root, `1..=clique_size` = clique,
    /// rest = leaves (clique vertex `i` owns leaves
    /// `1 + clique_size + (i-1)*fanout ..`).
    pub fn build(&self) -> EdgeList {
        let n = 1 + self.clique_size + self.clique_size * self.fanout;
        let mut el = EdgeList::new(n);
        for c in 1..=self.clique_size {
            el.push(0, c as VertexId, self.w_root);
        }
        for a in 1..=self.clique_size {
            for b in (a + 1)..=self.clique_size {
                el.push(a as VertexId, b as VertexId, self.w_clique);
            }
        }
        let mut leaf = (1 + self.clique_size) as VertexId;
        for c in 1..=self.clique_size {
            for _ in 0..self.fanout {
                el.push(c as VertexId, leaf, self.w_leaf);
                leaf += 1;
            }
        }
        el
    }

    /// Total vertex count of the example graph.
    pub fn num_vertices(&self) -> usize {
        1 + self.clique_size + self.clique_size * self.fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    #[test]
    fn path_has_n_minus_one_edges() {
        let el = path(10, 3);
        assert_eq!(el.len(), 9);
        let g = CsrBuilder::new().build(&el);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }

    #[test]
    fn star_degrees() {
        let g = CsrBuilder::new().build(&star(6, 1));
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn clique_edge_count() {
        let el = clique(6, 2);
        assert_eq!(el.len(), 15);
    }

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let a = uniform(100, 500, 255, 42);
        let b = uniform(100, 500, 255, 42);
        assert_eq!(a.edges, b.edges);
        for e in &a.edges {
            assert!((e.u as usize) < 100 && (e.v as usize) < 100);
            assert!((1..=255).contains(&e.w));
        }
    }

    #[test]
    fn pull_example_shape() {
        let ex = PullExample::default();
        let el = ex.build();
        let g = CsrBuilder::new().build(&el);
        assert_eq!(g.num_vertices(), ex.num_vertices());
        // Root degree = clique size.
        assert_eq!(g.degree(0), ex.clique_size);
        // Each clique vertex: root + (clique-1) + fanout.
        assert_eq!(g.degree(1), 1 + (ex.clique_size - 1) + ex.fanout);
        // Leaves have degree 1.
        assert_eq!(g.degree((1 + ex.clique_size) as VertexId), 1);
    }
}
