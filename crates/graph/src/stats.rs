//! Degree statistics: the inputs to Fig. 8 (max degree vs scale) and to the
//! load-balancing thresholds of §III-E.

use crate::{Csr, VertexId};

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_undirected_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Fraction of directed edge slots owned by the top 1% of vertices —
    /// the skew metric that predicts whether load balancing matters.
    pub top1pct_edge_share: f64,
}

/// Compute [`DegreeStats`] for a CSR graph.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_vertices();
    let mut degrees: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let total: usize = degrees.iter().sum();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let top = (n / 100).max(1).min(n.max(1));
    let top_sum: usize = degrees.iter().take(top).sum();
    DegreeStats {
        num_vertices: n,
        num_undirected_edges: g.num_undirected_edges(),
        max_degree,
        avg_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        isolated,
        top1pct_edge_share: if total == 0 {
            0.0
        } else {
            top_sum as f64 / total as f64
        },
    }
}

/// Degree histogram in powers of two: `hist[k]` counts vertices with degree
/// in `[2^k, 2^{k+1})`; `hist[0]` also includes degree-1, and degree-0
/// vertices are reported separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Number of isolated (degree-0) vertices.
    pub zero: usize,
    /// Power-of-two degree buckets: `buckets[i]` counts degrees in `[2^i, 2^(i+1))`.
    pub buckets: Vec<usize>,
}

/// Degree histogram of `g` (the Fig. 8 measurement).
pub fn degree_histogram(g: &Csr) -> DegreeHistogram {
    let mut zero = 0usize;
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..g.num_vertices() {
        let d = g.degree(v as VertexId);
        if d == 0 {
            zero += 1;
            continue;
        }
        let k = (usize::BITS - 1 - d.leading_zeros()) as usize;
        if buckets.len() <= k {
            buckets.resize(k + 1, 0);
        }
        buckets[k] += 1;
    }
    DegreeHistogram { zero, buckets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CsrBuilder};

    #[test]
    fn stats_of_star() {
        let g = CsrBuilder::new().build(&gen::star(11, 1));
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.num_undirected_edges, 10);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_counted() {
        let mut el = gen::path(3, 1);
        el.n = 6; // add three isolated vertices
        let g = CsrBuilder::new().build(&el);
        assert_eq!(degree_stats(&g).isolated, 3);
    }

    #[test]
    fn histogram_total_matches_n() {
        let g = CsrBuilder::new().build(&gen::uniform(200, 900, 10, 5));
        let h = degree_histogram(&g);
        let total: usize = h.zero + h.buckets.iter().sum::<usize>();
        assert_eq!(total, 200);
    }

    #[test]
    fn histogram_of_path() {
        // Path of 4: two endpoints (deg 1 → bucket 0), two middles (deg 2 → bucket 1).
        let g = CsrBuilder::new().build(&gen::path(4, 1));
        let h = degree_histogram(&g);
        assert_eq!(h.zero, 0);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
    }

    #[test]
    fn skew_metric_orders_families() {
        use crate::rmat::{RmatGenerator, RmatParams};
        let build = |p| {
            let el = RmatGenerator::new(p, 11, 16).seed(2).generate_weighted(255);
            CsrBuilder::new().build(&el)
        };
        let s1 = degree_stats(&build(RmatParams::RMAT1));
        let s2 = degree_stats(&build(RmatParams::RMAT2));
        assert!(s1.top1pct_edge_share > s2.top1pct_edge_share);
    }
}
