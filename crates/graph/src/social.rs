//! Chung–Lu power-law generator: synthetic stand-ins for the SNAP social
//! graphs of §IV-H (Friendster, Orkut, LiveJournal).
//!
//! The paper's real-graph study only exercises degree skew and community-like
//! density, so a Chung–Lu graph with a matched (n, m, power-law exponent)
//! degree profile drives the identical code paths: hub vertices trigger the
//! pull model and the load balancers exactly as the real graphs do. The
//! presets are scaled-down versions (default 1/64) of the published sizes,
//! keeping the average degree of the original.

use rayon::prelude::*;

use crate::prng::SplitMix;
use crate::{Edge, EdgeList, VertexId};

/// Chung–Lu configuration: vertices draw expected degrees from a truncated
/// power law `P(deg ≥ x) ∝ x^{1−γ}`, and each edge picks both endpoints with
/// probability proportional to expected degree.
#[derive(Debug, Clone)]
pub struct ChungLu {
    /// Number of vertices.
    pub n: usize,
    /// Target number of edges.
    pub m: usize,
    /// Power-law exponent γ (2 < γ ≤ 3 for social networks).
    pub gamma: f64,
    /// Expected-degree cap, as a fraction of n.
    pub max_degree_frac: f64,
    /// Maximum edge weight.
    pub w_max: u32,
    /// PRNG seed.
    pub seed: u64,
}

impl ChungLu {
    /// Chung–Lu generator with power-law exponent `gamma`.
    pub fn new(n: usize, m: usize, gamma: f64) -> Self {
        assert!(n > 1 && m > 0 && gamma > 1.0);
        ChungLu {
            n,
            m,
            gamma,
            max_degree_frac: 0.1,
            w_max: 255,
            seed: 0x0050_C1A1,
        }
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the maximum edge weight.
    pub fn w_max(mut self, w_max: u32) -> Self {
        self.w_max = w_max;
        self
    }

    /// Generate the edge list. Endpoint sampling uses the inverse-CDF of the
    /// expected-degree sequence, so generation is counter-based and parallel.
    pub fn generate(&self) -> EdgeList {
        // Expected degree of vertex i (i = 0 is the biggest hub):
        // w_i = c · (i + i0)^{-1/(γ-1)}, truncated at max_degree_frac·n.
        let alpha = 1.0 / (self.gamma - 1.0);
        let cap = (self.n as f64 * self.max_degree_frac).max(2.0);
        let target_avg = 2.0 * self.m as f64 / self.n as f64;
        // Normalize so the mean expected degree matches 2m/n.
        let raw: Vec<f64> = (0..self.n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
        let raw_mean = raw.iter().sum::<f64>() / self.n as f64;
        let scale = target_avg / raw_mean;
        let degs: Vec<f64> = raw.iter().map(|&r| (r * scale).min(cap)).collect();

        // Cumulative distribution for endpoint sampling.
        let mut cum = Vec::with_capacity(self.n + 1);
        let mut acc = 0.0;
        cum.push(0.0);
        for &d in &degs {
            acc += d;
            cum.push(acc);
        }
        let total = acc;

        let sample = |r: f64| -> VertexId {
            let x = r * total;
            // partition_point gives the first index with cum > x.
            let idx = cum.partition_point(|&c| c <= x);
            (idx.saturating_sub(1)).min(self.n - 1) as VertexId
        };

        let edges: Vec<Edge> = (0..self.m as u64)
            .into_par_iter()
            .map(|i| {
                let mut rng = SplitMix::derive(self.seed, i);
                let u = sample(rng.next_f64());
                let v = sample(rng.next_f64());
                let w = 1 + rng.next_below(self.w_max.max(1) as u64) as u32;
                Edge { u, v, w }
            })
            .collect();
        EdgeList { n: self.n, edges }
    }
}

/// Published sizes of the §IV-H graphs, divided by `shrink` (vertex and edge
/// counts both). `shrink = 1` gives the full published size.
pub fn social_preset(name: &str, shrink: usize) -> Option<ChungLu> {
    let shrink = shrink.max(1);
    let (n, m, gamma) = match name.to_ascii_lowercase().as_str() {
        // 63M vertices, 1.8B edges.
        "friendster" => (63_000_000usize, 1_800_000_000usize, 2.4),
        // 3M vertices, 117M edges.
        "orkut" => (3_000_000, 117_000_000, 2.3),
        // 4.8M vertices, 68M edges.
        "livejournal" => (4_800_000, 68_000_000, 2.5),
        _ => return None,
    };
    Some(ChungLu::new(
        (n / shrink).max(16),
        (m / shrink).max(16),
        gamma,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    #[test]
    fn generate_is_deterministic() {
        let a = ChungLu::new(1000, 8000, 2.3).seed(4).generate();
        let b = ChungLu::new(1000, 8000, 2.3).seed(4).generate();
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn endpoints_in_range() {
        let el = ChungLu::new(500, 4000, 2.5).generate();
        for e in &el.edges {
            assert!((e.u as usize) < 500 && (e.v as usize) < 500);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let el = ChungLu::new(4000, 64_000, 2.2).seed(9).generate();
        let g = CsrBuilder::new().build(&el);
        let avg = g.num_directed_edges() as f64 / g.num_vertices() as f64;
        let max = g.max_degree() as f64;
        assert!(max > 8.0 * avg, "max degree {max} not ≫ avg {avg}");
    }

    #[test]
    fn presets_exist_and_scale() {
        for name in ["friendster", "orkut", "livejournal"] {
            let p = social_preset(name, 1024).unwrap();
            assert!(p.n >= 16 && p.m >= 16);
        }
        assert!(social_preset("twitter", 1).is_none());
    }

    #[test]
    fn average_degree_roughly_preserved() {
        let p = ChungLu::new(2000, 32_000, 2.3).seed(6);
        let el = p.generate();
        let g = CsrBuilder::new().build(&el);
        // Self loops are dropped so the count can shrink slightly.
        let m = g.num_undirected_edges() as f64;
        assert!(m > 0.9 * 32_000.0, "too many dropped edges: {m}");
    }
}
