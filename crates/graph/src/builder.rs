//! Edge list → CSR construction.
//!
//! Follows the Graph 500 reference kernel-1 conventions: the input edge list
//! may contain self-loops and duplicate edges; self-loops are dropped
//! (they can never improve a shortest path with non-negative weights) and
//! duplicates are either kept (the default, matching the benchmark) or
//! deduplicated keeping the minimum weight.

use crate::{Csr, EdgeList, VertexId, Weight};

/// Configurable CSR builder.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    drop_self_loops: bool,
    dedup_min_weight: bool,
}

impl Default for CsrBuilder {
    fn default() -> Self {
        CsrBuilder {
            drop_self_loops: true,
            dedup_min_weight: false,
        }
    }
}

impl CsrBuilder {
    /// Builder with default options (rows weight-sorted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep self-loops in the CSR (they are dropped by default).
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// Collapse parallel edges, keeping the minimum weight per vertex pair.
    pub fn dedup_min_weight(mut self) -> Self {
        self.dedup_min_weight = true;
        self
    }

    /// Build an undirected CSR: every retained edge `{u, v}` contributes a
    /// slot to both rows. Rows come out sorted by `(weight, target)`.
    pub fn build(&self, el: &EdgeList) -> Csr {
        let n = el.n;
        let mut edges: Vec<(VertexId, VertexId, Weight)> = el
            .edges
            .iter()
            .filter(|e| !(self.drop_self_loops && e.u == e.v))
            .map(|e| (e.u, e.v, e.w))
            .collect();

        if self.dedup_min_weight {
            // Canonicalize pairs, sort, then keep the min-weight representative.
            for e in &mut edges {
                if e.0 > e.1 {
                    std::mem::swap(&mut e.0, &mut e.1);
                }
            }
            edges.sort_unstable_by_key(|&(u, v, w)| (u, v, w));
            edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        }

        // Counting sort into rows.
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &edges {
            degree[u as usize] += 1;
            if u != v {
                degree[v as usize] += 1;
            } else {
                // A kept self-loop still occupies two slots, matching the
                // usual CSR convention for undirected graphs.
                degree[u as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let total = acc;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; total];
        let mut weights = vec![0 as Weight; total];
        for &(u, v, w) in &edges {
            let cu = cursor[u as usize];
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }

        // Sort each row by (weight, target) for the binary-search queries.
        for v in 0..n {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let mut row: Vec<(Weight, VertexId)> = weights[lo..hi]
                .iter()
                .copied()
                .zip(targets[lo..hi].iter().copied())
                .collect();
            row.sort_unstable();
            for (i, (w, t)) in row.into_iter().enumerate() {
                weights[lo + i] = w;
                targets[lo + i] = t;
            }
        }

        Csr::from_parts(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_dropped_by_default() {
        let mut el = EdgeList::new(2);
        el.push(0, 0, 9);
        el.push(0, 1, 1);
        let g = CsrBuilder::new().build(&el);
        assert_eq!(g.num_undirected_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loops_kept_on_request() {
        let mut el = EdgeList::new(1);
        el.push(0, 0, 4);
        let g = CsrBuilder::new().keep_self_loops().build(&el);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn duplicates_kept_by_default() {
        let mut el = EdgeList::new(2);
        el.push(0, 1, 3);
        el.push(0, 1, 8);
        let g = CsrBuilder::new().build(&el);
        assert_eq!(g.num_undirected_edges(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn dedup_keeps_min_weight() {
        let mut el = EdgeList::new(2);
        el.push(0, 1, 8);
        el.push(1, 0, 3);
        el.push(0, 1, 5);
        let g = CsrBuilder::new().dedup_min_weight().build(&el);
        assert_eq!(g.num_undirected_edges(), 1);
        assert_eq!(g.row(0).next(), Some((1, 3)));
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let mut el = EdgeList::new(5);
        el.push(0, 1, 1);
        let g = CsrBuilder::new().build(&el);
        assert_eq!(g.num_vertices(), 5);
        for v in 2..5 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn degrees_sum_to_directed_edge_count() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1);
        el.push(1, 2, 2);
        el.push(2, 3, 3);
        el.push(3, 0, 4);
        el.push(0, 2, 5);
        let g = CsrBuilder::new().build(&el);
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(degsum, g.num_directed_edges());
        assert_eq!(degsum, 10);
    }
}
