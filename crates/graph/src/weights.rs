//! Edge weight assignment.
//!
//! The Graph 500 SSSP proposal assigns each edge an independent uniform
//! integer weight; the paper uses the range `[0, 255]`. The SSSP problem
//! statement in §II requires `w(e) > 0`, so the default here draws from
//! `[1, w_max]` — the shift is immaterial to every experiment (it changes no
//! ordering of weights and keeps the same short/long split statistics for any
//! `Δ > 1`). Zero-weight edges remain fully supported by the engine because
//! the vertex-splitting load balancer introduces them deliberately.

use rayon::prelude::*;

use crate::prng::SplitMix;
use crate::{Edge, EdgeList, EdgeTuple};

/// Attach uniform weights in `[1, w_max]` to unweighted tuples. Weight `i`
/// depends only on `(seed, i)`, so the assignment is deterministic and
/// parallel.
pub fn weight_tuples(n: usize, tuples: &[EdgeTuple], w_max: u32, seed: u64) -> EdgeList {
    assert!(w_max >= 1, "w_max must be at least 1");
    let edges: Vec<Edge> = tuples
        .par_iter()
        .enumerate()
        .map(|(i, t)| {
            let mut rng = SplitMix::derive(seed, i as u64);
            Edge {
                u: t.u,
                v: t.v,
                w: 1 + rng.next_below(w_max as u64) as u32,
            }
        })
        .collect();
    EdgeList { n, edges }
}

/// Re-weight an existing edge list in place with uniform weights in
/// `[1, w_max]`.
pub fn assign_uniform_weights(el: &mut EdgeList, w_max: u32, seed: u64) {
    assert!(w_max >= 1, "w_max must be at least 1");
    el.edges.par_iter_mut().enumerate().for_each(|(i, e)| {
        let mut rng = SplitMix::derive(seed, i as u64);
        e.w = 1 + rng.next_below(w_max as u64) as u32;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(k: usize) -> Vec<EdgeTuple> {
        (0..k)
            .map(|i| EdgeTuple {
                u: i as u32,
                v: ((i + 1) % k) as u32,
            })
            .collect()
    }

    #[test]
    fn weights_in_range() {
        let el = weight_tuples(100, &tuples(100), 255, 9);
        for e in &el.edges {
            assert!((1..=255).contains(&e.w));
        }
    }

    #[test]
    fn weights_deterministic() {
        let a = weight_tuples(50, &tuples(50), 255, 3);
        let b = weight_tuples(50, &tuples(50), 255, 3);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn weights_roughly_uniform() {
        let el = weight_tuples(20_000, &tuples(20_000), 4, 17);
        let mut counts = [0usize; 5];
        for e in &el.edges {
            counts[e.w as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..=4] {
            assert!(c > 4_000, "weight bucket too small: {c}");
        }
    }

    #[test]
    fn reweight_in_place_changes_only_weights() {
        let mut el = weight_tuples(10, &tuples(10), 255, 1);
        let before: Vec<_> = el.edges.iter().map(|e| (e.u, e.v)).collect();
        assign_uniform_weights(&mut el, 10, 2);
        let after: Vec<_> = el.edges.iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(before, after);
        assert!(el.edges.iter().all(|e| (1..=10).contains(&e.w)));
    }

    #[test]
    fn w_max_one_gives_unit_weights() {
        let el = weight_tuples(10, &tuples(10), 1, 5);
        assert!(el.edges.iter().all(|e| e.w == 1));
    }
}
