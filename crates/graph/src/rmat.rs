//! R-MAT (Recursive MATrix) scale-free graph generator.
//!
//! Implements the generator of Chakrabarti, Zhan and Faloutsos (SDM '04) as
//! used by the Graph 500 benchmark: each edge picks its endpoints by `scale`
//! rounds of quadrant selection with probabilities `(A, B, C, D)`.
//!
//! Two presets reproduce the paper's graph families (§IV-B):
//!
//! * **RMAT-1** — Graph 500 BFS spec: `A = 0.57, B = C = 0.19, D = 0.05`.
//!   Extreme degree skew (max degree in the millions at scale 32).
//! * **RMAT-2** — proposed Graph 500 SSSP spec: `A = 0.50, B = C = 0.10,
//!   D = 0.30`. Milder skew.
//!
//! Generation is counter-based (each edge hashes `(seed, edge_index)`), so it
//! is deterministic, trivially parallel and independent of the rank count.

use rayon::prelude::*;

use crate::prng::SplitMix;
use crate::{EdgeList, EdgeTuple, VertexId};

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl RmatParams {
    /// Graph 500 BFS benchmark parameters — the paper's `RMAT-1` family.
    pub const RMAT1: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Proposed Graph 500 SSSP benchmark parameters — the paper's `RMAT-2`
    /// family.
    pub const RMAT2: RmatParams = RmatParams {
        a: 0.50,
        b: 0.10,
        c: 0.10,
        d: 0.30,
    };

    /// Uniform parameters: every vertex pair equally likely (Erdős–Rényi-ish).
    pub const UNIFORM: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    /// Check the four probabilities form a distribution.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.a + self.b + self.c + self.d;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("R-MAT parameters must sum to 1, got {sum}"));
        }
        if [self.a, self.b, self.c, self.d]
            .iter()
            .any(|&p| !(0.0..=1.0).contains(&p))
        {
            return Err("R-MAT parameters must lie in [0, 1]".into());
        }
        Ok(())
    }
}

/// Configured R-MAT generator.
///
/// `scale` gives `n = 2^scale` vertices; `edge_factor` gives
/// `m = edge_factor · n` undirected edges (the paper and Graph 500 use 16).
///
/// # Examples
///
/// ```
/// use sssp_graph::rmat::{RmatGenerator, RmatParams};
/// use sssp_graph::CsrBuilder;
///
/// let gen = RmatGenerator::new(RmatParams::RMAT1, 10, 16).seed(42);
/// let el = gen.generate_weighted(255);
/// assert_eq!(el.n, 1 << 10);
/// assert_eq!(el.len(), 16 << 10);
///
/// let csr = CsrBuilder::new().build(&el);
/// // Scale-free: the heaviest vertex carries far more than the mean degree.
/// assert!(csr.max_degree() > 10 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct RmatGenerator {
    /// Quadrant probabilities.
    pub params: RmatParams,
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges generated per vertex.
    pub edge_factor: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Scramble vertex ids (Graph 500 does this so that vertex id gives no
    /// hint about degree). Keeps block partitions balanced in expectation.
    pub permute: bool,
}

impl RmatGenerator {
    /// Generator for `2^scale` vertices and `edge_factor × 2^scale` edges.
    pub fn new(params: RmatParams, scale: u32, edge_factor: usize) -> Self {
        params.validate().expect("invalid R-MAT parameters");
        assert!(scale < 32, "this reproduction caps at 2^31 vertices");
        RmatGenerator {
            params,
            scale,
            edge_factor,
            seed: 0x5353_5350,
            permute: true,
        }
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggle the random vertex-id permutation (Graph 500 requires it).
    pub fn permute(mut self, yes: bool) -> Self {
        self.permute = yes;
        self
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated edges before dedup/self-loop removal.
    pub fn num_edges(&self) -> usize {
        self.edge_factor << self.scale
    }

    /// Generate one endpoint pair for edge `index`.
    fn edge(&self, index: u64) -> EdgeTuple {
        let mut rng = SplitMix::derive(self.seed, index);
        let mut u: u64 = 0;
        let mut v: u64 = 0;
        let RmatParams { a, b, c, .. } = self.params;
        let ab = a + b;
        for _ in 0..self.scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < a {
                // quadrant A: (0, 0)
            } else if r < ab {
                v |= 1; // B: (0, 1)
            } else if r < ab + c {
                u |= 1; // C: (1, 0)
            } else {
                u |= 1;
                v |= 1; // D: (1, 1)
            }
        }
        if self.permute {
            u = scramble(u, self.scale, self.seed);
            v = scramble(v, self.scale, self.seed);
        }
        EdgeTuple {
            u: u as VertexId,
            v: v as VertexId,
        }
    }

    /// Generate the full (unweighted) edge tuple list, in parallel.
    pub fn generate_tuples(&self) -> Vec<EdgeTuple> {
        (0..self.num_edges() as u64)
            .into_par_iter()
            .map(|i| self.edge(i))
            .collect()
    }

    /// Generate the edge list with uniform weights in `[1, w_max]`
    /// (the Graph 500 SSSP proposal's weight distribution; see
    /// [`crate::weights`]).
    pub fn generate_weighted(&self, w_max: u32) -> EdgeList {
        let tuples = self.generate_tuples();
        crate::weights::weight_tuples(
            self.num_vertices(),
            &tuples,
            w_max,
            self.seed ^ WEIGHT_STREAM_TAG,
        )
    }
}

/// Distinct stream tag so edge weights are independent of endpoint draws.
const WEIGHT_STREAM_TAG: u64 = 0x5745_4947_4854_5331;

/// Feistel-style permutation of `scale`-bit vertex ids: invertible, seedable,
/// cheap. Mixing the halves twice is enough to destroy the R-MAT locality
/// (high-degree vertices clustering at low ids).
fn scramble(x: u64, scale: u32, seed: u64) -> u64 {
    if scale <= 1 {
        return x;
    }
    let half = scale / 2;
    let low_mask = (1u64 << half) - 1;
    let high_bits = scale - half;
    let high_mask = (1u64 << high_bits) - 1;
    let mut lo = x & low_mask;
    let mut hi = (x >> half) & high_mask;
    for round in 0..3u64 {
        hi ^= crate::prng::splitmix64(lo ^ seed ^ round) & high_mask;
        lo ^= crate::prng::splitmix64(hi ^ seed ^ (round | 0x100)) & low_mask;
    }
    (hi << half) | lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        RmatParams::RMAT1.validate().unwrap();
        RmatParams::RMAT2.validate().unwrap();
        RmatParams::UNIFORM.validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.1,
            d: 0.1,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let g = RmatGenerator::new(RmatParams::RMAT1, 8, 16).seed(7);
        let e1 = g.generate_tuples();
        let e2 = g.generate_tuples();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RmatGenerator::new(RmatParams::RMAT1, 8, 16)
            .seed(1)
            .generate_tuples();
        let b = RmatGenerator::new(RmatParams::RMAT1, 8, 16)
            .seed(2)
            .generate_tuples();
        assert_ne!(a, b);
    }

    #[test]
    fn endpoints_in_range() {
        let g = RmatGenerator::new(RmatParams::RMAT2, 9, 8);
        let n = g.num_vertices() as VertexId;
        for t in g.generate_tuples() {
            assert!(t.u < n && t.v < n);
        }
    }

    #[test]
    fn edge_count_matches_spec() {
        let g = RmatGenerator::new(RmatParams::RMAT1, 7, 16);
        assert_eq!(g.generate_tuples().len(), 16 << 7);
    }

    #[test]
    fn rmat1_is_more_skewed_than_rmat2() {
        // The driving observation of §III-E / Fig 8: RMAT-1's max degree far
        // exceeds RMAT-2's at equal scale.
        let scale = 12;
        let max_deg = |params| {
            let gen = RmatGenerator::new(params, scale, 16).seed(3);
            let el = gen.generate_weighted(255);
            crate::CsrBuilder::new().build(&el).max_degree()
        };
        let d1 = max_deg(RmatParams::RMAT1);
        let d2 = max_deg(RmatParams::RMAT2);
        assert!(d1 > 2 * d2, "RMAT-1 max degree {d1} not ≫ RMAT-2 {d2}");
    }

    #[test]
    fn scramble_is_a_permutation() {
        let scale = 10;
        let n = 1u64 << scale;
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = scramble(x, scale, 99);
            assert!(y < n, "scrambled id out of range");
            assert!(!seen[y as usize], "collision in scramble");
            seen[y as usize] = true;
        }
    }

    #[test]
    fn permutation_spreads_hubs() {
        // With permutation on, the heaviest vertex should not always be id 0.
        let gen = RmatGenerator::new(RmatParams::RMAT1, 10, 16).seed(11);
        let el = gen.generate_weighted(255);
        let g = crate::CsrBuilder::new().build(&el);
        let argmax = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        // Probabilistic but overwhelmingly likely with scrambling.
        assert_ne!(argmax, 0);
    }
}
