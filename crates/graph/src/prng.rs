//! Small deterministic PRNG utilities.
//!
//! Graph generation must be reproducible across runs, thread counts and rank
//! counts, so the generators never share mutable PRNG state: every edge is
//! derived from a stateless hash of `(seed, edge_index)`. SplitMix64 is the
//! standard choice for this kind of counter-based generation — it passes
//! BigCrush and costs a handful of arithmetic ops.

/// One SplitMix64 scrambling round.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny stateful SplitMix64 stream, seeded from a key.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded generator (same seed, same sequence, forever).
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Derive an independent stream for a sub-object (e.g. one edge).
    pub fn derive(seed: u64, index: u64) -> Self {
        // Mix the index in twice so that adjacent indices diverge fully.
        SplitMix {
            state: splitmix64(seed ^ splitmix64(index)),
        }
    }

    #[inline]
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via 128-bit multiply (Lemire's method).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_streams_differ() {
        let mut a = SplitMix::derive(7, 0);
        let mut b = SplitMix::derive(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix::new(123);
        for _ in 0..10_000 {
            let x = rng.next_below(17);
            assert!(x < 17);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SplitMix::new(99);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.next_below(8) as usize] += 1;
        }
        let expected = draws / 8;
        for &c in &counts {
            // 10% tolerance is ~13 sigma for a binomial with p=1/8.
            assert!((c as i64 - expected as i64).unsigned_abs() < expected as u64 / 10);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
