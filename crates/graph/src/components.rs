//! Connected components.
//!
//! Used by the harnesses for root selection sanity (a root's component size
//! bounds the reachable count) and by the Graph 500-style validation
//! (reachability consistency). Two implementations are provided — a
//! union-find over the edge list and a BFS sweep over the CSR — and the
//! test suite cross-checks them.

use crate::{Csr, EdgeList};

/// Weighted-union + path-halving disjoint set forest.
///
/// # Examples
///
/// ```
/// use sssp_graph::components::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.num_components(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Disjoint sets over `n` singleton elements.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set? (Path-compresses.)
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s component.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Component label per vertex from the edge list (labels are the union-find
/// representatives, compacted to `0..k`).
pub fn components_union_find(el: &EdgeList) -> Vec<u32> {
    let mut uf = UnionFind::new(el.n);
    for e in &el.edges {
        uf.union(e.u, e.v);
    }
    compact_labels((0..el.n as u32).map(|v| uf.find(v)).collect())
}

/// Component label per vertex by repeated BFS over the CSR.
pub fn components_bfs(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.row(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Size of the largest component and the number of components.
pub fn component_summary(labels: &[u32]) -> (usize, usize) {
    let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l as usize] += 1;
    }
    (counts.iter().copied().max().unwrap_or(0), k)
}

fn compact_labels(raw: Vec<u32>) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0u32;
    raw.into_iter()
        .map(|r| {
            *map.entry(r).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CsrBuilder, EdgeList};

    fn labels_equivalent(a: &[u32], b: &[u32]) -> bool {
        // Same partition, possibly different label names.
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        a.iter()
            .zip(b)
            .all(|(&x, &y)| *fwd.entry(x).or_insert(y) == y && *bwd.entry(y).or_insert(x) == x)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.component_size(1), 3);
        assert_eq!(uf.component_size(4), 1);
    }

    #[test]
    fn two_components() {
        let mut el = gen::path(3, 1); // 0-1-2
        el.n = 6;
        el.push(3, 4, 1); // 3-4, 5 isolated
        let labels = components_union_find(&el);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        let (largest, k) = component_summary(&labels);
        assert_eq!((largest, k), (3, 3));
    }

    #[test]
    fn bfs_and_union_find_agree() {
        for seed in 0..8 {
            let el = gen::uniform(120, 140, 10, seed); // sparse → several components
            let g = CsrBuilder::new().build(&el);
            let a = components_union_find(&el);
            let b = components_bfs(&g);
            assert!(labels_equivalent(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn self_loops_do_not_join_anything() {
        let mut el = EdgeList::new(3);
        el.push(0, 0, 1);
        el.push(1, 2, 1);
        let labels = components_union_find(&el);
        assert_ne!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
    }

    #[test]
    fn connected_graph_single_component() {
        let el = gen::clique(10, 1);
        let labels = components_union_find(&el);
        assert!(labels.iter().all(|&l| l == labels[0]));
        let (largest, k) = component_summary(&labels);
        assert_eq!((largest, k), (10, 1));
    }
}
