//! Compressed sparse row graph representation.
//!
//! The paper's heuristics rely on adjacency rows being sorted by edge weight:
//! with sorted rows, the split between short (`w < Δ`) and long edges, the
//! inner/outer-short split of the IOS heuristic, and the exact pull-request
//! count `|{e : w(e) < d(v) − kΔ}|` are all single binary searches. [`Csr`]
//! therefore keeps each row sorted by weight (ties broken by target id so the
//! layout is canonical).

use crate::{VertexId, Weight};

/// An undirected weighted graph in CSR form. Each undirected edge `{u, v}`
/// appears twice: once in `u`'s row and once in `v`'s row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Build from pre-validated parts. `offsets` must have length `n + 1`,
    /// start at 0, be non-decreasing and end at `targets.len()`.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *directed* edge slots (twice the undirected edge count).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_undirected_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v` (number of incident directed edge slots).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The neighbors of `v` with weights, sorted by `(weight, target)`.
    #[inline]
    pub fn row(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Raw slices of `v`'s row: `(targets, weights)`.
    #[inline]
    pub fn row_slices(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Number of edges incident on `v` with weight strictly less than `bound`.
    /// Rows are weight-sorted, so this is a binary search (`O(log deg)`).
    pub fn count_weight_below(&self, v: VertexId, bound: Weight) -> usize {
        let (_, ws) = self.row_slices(v);
        ws.partition_point(|&w| w < bound)
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterate over every undirected edge once (by emitting only rows where
    /// `u < v`, plus one of each self-loop pair — the builder removes
    /// self-loops, so in practice each `{u, v}` with `u != v` is emitted once
    /// per multiplicity).
    pub fn undirected_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.row(u)
                .filter_map(move |(v, w)| if u < v { Some((u, v, w)) } else { None })
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Total weight of all directed edge slots; useful as a checksum.
    pub fn weight_sum(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CsrBuilder;
    use crate::EdgeList;

    fn triangle() -> crate::Csr {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 5);
        el.push(1, 2, 3);
        el.push(2, 0, 7);
        CsrBuilder::new().build(&el)
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_undirected_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn rows_sorted_by_weight() {
        let g = triangle();
        for v in g.vertices() {
            let ws: Vec<_> = g.row(v).map(|(_, w)| w).collect();
            let mut sorted = ws.clone();
            sorted.sort_unstable();
            assert_eq!(ws, sorted);
        }
    }

    #[test]
    fn count_weight_below_matches_scan() {
        let g = triangle();
        for v in g.vertices() {
            for bound in 0..10 {
                let expect = g.row(v).filter(|&(_, w)| w < bound).count();
                assert_eq!(g.count_weight_below(v, bound), expect);
            }
        }
    }

    #[test]
    fn undirected_edges_emits_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn weight_sum_counts_both_directions() {
        let g = triangle();
        assert_eq!(g.weight_sum(), 2 * (5 + 3 + 7));
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(0);
        let g = CsrBuilder::new().build(&el);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
