//! Graph substrate for the `sssp-mps` reproduction of *Scalable Single Source
//! Shortest Path Algorithms for Massively Parallel Systems* (IPDPS 2014).
//!
//! This crate provides everything the paper's evaluation needs on the graph
//! side:
//!
//! * a compact [`Csr`] (compressed sparse row) representation with optionally
//!   weight-sorted adjacency rows (the sorted order is what makes the paper's
//!   pull-request counting and inner/outer-short classification cheap),
//! * the Graph 500 [`rmat`] generator with the paper's two parameter presets
//!   (`RMAT-1`, the BFS benchmark spec, and `RMAT-2`, the proposed SSSP spec),
//! * a Chung–Lu power-law generator ([`social`]) used as a stand-in for the
//!   SNAP social graphs of §IV-H,
//! * uniform random weights in `[1, w_max]` ([`weights`]),
//! * degree statistics ([`stats`], reproducing Fig. 8), and
//! * deterministic small graph builders for tests and the paper's worked
//!   examples ([`gen`]).
//!
//! Everything is seed-deterministic: the same seed produces the same graph on
//! every run and for every partitioning, which keeps the distributed engine's
//! tests and benches reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod gen;
pub mod io;
pub mod prng;
pub mod rmat;
pub mod social;
pub mod stats;
pub mod transform;
pub mod weights;

pub use builder::CsrBuilder;
pub use csr::Csr;
pub use rmat::{RmatGenerator, RmatParams};
pub use weights::assign_uniform_weights;

/// Vertex identifier. The paper scales to 2^38 vertices; this laptop-scale
/// reproduction caps at 2^32, which covers every experiment in the harness.
pub type VertexId = u32;

/// Edge weight. The Graph 500 SSSP proposal draws integer weights from
/// `[0, 255]`; the problem statement requires `w(e) > 0`, so generated weights
/// live in `[1, w_max]`. Zero weights are still *supported* (the inter-node
/// vertex-splitting transformation of §III-E introduces zero-weight proxy
/// edges).
pub type Weight = u32;

/// Checked narrowing of a local index or vertex count into the `u32` space
/// of [`VertexId`]-sized message fields.
///
/// All narrowing in the engine and dist layers funnels through here — the
/// `sssp-lint` no-lossy-cast rule rejects bare `as u32` there — so an index
/// escaping the 2^32 cap trips an assertion in debug builds instead of
/// silently wrapping. Release builds rely on the structural cap: vertex
/// counts are bounded by [`VertexId`]'s own range at graph construction.
#[inline]
pub fn checked_u32(value: usize) -> u32 {
    debug_assert!(
        u32::try_from(value).is_ok(),
        "index {value} overflows the u32 vertex-id space"
    );
    value as u32
}

/// A weighted undirected edge, stored once (`u <= v` is not required).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Edge weight.
    pub w: Weight,
}

impl Edge {
    /// Build an edge.
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Edge { u, v, w }
    }
}

/// An unweighted edge tuple as produced by the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeTuple {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
}

/// An edge list together with its vertex-count bound.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    /// Vertex-count bound (ids are `< n`).
    pub n: usize,
    /// The edges.
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// Empty list over `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::new(),
        }
    }

    /// Append an undirected edge.
    pub fn push(&mut self, u: VertexId, v: VertexId, w: Weight) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push(Edge::new(u, v, w));
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}
