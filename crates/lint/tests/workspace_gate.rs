//! The gate: lint the entire workspace and require zero findings. This
//! runs under plain `cargo test --workspace`, so the project rules are
//! enforced wherever the tests are.

#[test]
fn workspace_is_lint_clean() {
    let root = sssp_lint::default_root();
    let diags = sssp_lint::lint_workspace(&root)
        .unwrap_or_else(|e| panic!("cannot lint workspace at {}: {e}", root.display()));
    if !diags.is_empty() {
        let listing: String = diags.iter().map(|d| format!("  {d}\n")).collect();
        panic!(
            "sssp-lint found {} violation(s):\n{listing}\
             Fix them or add `// sssp-lint: allow(rule): reason` markers \
             where the violation is deliberate.",
            diags.len()
        );
    }
}

#[test]
fn workspace_walk_sees_the_real_tree() {
    let root = sssp_lint::default_root();
    let files = sssp_lint::workspace_files(&root).expect("walk failed");
    let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
    // Sanity anchors: the walk must include the engine and exclude the
    // vendored shims and this crate's seeded-violation fixtures.
    assert!(rels.contains(&"crates/core/src/engine/mod.rs"));
    assert!(rels.iter().all(|r| !r.starts_with("vendor/")));
    assert!(rels.iter().all(|r| !r.contains("fixtures/")));
}
