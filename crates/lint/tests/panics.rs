//! The panic-reachability gate: the audit must report zero findings on
//! the real tree and its table must match the committed golden. Running
//! plain `cargo test` therefore enforces unwind safety; CI also diffs
//! the CLI output (`--panics-table`) against the same golden.

use sssp_lint::panics;

/// Collect every `(rel_path, text)` pair from the real tree — the panic
/// audit spans the whole workspace, not one subsystem.
fn workspace_inputs() -> Vec<(String, String)> {
    let root = sssp_lint::default_root();
    let files = sssp_lint::workspace_files(&root).expect("workspace walk");
    let mut out = Vec::new();
    for (rel, path) in files {
        let text = std::fs::read_to_string(&path).expect("readable source");
        out.push((rel, text));
    }
    assert!(!out.is_empty(), "no workspace files found");
    out
}

#[test]
fn real_tree_is_panic_clean() {
    let analysis = panics::analyze(&workspace_inputs());
    assert!(
        analysis.findings.is_empty(),
        "panic findings on the real tree:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn reachability_matches_golden() {
    let analysis = panics::analyze(&workspace_inputs());
    let golden = include_str!("../golden/panic_reachability.txt");
    assert_eq!(
        analysis.table, golden,
        "panic-reachability model drifted from \
         crates/lint/golden/panic_reachability.txt — if the change is \
         intentional, regenerate with \
         `cargo run -p sssp-lint -- --panics-table > crates/lint/golden/panic_reachability.txt`"
    );
}

#[test]
fn roots_cover_the_real_entry_points() {
    // Guard against root discovery silently going empty: every bench
    // binary, the CLI, and both declared thread roots must be present.
    let analysis = panics::analyze(&workspace_inputs());
    assert!(
        analysis.num_roots >= 20,
        "expected 20+ roots, got {}",
        analysis.num_roots
    );
    for root in [
        "bin:serve_bench",
        "bin:fig01_headline",
        "bin:sssp-cli",
        "thread:serve-worker",
        "thread:rank-thread (forwarded)",
    ] {
        assert!(
            analysis.table.contains(root),
            "root `{root}` missing from the model"
        );
    }
}

#[test]
fn model_sees_the_collective_critical_section() {
    // The one legitimate held-lock panic cluster: the comm rendezvous
    // aborts under `slots` (justified die-on-poison), reachable from both
    // thread roots. If this disappears the held-lock walk went blind.
    let analysis = panics::analyze(&workspace_inputs());
    assert!(analysis.table.contains("allreduce_inner"));
    assert!(analysis.table.contains("held: slots"));
    assert!(
        analysis.num_sites > 0,
        "no panic sites classified on the real tree"
    );
}

#[test]
fn serving_layer_panics_are_guarded() {
    // The serve worker is a live (non-forwarded) thread root: its only
    // explicit panic site is the deliberate probe, guarded on its own
    // line by catch_unwind. The audit proving zero findings plus this
    // structural check pins the crash-isolation contract statically.
    let analysis = panics::analyze(&workspace_inputs());
    assert!(analysis.table.contains("thread:serve-worker"));
    assert!(
        analysis.table.contains("worker_loop"),
        "worker_loop dropped out of the reachability model"
    );
    assert!(analysis
        .findings
        .iter()
        .all(|f| !f.file.contains("crates/serve/")));
}
