//! The concurrency gate: the lock-order and channel-topology models must
//! report zero findings on the real tree and must match the committed
//! goldens. Running plain `cargo test` therefore enforces the concurrency
//! models; CI also diffs the CLI output against the same goldens.

use sssp_lint::concurrency;

/// Collect the in-scope `(rel_path, text)` pairs from the real tree.
fn workspace_inputs() -> Vec<(String, String)> {
    let root = sssp_lint::default_root();
    let files = sssp_lint::workspace_files(&root).expect("workspace walk");
    let mut out = Vec::new();
    for (rel, path) in files {
        if concurrency::in_scope(&rel) {
            let text = std::fs::read_to_string(&path).expect("readable source");
            out.push((rel, text));
        }
    }
    assert!(!out.is_empty(), "no in-scope files found");
    out
}

#[test]
fn real_tree_is_concurrency_clean() {
    let analysis = concurrency::analyze(&workspace_inputs());
    assert!(
        analysis.findings.is_empty(),
        "concurrency findings on the real tree:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lock_order_matches_golden() {
    let analysis = concurrency::analyze(&workspace_inputs());
    let golden = include_str!("../golden/lock_order.txt");
    assert_eq!(
        analysis.lock_table, golden,
        "lock-order model drifted from crates/lint/golden/lock_order.txt — \
         if the locking change is intentional, regenerate with \
         `cargo run -p sssp-lint -- --concurrency-locks > crates/lint/golden/lock_order.txt` \
         and update sssp_comm::lockorder::{{STATIC_LOCKS, STATIC_EDGES}} to match"
    );
}

#[test]
fn channel_topology_matches_golden() {
    let analysis = concurrency::analyze(&workspace_inputs());
    let golden = include_str!("../golden/channel_topology.txt");
    assert_eq!(
        analysis.channel_table, golden,
        "channel topology drifted from crates/lint/golden/channel_topology.txt — \
         if the channel change is intentional, regenerate with \
         `cargo run -p sssp-lint -- --concurrency-channels > crates/lint/golden/channel_topology.txt`"
    );
}

#[test]
fn models_cover_the_real_primitives() {
    // Guard against the models silently going empty: the rank runtime's
    // collective mutex and exchange channels must appear.
    let analysis = concurrency::analyze(&workspace_inputs());
    assert!(analysis.num_locks >= 1, "no locks extracted");
    assert!(analysis.num_channels >= 1, "no channels extracted");
    assert!(analysis.lock_table.contains("slots"));
    assert!(analysis.lock_table.contains("allreduce_inner"));
    assert!(analysis.channel_table.contains("senders"));
    assert!(analysis.channel_table.contains("inbox"));
    for op in ["create", "clone", "send", "recv", "drop"] {
        assert!(
            analysis.channel_table.contains(op),
            "channel table lacks a `{op}` event"
        );
    }
}

#[test]
fn runtime_twin_constants_agree_with_the_static_model() {
    // The debug runtime twin (sssp_comm::lockorder) carries its own copy
    // of the static graph; every lock it knows must be in the golden, and
    // every lock in the model must be known to the twin.
    let analysis = concurrency::analyze(&workspace_inputs());
    for lock in sssp_comm::lockorder::STATIC_LOCKS {
        assert!(
            analysis.lock_table.contains(lock),
            "twin lock `{lock}` missing from the static model"
        );
    }
    assert_eq!(
        analysis.num_locks,
        sssp_comm::lockorder::STATIC_LOCKS.len(),
        "twin STATIC_LOCKS out of sync with the static model"
    );
    for (a, b) in sssp_comm::lockorder::STATIC_EDGES {
        assert!(
            analysis.lock_table.contains(&format!("{a} -> {b}")),
            "twin edge `{a} -> {b}` missing from the static model"
        );
    }
}
