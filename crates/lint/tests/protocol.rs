//! The protocol gate: the flow-aware pass must report zero findings on
//! the real engine, both backends' schedules must merge into the golden
//! table, and the rule list snapshot must stay in sync. Running plain
//! `cargo test` therefore enforces the collective protocol; CI also diffs
//! the CLI output against the same goldens.

use sssp_lint::protocol;

/// Collect the in-scope `(rel_path, text)` pairs from the real tree.
fn workspace_inputs() -> Vec<(String, String)> {
    let root = sssp_lint::default_root();
    let files = sssp_lint::workspace_files(&root).expect("workspace walk");
    let mut out = Vec::new();
    for (rel, path) in files {
        if protocol::in_scope(&rel) {
            let text = std::fs::read_to_string(&path).expect("readable source");
            out.push((rel, text));
        }
    }
    assert!(!out.is_empty(), "no in-scope files found");
    out
}

#[test]
fn real_engine_protocol_is_clean() {
    let analysis = protocol::analyze(&workspace_inputs());
    assert!(
        analysis.findings.is_empty(),
        "protocol findings on the real engine:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(analysis.table.is_some(), "no merged table produced");
}

#[test]
fn both_backends_are_extracted() {
    let analysis = protocol::analyze(&workspace_inputs());
    let mut backends: Vec<&str> = analysis
        .schedules
        .iter()
        .map(|s| s.backend.as_str())
        .collect();
    backends.sort_unstable();
    assert_eq!(backends, vec!["simulated", "threaded"]);
    for s in &analysis.schedules {
        assert!(
            !s.events.is_empty(),
            "backend {} produced no events",
            s.backend
        );
    }
}

#[test]
fn protocol_table_matches_golden() {
    let analysis = protocol::analyze(&workspace_inputs());
    let table = analysis.table.expect("merged table");
    let golden = include_str!("../golden/protocol_table.txt");
    assert_eq!(
        table, golden,
        "protocol table drifted from crates/lint/golden/protocol_table.txt — \
         if the schedule change is intentional on BOTH backends, regenerate \
         with `cargo run -p sssp-lint -- --protocol > crates/lint/golden/protocol_table.txt`"
    );
}

#[test]
fn rule_list_matches_golden() {
    let golden = include_str!("../golden/rules.txt");
    assert_eq!(
        sssp_lint::rules::list_rules_text(),
        golden,
        "rule list drifted from crates/lint/golden/rules.txt — regenerate \
         with `cargo run -p sssp-lint -- --list-rules > crates/lint/golden/rules.txt`"
    );
}

#[test]
fn skew_fixture_schedules_diverge_with_a_useful_message() {
    // The backend-skew fixture's two entries must fail to merge, and the
    // error must name the row and both sides (the message CI users see).
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("protocol_backend_skew.rs");
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let model = protocol::Model::build(&[("crates/core/src/engine/fixture.rs".to_string(), text)]);
    let (schedules, findings) = model.schedules();
    assert!(findings.is_empty(), "{findings:?}");
    let sim = schedules
        .iter()
        .find(|s| s.backend == "simulated")
        .expect("simulated entry");
    let thr = schedules
        .iter()
        .find(|s| s.backend == "threaded")
        .expect("threaded entry");
    let err = protocol::merge(
        &protocol::normalize(&sim.events),
        &protocol::normalize(&thr.events),
    )
    .expect_err("fixture schedules must diverge");
    assert!(err.contains("row 2"), "{err}");
    assert!(err.contains("epoch.settle"), "{err}");
    assert!(err.contains("schedule ended"), "{err}");
}
