//! Per-rule self-tests: each rule must catch the violations seeded in its
//! fixture file, must not flag the fixture's "fine" sections, and must
//! honor `sssp-lint: allow(..)` markers.

use std::path::Path;

use sssp_lint::{lint_text, Diagnostic};

/// Load a fixture and lint it as if it lived at `as_path` in the tree.
fn lint_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_text(as_path, &text)
}

/// The line numbers (1-based) at which `rule` fired.
fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    let mut lines: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[test]
fn no_panic_catches_each_macro_and_method() {
    let diags = lint_fixture("no_panic.rs", "crates/core/src/engine/fixture.rs");
    assert_eq!(
        lines_for(&diags, "no-panic-hot-path"),
        vec![5, 6, 8, 11, 12]
    );
}

#[test]
fn no_panic_marker_and_strings_and_tests_are_exempt() {
    let diags = lint_fixture("no_panic.rs", "crates/core/src/engine/fixture.rs");
    // Line 19 carries a marker, lines 23-24 are string contents, line 32
    // is inside #[cfg(test)] — none may be reported.
    for exempt in [19, 23, 24, 32] {
        assert!(
            !lines_for(&diags, "no-panic-hot-path").contains(&exempt),
            "line {exempt} should be exempt, got {diags:?}"
        );
    }
}

#[test]
fn no_shared_state_catches_every_primitive() {
    let diags = lint_fixture("no_shared_state.rs", "crates/core/src/threaded_kernels.rs");
    assert_eq!(
        lines_for(&diags, "no-shared-state"),
        vec![5, 6, 9, 10, 11, 16]
    );
}

#[test]
fn no_shared_state_ignores_comm_threaded() {
    let diags = lint_fixture("no_shared_state.rs", "crates/comm/src/threaded.rs");
    assert!(lines_for(&diags, "no-shared-state").is_empty());
}

#[test]
fn no_shared_state_covers_the_threaded_engine() {
    // The real-thread engine module is NOT exempt: it runs on OS threads,
    // but only through the sssp_comm::threaded primitives. Raw barriers,
    // thread builders and channels seeded in the fixture must all fire;
    // the sanctioned RankCtx surface must not.
    let diags = lint_fixture(
        "no_shared_state_engine.rs",
        "crates/core/src/engine/threaded.rs",
    );
    assert_eq!(lines_for(&diags, "no-shared-state"), vec![7, 8, 11, 12, 13]);
}

#[test]
fn no_lossy_cast_catches_narrowing_not_widening() {
    let diags = lint_fixture("no_lossy_cast.rs", "crates/core/src/engine/fixture.rs");
    assert_eq!(lines_for(&diags, "no-lossy-cast"), vec![5, 6, 7, 8, 9]);
}

#[test]
fn no_float_catches_types_literals_and_suffixes() {
    let diags = lint_fixture("no_float_kernel.rs", "crates/core/src/engine/fixture.rs");
    assert_eq!(lines_for(&diags, "no-float-kernel"), vec![5, 6, 7]);
}

#[test]
fn no_float_does_not_apply_to_decide_rs() {
    let diags = lint_fixture("no_float_kernel.rs", "crates/core/src/engine/decide.rs");
    assert!(lines_for(&diags, "no-float-kernel").is_empty());
}

#[test]
fn engine_rules_cover_the_recorder_module() {
    // The telemetry recorder (engine/record.rs) is engine code: the
    // no-float and no-panic scopes must include it, and its allow marker
    // must still work.
    let diags = lint_fixture("recorder_module.rs", "crates/core/src/engine/record.rs");
    assert_eq!(lines_for(&diags, "no-float-kernel"), vec![6]);
    assert_eq!(lines_for(&diags, "no-panic-hot-path"), vec![11]);
}

#[test]
fn missing_docs_flags_bare_pub_items_only() {
    let diags = lint_fixture("missing_docs.rs", "crates/comm/src/fixture.rs");
    assert_eq!(lines_for(&diags, "missing-docs-pub"), vec![4, 14]);
}

#[test]
fn crate_hygiene_requires_both_attributes() {
    let diags = lint_fixture("crate_hygiene.rs", "crates/core/src/lib.rs");
    let hygiene: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "crate-hygiene").collect();
    assert_eq!(
        hygiene.len(),
        2,
        "expected forbid+warn findings, got {hygiene:?}"
    );
    assert!(hygiene
        .iter()
        .any(|d| d.message.contains("forbid(unsafe_code)")));
    assert!(hygiene
        .iter()
        .any(|d| d.message.contains("warn(missing_docs)")));
}

#[test]
fn crate_hygiene_passes_a_conforming_root() {
    let text = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n//! docs\n";
    assert!(lint_text("crates/core/src/lib.rs", text)
        .iter()
        .all(|d| d.rule != "crate-hygiene"));
}

#[test]
fn no_print_catches_all_macros() {
    let diags = lint_fixture("no_print_debug.rs", "crates/core/src/instrument.rs");
    assert_eq!(lines_for(&diags, "no-print-debug"), vec![5, 6, 7, 8]);
}

#[test]
fn no_print_does_not_apply_to_bench_or_bins() {
    let diags = lint_fixture("no_print_debug.rs", "crates/bench/src/lib.rs");
    assert!(lines_for(&diags, "no-print-debug").is_empty());
}

#[test]
fn protocol_divergent_guard_flags_rank_local_collectives() {
    let diags = lint_fixture(
        "protocol_divergent_guard.rs",
        "crates/core/src/engine/fixture.rs",
    );
    assert_eq!(lines_for(&diags, "protocol-divergent-guard"), vec![7, 11]);
}

#[test]
fn protocol_missing_barrier_flags_back_to_back_locks() {
    let diags = lint_fixture("protocol_missing_barrier.rs", "crates/comm/src/fixture.rs");
    assert_eq!(lines_for(&diags, "protocol-missing-barrier"), vec![10]);
}

#[test]
fn protocol_backend_skew_flags_divergent_twins() {
    let diags = lint_fixture(
        "protocol_backend_skew.rs",
        "crates/core/src/engine/fixture.rs",
    );
    assert_eq!(lines_for(&diags, "protocol-backend-skew"), vec![15]);
}

#[test]
fn lock_cycle_flags_both_inversion_sites_only() {
    let diags = lint_fixture("concurrency_lock_cycle.rs", "crates/comm/src/fixture.rs");
    // Lines 13 and 18 close the a/b cycle; the a->c extension on line 23
    // follows the global order and must stay clean.
    assert_eq!(lines_for(&diags, "concurrency-lock-cycle"), vec![13, 18]);
}

#[test]
fn blocking_hold_flags_wait_and_recv_under_a_live_guard() {
    let diags = lint_fixture("concurrency_blocking_hold.rs", "crates/comm/src/fixture.rs");
    // `bad` blocks twice with the guard live; `good` scopes or drops the
    // guard first and must stay clean.
    assert_eq!(lines_for(&diags, "concurrency-blocking-hold"), vec![13, 14]);
}

#[test]
fn endpoint_leak_flags_the_undropped_clone() {
    let diags = lint_fixture("concurrency_endpoint_leak.rs", "crates/comm/src/fixture.rs");
    // `bad` clones on line 7 and never drops `tx` before the join;
    // `good` drops it and must stay clean.
    assert_eq!(lines_for(&diags, "concurrency-endpoint-leak"), vec![7]);
}

#[test]
fn unterminated_recv_flags_the_bare_loop_only() {
    let diags = lint_fixture(
        "concurrency_unterminated_recv.rs",
        "crates/comm/src/fixture.rs",
    );
    // The bare loop's recv on line 13 has no termination edge; the
    // breaking loop and the counted while loop must stay clean.
    assert_eq!(lines_for(&diags, "concurrency-unterminated-recv"), vec![13]);
}

#[test]
fn critical_section_flags_panics_under_a_live_guard_only() {
    let diags = lint_fixture(
        "panic_in_critical_section.rs",
        "crates/serve/src/fixture.rs",
    );
    // `bad` unwraps (7), asserts (8) and aborts (9) with the guard live;
    // the post-drop unwrap, the catch_unwind line and the justified
    // abort must stay clean.
    assert_eq!(
        lines_for(&diags, "panic-in-critical-section"),
        vec![7, 8, 9]
    );
}

#[test]
fn worker_boundary_flags_the_unforwarded_roots_bare_unwrap() {
    let diags = lint_fixture("panic_on_worker_boundary.rs", "crates/serve/src/fixture.rs");
    // Line 7 panics across the `fixture-worker` boundary; line 8 is
    // guarded on its own line, the forwarded pool root and the rootless
    // helper are exempt.
    assert_eq!(lines_for(&diags, "panic-on-worker-boundary"), vec![7]);
}

#[test]
fn unvalidated_input_flags_request_indexing_without_validate() {
    let diags = lint_fixture("panic_unvalidated_input.rs", "crates/serve/src/fixture.rs");
    // `bad` indexes with both destructured vertices (7, 8); `good`
    // validates the spec first and must stay clean.
    assert_eq!(lines_for(&diags, "panic-unvalidated-input"), vec![7, 8]);
}

#[test]
fn silent_poison_flags_unwraps_off_lock_and_wait() {
    let diags = lint_fixture("panic_silent_poison.rs", "crates/serve/src/fixture.rs");
    // Lines 7 and 8 die on a poisoned primitive; the recovering
    // `unwrap_or_else(PoisonError::into_inner)` lines and the justified
    // die-on-poison must stay clean.
    assert_eq!(lines_for(&diags, "panic-silent-poison"), vec![7, 8]);
}

#[test]
fn every_rule_has_a_fixture_that_fires() {
    // Guard against a rule silently losing coverage: each named rule must
    // produce at least one finding across the fixture corpus.
    let corpus = [
        ("no_panic.rs", "crates/core/src/engine/fixture.rs"),
        ("no_shared_state.rs", "crates/core/src/threaded_kernels.rs"),
        (
            "no_shared_state_engine.rs",
            "crates/core/src/engine/threaded.rs",
        ),
        ("no_lossy_cast.rs", "crates/core/src/engine/fixture.rs"),
        ("recorder_module.rs", "crates/core/src/engine/record.rs"),
        ("no_float_kernel.rs", "crates/core/src/engine/fixture.rs"),
        ("missing_docs.rs", "crates/comm/src/fixture.rs"),
        ("crate_hygiene.rs", "crates/core/src/lib.rs"),
        ("no_print_debug.rs", "crates/core/src/instrument.rs"),
        (
            "protocol_divergent_guard.rs",
            "crates/core/src/engine/fixture.rs",
        ),
        ("protocol_missing_barrier.rs", "crates/comm/src/fixture.rs"),
        (
            "protocol_backend_skew.rs",
            "crates/core/src/engine/fixture.rs",
        ),
        ("concurrency_lock_cycle.rs", "crates/comm/src/fixture.rs"),
        ("concurrency_blocking_hold.rs", "crates/comm/src/fixture.rs"),
        ("concurrency_endpoint_leak.rs", "crates/comm/src/fixture.rs"),
        (
            "concurrency_unterminated_recv.rs",
            "crates/comm/src/fixture.rs",
        ),
        (
            "panic_in_critical_section.rs",
            "crates/serve/src/fixture.rs",
        ),
        ("panic_on_worker_boundary.rs", "crates/serve/src/fixture.rs"),
        ("panic_unvalidated_input.rs", "crates/serve/src/fixture.rs"),
        ("panic_silent_poison.rs", "crates/serve/src/fixture.rs"),
    ];
    let mut fired: Vec<&str> = corpus
        .iter()
        .flat_map(|(fx, path)| lint_fixture(fx, path))
        .map(|d| d.rule)
        .collect();
    fired.sort_unstable();
    fired.dedup();
    for rule in sssp_lint::rules::RULES {
        assert!(
            fired.contains(&rule.name),
            "rule {} has no firing fixture",
            rule.name
        );
    }
}
