//! `sssp-lint` — the project-specific static analysis gate.
//!
//! Rustc and clippy cannot see this repository's *architectural*
//! invariants: that engine hot paths never panic mid-superstep, that the
//! BSP simulation stays single-threaded outside `sssp-comm::threaded`,
//! that vertex ids and tentative distances are never silently truncated,
//! and that the integer kernels stay float-free so runs are bit-for-bit
//! reproducible. This crate walks every `.rs` file in the workspace and
//! enforces those rules lexically (comments and string contents stripped,
//! `#[cfg(test)]` regions masked).
//!
//! Violations that are deliberate carry an inline marker on the same line
//! or in the comment block directly above:
//!
//! ```text
//! // sssp-lint: allow(rule-name): one-line justification
//! ```
//!
//! The analyzer runs three ways: `cargo run -p sssp-lint -- --check`,
//! a test in this crate that lints the whole workspace (making plain
//! `cargo test` the gate), and a CI job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod concurrency;
pub mod panics;
pub mod protocol;
pub mod rules;
pub mod source;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use rules::RULES;
use source::SourceFile;

/// One finding: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the violated rule.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Directory names never descended into: build output, the vendored
/// dependency shims (external API surface, not project code), VCS
/// metadata, and the lint crate's own seeded-violation fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Files treated as test code wholesale (on top of inline
/// `#[cfg(test)]` masking): integration test trees and `tests.rs`
/// modules included via `#[cfg(test)] mod tests;` in their parent.
pub(crate) fn is_test_file(rel_path: &str) -> bool {
    rel_path.contains("/tests/")
        || rel_path.ends_with("/tests.rs")
        || rel_path.starts_with("tests/")
}

/// Lint one file's text under its workspace-relative path. Pure; this is
/// what fixture self-tests call.
pub fn lint_text(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, text);
    let whole_file_test = is_test_file(rel_path);
    let mut out = Vec::new();
    for rule in RULES {
        if !rule.scope.matches(rel_path) {
            continue;
        }
        for (li, message) in (rule.check)(&file) {
            let line = &file.lines[li];
            if whole_file_test || line.in_test {
                continue;
            }
            if line.allows.iter().any(|a| a == rule.name) {
                continue;
            }
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: li + 1,
                rule: rule.name,
                message,
            });
        }
    }
    out
}

/// Collect every `.rs` file under `root`, skipping [`SKIP_DIRS`].
/// Returned paths are workspace-relative with `/` separators, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(io::Error::other)?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the whole workspace rooted at `root`. Diagnostics are sorted by
/// (file, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for (rel, path) in workspace_files(root)? {
        let text = std::fs::read_to_string(&path)?;
        out.extend(lint_text(&rel, &text));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Locate the workspace root from this crate's manifest dir (the gate
/// test and the CLI default both rely on this).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_files_are_exempt_wholesale() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(!lint_text("crates/core/src/engine/tests.rs", src)
            .iter()
            .any(|d| d.rule == "no-panic-hot-path"));
        assert!(lint_text("crates/core/src/engine/short.rs", src)
            .iter()
            .any(|d| d.rule == "no-panic-hot-path"));
    }

    #[test]
    fn allow_marker_suppresses_only_named_rule() {
        let marked = "fn f() { x.unwrap(); } // sssp-lint: allow(no-panic-hot-path): test\n";
        assert!(lint_text("crates/core/src/engine/short.rs", marked).is_empty());
        let wrong = "fn f() { x.unwrap(); } // sssp-lint: allow(no-lossy-cast)\n";
        assert!(!lint_text("crates/core/src/engine/short.rs", wrong).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_clean() {
        let src = "fn f() { x.unwrap(); let y = v as u32; }\n";
        assert!(lint_text("crates/graph/src/gen.rs", src)
            .iter()
            .all(|d| d.rule != "no-panic-hot-path" && d.rule != "no-lossy-cast"));
    }

    #[test]
    fn diagnostics_render_with_file_and_line() {
        let d = Diagnostic {
            file: "crates/core/src/engine/short.rs".into(),
            line: 7,
            rule: "no-panic-hot-path",
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/engine/short.rs:7: [no-panic-hot-path] boom"
        );
    }
}
