//! The flow-aware concurrency-model pass.
//!
//! PR 5's protocol checker validates the *collective sequence*; this pass
//! models the lock/channel structure underneath it, the part an async
//! engine refactor is most likely to break. Two static models are built
//! from the comm and threaded-engine sources:
//!
//! 1. a **lock-order graph** — every `Mutex`/`RwLock`/`Condvar`
//!    acquisition site together with the set of locks already held along
//!    each intraprocedural path. Order cycles (`concurrency-lock-cycle`)
//!    and blocking `recv`/`wait` calls made while a lock is held
//!    (`concurrency-blocking-hold`) are findings.
//! 2. a **channel topology table** — every channel creation, `Sender`
//!    clone, send, recv and drop site, grouped by packet kind. Sender
//!    clones that can outlive the thread join
//!    (`concurrency-endpoint-leak`) and recv loops with no termination
//!    edge (`concurrency-unterminated-recv`) are findings.
//!
//! Both models are rendered as tables, committed as golden artifacts
//! (`crates/lint/golden/lock_order.txt`, `channel_topology.txt`) and
//! diffed in tests and CI — the same workflow as the protocol table. The
//! runtime twin (`sssp_comm::lockorder`) records actual acquisition
//! orders per rank thread and asserts at the threaded join that they
//! embed into the static graph committed here.
//!
//! The analysis is lexical, like the rest of this crate: declarations are
//! recognized by their type tokens (`name: Mutex<..>`, `name: Sender<..>`,
//! `let (tx, rx) = channel()`), guard lifetimes follow brace scopes,
//! explicit `drop(guard)` calls and end-of-statement temporaries.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::protocol::{scan_fns, FnDef};
use crate::rules::token_positions;
use crate::source::SourceFile;

/// Files the concurrency models are built from: the comm crate (locks,
/// channels, the rank runtime), the threaded engine sources and the
/// query-serving scheduler.
pub fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/comm/src/")
        || rel_path.starts_with("crates/core/src/engine/")
        || rel_path.starts_with("crates/serve/src/")
}

/// Kind of a declared lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
    /// `std::sync::Condvar`.
    Condvar,
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
        };
        write!(f, "{s}")
    }
}

/// Role of a declared channel endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The producing half (`Sender<K>`).
    Sender,
    /// The consuming half (`Receiver<K>`).
    Receiver,
}

/// Kind of a channel-topology event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChanOp {
    /// `channel()` creation site.
    Create,
    /// `.clone()` of a sender endpoint.
    Clone,
    /// `.send(..)` on a sender endpoint.
    Send,
    /// `.recv()`-family call on a receiver endpoint.
    Recv,
    /// Explicit `drop(endpoint)`.
    Drop,
}

impl fmt::Display for ChanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChanOp::Create => "create",
            ChanOp::Clone => "clone",
            ChanOp::Send => "send",
            ChanOp::Recv => "recv",
            ChanOp::Drop => "drop",
        };
        write!(f, "{s}")
    }
}

/// A concurrency-model violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule that produced the finding.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [concurrency] {}",
            self.file, self.line, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// declarations

/// A declared lock: `name: ..Mutex<..>` field/binding or
/// `let name = ..Mutex::new(..)`.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Binding or field name — the model's identity for the lock.
    pub name: String,
    /// Mutex / RwLock / Condvar.
    pub kind: LockKind,
}

/// A declared channel endpoint.
#[derive(Debug, Clone)]
pub struct EndpointDecl {
    /// Binding or field name.
    pub name: String,
    /// Sender or receiver half.
    pub role: Role,
    /// Message ("packet") kind from the `Sender<K>`/`Receiver<K>`
    /// declaration, when one is spelled out.
    pub kind: Option<String>,
}

/// The identifier ending just before byte position `end` (exclusive).
fn ident_ending_at(code: &str, end: usize) -> Option<String> {
    let mut name: Vec<char> = Vec::new();
    for c in code[..end].chars().rev() {
        if c.is_alphanumeric() || c == '_' {
            name.push(c);
        } else {
            break;
        }
    }
    if name.is_empty() || name.iter().last().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    name.reverse();
    Some(name.into_iter().collect())
}

/// The identifier starting at byte position `at`.
fn ident_starting_at(code: &str, at: usize) -> Option<String> {
    let name: String = code[at..]
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Method receiver for a token starting at `tok_start` (the `.` sits one
/// byte earlier). Rustfmt wraps long chains, leaving the `.method(` alone
/// on a continuation line — in that case the receiver is the tail of the
/// previous code line (`self.senders[dst]` ⏎ `.send(..)`).
fn method_receiver(code: &str, tok_start: usize, prev_tail: &str) -> Option<String> {
    let dot = tok_start - 1;
    receiver_before(code, dot).or_else(|| {
        if code[..dot].trim().is_empty() {
            receiver_before(prev_tail, prev_tail.len())
        } else {
            None
        }
    })
}

/// Method receiver just before the `.` at byte position `dot`: skips one
/// trailing index/call group (`senders[dst].send` → `senders`), then reads
/// the identifier.
fn receiver_before(code: &str, dot: usize) -> Option<String> {
    let mut end = code[..dot].trim_end().len();
    loop {
        let last = code[..end].chars().next_back()?;
        let open = match last {
            ']' => '[',
            ')' => '(',
            _ => break,
        };
        let mut depth = 0i32;
        let mut pos = end;
        for c in code[..end].chars().rev() {
            pos -= c.len_utf8();
            if c == last {
                depth += 1;
            } else if c == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if depth != 0 {
            return None;
        }
        end = pos;
    }
    ident_ending_at(code, end)
}

/// Name bound on the left of a declaration containing a type token at
/// byte position `at`: the identifier before the nearest single `:`
/// (skipping `::`), falling back to a `let` binding on the same line.
fn decl_name(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = at;
    while i > 0 {
        i -= 1;
        if bytes[i] == b':' {
            if i > 0 && bytes[i - 1] == b':' {
                i -= 1;
                continue;
            }
            if bytes.get(i + 1) == Some(&b':') {
                continue;
            }
            return ident_ending_at(code, i).filter(|n| n != "mut" && n != "let");
        }
    }
    let_names(code).and_then(|mut v| (v.len() == 1).then(|| v.remove(0)))
}

/// Names bound by a `let` on this line: `let a = ..` → `[a]`,
/// `let (a, b) = ..` → `[a, b]`.
fn let_names(code: &str) -> Option<Vec<String>> {
    let at = *token_positions(code, "let", false).first()?;
    let rest = code[at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    if let Some(inner) = rest.strip_prefix('(') {
        let close = inner.find(')')?;
        let names: Vec<String> = inner[..close]
            .split(',')
            .map(|s| s.trim().trim_start_matches("mut ").trim().to_string())
            .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_'))
            .collect();
        (!names.is_empty()).then_some(names)
    } else {
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        (!name.is_empty()).then_some(vec![name])
    }
}

/// Extract the `K` of a `Sender<K>`/`Receiver<K>` given the byte position
/// just after the opening `<`, whitespace-normalized.
fn angle_payload(code: &str, after_lt: usize) -> Option<String> {
    let mut depth = 1i32;
    let mut out = String::new();
    for c in code[after_lt..].chars() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    let norm = out.split_whitespace().collect::<Vec<_>>().join(" ");
                    let norm = norm.replace(", ", ",").replace(',', ", ");
                    return Some(norm);
                }
            }
            _ => {}
        }
        out.push(c);
    }
    None
}

/// Scan a file for lock and endpoint declarations (test regions skipped).
fn scan_decls(sf: &SourceFile) -> (Vec<LockDecl>, Vec<EndpointDecl>) {
    let mut locks: Vec<LockDecl> = Vec::new();
    let mut endpoints: Vec<EndpointDecl> = Vec::new();
    for line in sf.lines.iter().filter(|l| !l.in_test) {
        let code = &line.code;
        for (tok, kind) in [
            ("Mutex", LockKind::Mutex),
            ("RwLock", LockKind::RwLock),
            ("Condvar", LockKind::Condvar),
        ] {
            for at in token_positions(code, tok, false) {
                let rest = &code[at + tok.len()..];
                // A declaration spells the type (`Mutex<`) or constructs
                // one (`Mutex::new`); bare imports are neither.
                let is_decl = rest.starts_with('<')
                    || rest.starts_with("::new")
                    || (kind == LockKind::Condvar && rest.trim_start().starts_with(','))
                        && code.contains(':');
                if !is_decl {
                    continue;
                }
                if let Some(name) = decl_name(code, at) {
                    if !locks.iter().any(|l| l.name == name) {
                        locks.push(LockDecl { name, kind });
                    }
                }
            }
        }
        for (tok, role) in [("Sender", Role::Sender), ("Receiver", Role::Receiver)] {
            for at in token_positions(code, tok, false) {
                let rest = &code[at + tok.len()..];
                if !rest.starts_with('<') {
                    continue;
                }
                let kind = angle_payload(code, at + tok.len() + 1);
                if let Some(name) = decl_name(code, at) {
                    if !endpoints.iter().any(|e| e.name == name) {
                        endpoints.push(EndpointDecl { name, role, kind });
                    }
                }
            }
        }
    }
    (locks, endpoints)
}

// ---------------------------------------------------------------------------
// the intraprocedural walk

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Lock name.
    pub lock: String,
    /// Qualified function (`Type::name` or `name`).
    pub func: String,
    /// 1-based line.
    pub line: usize,
    /// Locks already held along the path to this site, in order.
    pub held: Vec<String>,
}

/// One lock-order edge with its witnessing site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSite {
    /// Lock held first.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// One channel-topology event.
#[derive(Debug, Clone)]
pub struct ChanEvent {
    /// Event kind.
    pub op: ChanOp,
    /// Endpoint name(s) involved (create sites list both halves).
    pub names: Vec<String>,
    /// Qualified function.
    pub func: String,
    /// 1-based line.
    pub line: usize,
}

/// Everything the per-file walk extracts.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Declared locks, in declaration order.
    pub locks: Vec<LockDecl>,
    /// Declared channel endpoints, in declaration order.
    pub endpoints: Vec<EndpointDecl>,
    /// Lock acquisition sites.
    pub acquisitions: Vec<Acquisition>,
    /// Lock-order edges with witnessing sites.
    pub edges: Vec<EdgeSite>,
    /// Blocking calls made while holding locks: `(line, op, held)`.
    pub blocking: Vec<(usize, String, Vec<String>)>,
    /// Channel events in line order.
    pub chan_events: Vec<ChanEvent>,
    /// Sender clones that can outlive a join: `(line, endpoint)`.
    pub leaks: Vec<(usize, String)>,
    /// Recv sites inside bare loops with no termination edge.
    pub unterminated: Vec<usize>,
}

/// A held lock guard during the walk.
struct Held {
    lock: String,
    guard: Option<String>,
    depth: usize,
    stmt: usize,
}

/// An open loop during the walk.
struct OpenLoop {
    bare: bool,
    depth: usize,
    terminated: bool,
    recvs: Vec<usize>,
}

impl FileModel {
    /// Build the model for one parsed file.
    pub fn build(sf: &SourceFile) -> FileModel {
        let (locks, endpoints) = scan_decls(sf);
        let fns = scan_fns(sf);
        let mut m = FileModel {
            locks,
            endpoints,
            ..FileModel::default()
        };
        for fd in fns.iter().filter(|f| !f.in_test) {
            m.walk_fn(sf, fd);
        }
        m.chan_events.sort_by_key(|e| e.line);
        m
    }

    fn kind_of_lock(&self, name: &str) -> Option<LockKind> {
        self.locks.iter().find(|l| l.name == name).map(|l| l.kind)
    }

    fn endpoint(&self, name: &str) -> Option<&EndpointDecl> {
        self.endpoints.iter().find(|e| e.name == name)
    }

    fn qualified(fd: &FnDef) -> String {
        match (&fd.impl_type, fd.has_self) {
            (Some(t), _) => format!("{t}::{}", fd.name),
            (None, _) => fd.name.clone(),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn walk_fn(&mut self, sf: &SourceFile, fd: &FnDef) {
        let func = Self::qualified(fd);
        let mut depth = 1usize; // inside the body's opening brace
        let mut held: Vec<Held> = Vec::new();
        let mut loops: Vec<OpenLoop> = Vec::new();
        let mut pending_loop: Option<bool> = None; // Some(bare?)
        let mut stmt = 0usize;
        let mut current_let: Option<Vec<String>> = None;
        // Leak bookkeeping for this function.
        let mut has_spawn = false;
        let mut first_join: Option<usize> = None;
        let mut clones: Vec<(usize, String)> = Vec::new();
        let mut drops_seen: Vec<(usize, String)> = Vec::new();
        // Tail of the previous code line, for wrapped method chains.
        let mut prev_tail = String::new();

        'lines: for li in fd.open.0..=fd.end_line {
            let line = &sf.lines[li];
            if line.in_test {
                continue;
            }
            let code: String = if li == fd.open.0 {
                line.code.chars().skip(fd.open.1).collect()
            } else {
                line.code.clone()
            };
            let bytes = code.as_bytes();
            let mut i = 0usize;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_alphabetic() || c == '_' {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let prev = code[..start].chars().next_back();
                    if prev.is_some_and(|p| p.is_alphanumeric() || p == '_') {
                        continue;
                    }
                    let tok = &code[start..i];
                    let after = code[i..].trim_start();
                    let is_method = prev == Some('.');
                    match tok {
                        "loop" if !is_method => pending_loop = Some(true),
                        "while" | "for" if !is_method => pending_loop = Some(false),
                        "break" => {
                            if let Some(l) = loops.last_mut() {
                                l.terminated = true;
                            }
                        }
                        "return" => {
                            for l in &mut loops {
                                l.terminated = true;
                            }
                        }
                        "let" if !is_method => {
                            current_let = let_names(&code[start..]);
                        }
                        "drop" if !is_method && after.starts_with('(') => {
                            let open = start + (code[start..].find('(').unwrap_or(0)) + 1;
                            if let Some(name) = ident_starting_at(&code, open) {
                                // Guard release.
                                if let Some(pos) = held
                                    .iter()
                                    .rposition(|h| h.guard.as_deref() == Some(name.as_str()))
                                {
                                    held.remove(pos);
                                }
                                drops_seen.push((li + 1, name.clone()));
                                if self.endpoint(&name).is_some() {
                                    self.chan_events.push(ChanEvent {
                                        op: ChanOp::Drop,
                                        names: vec![name],
                                        func: func.clone(),
                                        line: li + 1,
                                    });
                                }
                            }
                        }
                        "spawn" if after.starts_with('(') => has_spawn = true,
                        "join" if is_method && after.starts_with('(') => {
                            first_join.get_or_insert(li + 1);
                        }
                        "channel"
                            if !is_method
                                && (after.starts_with('(') || after.starts_with("::<")) =>
                        {
                            let names = current_let.clone().unwrap_or_default();
                            self.chan_events.push(ChanEvent {
                                op: ChanOp::Create,
                                names,
                                func: func.clone(),
                                line: li + 1,
                            });
                        }
                        "lock" | "read" | "write" if is_method && after.starts_with('(') => {
                            let recv = method_receiver(&code, start, &prev_tail);
                            let acquired = recv.filter(|r| match self.kind_of_lock(r) {
                                Some(LockKind::Mutex | LockKind::Condvar) => tok == "lock",
                                Some(LockKind::RwLock) => tok == "read" || tok == "write",
                                None => false,
                            });
                            if let Some(lock) = acquired {
                                let held_names: Vec<String> =
                                    held.iter().map(|h| h.lock.clone()).collect();
                                for h in &held_names {
                                    self.edges.push(EdgeSite {
                                        from: h.clone(),
                                        to: lock.clone(),
                                        line: li + 1,
                                    });
                                }
                                self.acquisitions.push(Acquisition {
                                    lock: lock.clone(),
                                    func: func.clone(),
                                    line: li + 1,
                                    held: held_names,
                                });
                                let guard = current_let
                                    .as_ref()
                                    .and_then(|v| (v.len() == 1).then(|| v[0].clone()));
                                held.push(Held {
                                    lock,
                                    guard,
                                    depth,
                                    stmt,
                                });
                            }
                        }
                        "wait" | "wait_timeout" | "wait_while"
                            if is_method && after.starts_with('(') && !held.is_empty() =>
                        {
                            self.blocking.push((
                                li + 1,
                                format!(".{tok}()"),
                                held.iter().map(|h| h.lock.clone()).collect(),
                            ));
                        }
                        "recv" | "try_recv" | "recv_timeout"
                            if is_method && after.starts_with('(') =>
                        {
                            if !held.is_empty() && tok != "try_recv" {
                                self.blocking.push((
                                    li + 1,
                                    format!(".{tok}()"),
                                    held.iter().map(|h| h.lock.clone()).collect(),
                                ));
                            }
                            let recv = method_receiver(&code, start, &prev_tail);
                            if let Some(name) = recv.filter(|r| {
                                self.endpoint(r).is_some_and(|e| e.role == Role::Receiver)
                            }) {
                                self.chan_events.push(ChanEvent {
                                    op: ChanOp::Recv,
                                    names: vec![name],
                                    func: func.clone(),
                                    line: li + 1,
                                });
                                if let Some(l) = loops.last_mut() {
                                    if l.bare {
                                        l.recvs.push(li + 1);
                                    }
                                }
                            }
                        }
                        "send" if is_method && after.starts_with('(') => {
                            let recv = method_receiver(&code, start, &prev_tail);
                            if let Some(name) = recv.filter(|r| {
                                self.endpoint(r).is_some_and(|e| e.role == Role::Sender)
                            }) {
                                self.chan_events.push(ChanEvent {
                                    op: ChanOp::Send,
                                    names: vec![name],
                                    func: func.clone(),
                                    line: li + 1,
                                });
                            }
                        }
                        "clone" if is_method && after.starts_with('(') => {
                            let recv = method_receiver(&code, start, &prev_tail);
                            if let Some(name) = recv.filter(|r| {
                                self.endpoint(r).is_some_and(|e| e.role == Role::Sender)
                            }) {
                                self.chan_events.push(ChanEvent {
                                    op: ChanOp::Clone,
                                    names: vec![name.clone()],
                                    func: func.clone(),
                                    line: li + 1,
                                });
                                clones.push((li + 1, name));
                            }
                        }
                        _ => {}
                    }
                    continue;
                }
                match c {
                    '{' => {
                        depth += 1;
                        if let Some(bare) = pending_loop.take() {
                            loops.push(OpenLoop {
                                bare,
                                depth,
                                terminated: false,
                                recvs: Vec::new(),
                            });
                        }
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        held.retain(|h| h.depth <= depth);
                        while loops.last().is_some_and(|l| l.depth > depth) {
                            let l = loops.pop().unwrap_or_else(|| unreachable!());
                            if l.bare && !l.terminated {
                                self.unterminated.extend(l.recvs);
                            }
                        }
                        if depth == 0 {
                            break 'lines;
                        }
                    }
                    ';' => {
                        stmt += 1;
                        current_let = None;
                        // Un-bound guards are statement temporaries.
                        held.retain(|h| h.guard.is_some() || h.stmt == stmt);
                    }
                    _ => {}
                }
                i += 1;
            }
            // A temporary guard never outlives its statement's line.
            held.retain(|h| h.guard.is_some() || h.depth < depth || h.stmt == stmt);
            if !code.trim().is_empty() {
                prev_tail = code;
            }
        }
        // Function ended with loops still open (malformed input).
        for l in loops {
            if l.bare && !l.terminated {
                self.unterminated.extend(l.recvs);
            }
        }
        // Endpoint-leak: a cloned sender in a spawning function must be
        // dropped before the first join.
        if has_spawn {
            if let Some(join_line) = first_join {
                for (line, name) in clones {
                    let dropped = drops_seen
                        .iter()
                        .any(|(dl, dn)| *dl <= join_line && dn == &name);
                    if !dropped {
                        self.leaks.push((line, name));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// cycle detection

/// Indices of edges that participate in a lock-order cycle (the target can
/// reach the source through other edges, or the edge is a self-loop).
pub fn cycle_edges(edges: &[EdgeSite]) -> Vec<usize> {
    let reach = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            for e in edges {
                if e.from == n {
                    stack.push(&e.to);
                }
            }
        }
        false
    };
    edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.from == e.to || reach(&e.to, &e.from))
        .map(|(i, _)| i)
        .collect()
}

// ---------------------------------------------------------------------------
// the per-file rules (registered in crate::rules::RULES)

/// `concurrency-lock-cycle`: a lock acquired while another is held must
/// never complete an order cycle with the file's other acquisition paths.
pub(crate) fn check_lock_cycle(sf: &SourceFile) -> Vec<(usize, String)> {
    let m = FileModel::build(sf);
    cycle_edges(&m.edges)
        .into_iter()
        .map(|i| {
            let e = &m.edges[i];
            (
                e.line - 1,
                format!(
                    "acquiring `{}` while holding `{}` closes a lock-order \
                     cycle — keep one global acquisition order",
                    e.to, e.from
                ),
            )
        })
        .collect()
}

/// `concurrency-blocking-hold`: no blocking `recv`/`wait` while a lock is
/// held — a peer blocked on the same lock deadlocks the rendezvous.
pub(crate) fn check_blocking_hold(sf: &SourceFile) -> Vec<(usize, String)> {
    let m = FileModel::build(sf);
    m.blocking
        .iter()
        .map(|(line, op, held)| {
            (
                line - 1,
                format!(
                    "blocking `{op}` while holding `{}` — release the lock \
                     before blocking so peers can make progress",
                    held.join("`, `")
                ),
            )
        })
        .collect()
}

/// `concurrency-endpoint-leak`: a cloned `Sender` in a spawning function
/// must be dropped before the join, or the channel never disconnects.
pub(crate) fn check_endpoint_leak(sf: &SourceFile) -> Vec<(usize, String)> {
    let m = FileModel::build(sf);
    m.leaks
        .iter()
        .map(|(line, name)| {
            (
                line - 1,
                format!(
                    "sender `{name}` is cloned in a spawning function but \
                     never dropped before the join — the original keeps the \
                     channel open and receivers never see disconnect"
                ),
            )
        })
        .collect()
}

/// `concurrency-unterminated-recv`: a recv inside a bare `loop` with no
/// `break`/`return` has no termination edge.
pub(crate) fn check_unterminated_recv(sf: &SourceFile) -> Vec<(usize, String)> {
    let m = FileModel::build(sf);
    m.unterminated
        .iter()
        .map(|line| {
            (
                line - 1,
                "recv loop has no termination edge: a bare `loop` with no \
                 `break`/`return` spins forever once senders go quiet — \
                 bound the loop or break on disconnect"
                    .to_string(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// the merged workspace model and the golden tables

/// The merged analysis over all in-scope files.
pub struct Analysis {
    /// Rendered lock-order model (golden `lock_order.txt`).
    pub lock_table: String,
    /// Rendered channel topology (golden `channel_topology.txt`).
    pub channel_table: String,
    /// All findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Number of distinct locks in the model.
    pub num_locks: usize,
    /// Number of distinct channels (by packet kind) in the model.
    pub num_channels: usize,
}

/// Locks, acquisitions and edges merged across files, with file
/// attribution for rendering.
struct Merged {
    locks: Vec<(LockDecl, String)>,
    acqs: Vec<(String, Acquisition)>,
    edges: Vec<(String, EdgeSite)>,
    endpoints: Vec<(EndpointDecl, String)>,
    events: Vec<(String, ChanEvent)>,
}

/// Build the full concurrency analysis from `(rel_path, text)` pairs.
/// Findings respect inline `sssp-lint: allow(rule)` markers, like the
/// engine-driven rules.
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut merged = Merged {
        locks: Vec::new(),
        acqs: Vec::new(),
        edges: Vec::new(),
        endpoints: Vec::new(),
        events: Vec::new(),
    };
    let mut findings: Vec<Finding> = Vec::new();
    let mut parsed: Vec<(String, SourceFile)> = Vec::new();
    for (path, text) in sorted {
        let sf = SourceFile::parse(path, text);
        let m = FileModel::build(&sf);
        for l in &m.locks {
            if !merged.locks.iter().any(|(d, _)| d.name == l.name) {
                merged.locks.push((l.clone(), path.clone()));
            }
        }
        for e in &m.endpoints {
            if !merged.endpoints.iter().any(|(d, _)| d.name == e.name) {
                merged.endpoints.push((e.clone(), path.clone()));
            }
        }
        merged
            .acqs
            .extend(m.acquisitions.iter().map(|a| (path.clone(), a.clone())));
        merged
            .edges
            .extend(m.edges.iter().map(|e| (path.clone(), e.clone())));
        merged
            .events
            .extend(m.chan_events.iter().map(|e| (path.clone(), e.clone())));
        // Per-file findings, allow-marker filtered.
        let per_rule: [(&'static str, Vec<(usize, String)>); 4] = [
            ("concurrency-lock-cycle", check_lock_cycle(&sf)),
            ("concurrency-blocking-hold", check_blocking_hold(&sf)),
            ("concurrency-endpoint-leak", check_endpoint_leak(&sf)),
            (
                "concurrency-unterminated-recv",
                check_unterminated_recv(&sf),
            ),
        ];
        for (rule, hits) in per_rule {
            for (li, message) in hits {
                let line = &sf.lines[li];
                if line.in_test || line.allows.iter().any(|a| a == rule) {
                    continue;
                }
                findings.push(Finding {
                    file: path.clone(),
                    line: li + 1,
                    rule,
                    message,
                });
            }
        }
        parsed.push((path.clone(), sf));
    }
    // Cross-file cycles the per-file rules cannot see.
    let all_edges: Vec<EdgeSite> = merged.edges.iter().map(|(_, e)| e.clone()).collect();
    for i in cycle_edges(&all_edges) {
        let (path, e) = &merged.edges[i];
        let f = Finding {
            file: path.clone(),
            line: e.line,
            rule: "concurrency-lock-cycle",
            message: format!(
                "acquiring `{}` while holding `{}` closes a cross-file \
                 lock-order cycle — keep one global acquisition order",
                e.to, e.from
            ),
        };
        let allowed = parsed.iter().any(|(p, sf)| {
            p == path
                && sf
                    .lines
                    .get(e.line - 1)
                    .is_some_and(|l| l.allows.iter().any(|a| a == f.rule))
        });
        if !allowed
            && !findings.contains(&f)
            && !findings
                .iter()
                .any(|x| x.file == f.file && x.line == f.line && x.rule == f.rule)
        {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let lock_table = render_lock_table(&merged);
    let (channel_table, num_channels) = render_channel_table(&merged);
    Analysis {
        lock_table,
        channel_table,
        findings,
        num_locks: merged.locks.len(),
        num_channels,
    }
}

/// Render the lock-order model. Sites are identified by file + qualified
/// function + per-function ordinal (not line numbers), so unrelated edits
/// to the sources do not churn the golden.
fn render_lock_table(m: &Merged) -> String {
    let mut out = String::new();
    out.push_str("lock-order model\n");
    out.push_str("================\n");
    out.push_str("scope: crates/comm/src/ + crates/core/src/engine/ + crates/serve/src/\n\n");

    out.push_str("locks\n");
    if m.locks.is_empty() {
        out.push_str("  (none)\n");
    }
    for (l, path) in &m.locks {
        out.push_str(&format!(
            "  {:<12} {:<8} {}\n",
            l.name,
            l.kind.to_string(),
            path
        ));
    }

    out.push_str("\nacquisition sites\n");
    if m.acqs.is_empty() {
        out.push_str("  (none)\n");
    }
    let mut last_file = "";
    let mut ord: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (path, a) in &m.acqs {
        if path != last_file {
            out.push_str(&format!("  {path}\n"));
            last_file = path;
        }
        let k = ord.entry((a.func.clone(), a.lock.clone())).or_insert(0);
        *k += 1;
        let held = if a.held.is_empty() {
            "-".to_string()
        } else {
            a.held.join(", ")
        };
        out.push_str(&format!(
            "    {:<36} #{} {:<10} held: {}\n",
            a.func, k, a.lock, held
        ));
    }

    out.push_str("\norder edges\n");
    if m.edges.is_empty() {
        out.push_str("  (none)\n");
    }
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (path, e) in &m.edges {
        if seen.insert((e.from.clone(), e.to.clone())) {
            out.push_str(&format!("  {} -> {}   ({path})\n", e.from, e.to));
        }
    }

    out.push_str("\ncycles\n");
    let all: Vec<EdgeSite> = m.edges.iter().map(|(_, e)| e.clone()).collect();
    let cyc = cycle_edges(&all);
    if cyc.is_empty() {
        out.push_str("  (none)\n");
    }
    for i in cyc {
        let e = &all[i];
        out.push_str(&format!(
            "  {} -> {} participates in a cycle\n",
            e.from, e.to
        ));
    }
    out
}

/// Render the channel topology, channels grouped by packet kind.
fn render_channel_table(m: &Merged) -> (String, usize) {
    let mut out = String::new();
    out.push_str("channel topology\n");
    out.push_str("================\n");
    out.push_str("scope: crates/comm/src/ + crates/core/src/engine/ + crates/serve/src/\n\n");

    // Resolve each endpoint name to a packet kind: declared kinds win;
    // names tied together by a create site share the declared kind.
    let mut kind_of: BTreeMap<String, String> = BTreeMap::new();
    for (e, _) in &m.endpoints {
        if let Some(k) = &e.kind {
            kind_of.insert(e.name.clone(), k.clone());
        }
    }
    for (_, ev) in m.events.iter().filter(|(_, e)| e.op == ChanOp::Create) {
        let known = ev.names.iter().find_map(|n| kind_of.get(n).cloned());
        if let Some(k) = known {
            for n in &ev.names {
                kind_of.entry(n.clone()).or_insert_with(|| k.clone());
            }
        }
    }
    let kind_for = |names: &[String]| -> String {
        names
            .iter()
            .find_map(|n| kind_of.get(n).cloned())
            .unwrap_or_else(|| "?".to_string())
    };

    // Group events by kind.
    let mut groups: BTreeMap<String, Vec<&(String, ChanEvent)>> = BTreeMap::new();
    for ev in &m.events {
        groups.entry(kind_for(&ev.1.names)).or_default().push(ev);
    }
    let num = groups.len();
    if groups.is_empty() {
        out.push_str("(no channels)\n");
    }
    for (kind, evs) in &groups {
        out.push_str(&format!("channel kind {kind}\n"));
        let mut senders: BTreeSet<&str> = BTreeSet::new();
        let mut receivers: BTreeSet<&str> = BTreeSet::new();
        for (e, _) in &m.endpoints {
            if kind_of.get(&e.name).is_some_and(|k| k == kind) {
                match e.role {
                    Role::Sender => senders.insert(&e.name),
                    Role::Receiver => receivers.insert(&e.name),
                };
            }
        }
        for (_, ev) in m.events.iter().filter(|(_, e)| e.op == ChanOp::Create) {
            if kind_for(&ev.names) == *kind {
                if let [s, r] = ev.names.as_slice() {
                    senders.insert(s);
                    receivers.insert(r);
                }
            }
        }
        out.push_str(&format!(
            "  senders: {:<24} receivers: {}\n",
            join_or_dash(&senders),
            join_or_dash(&receivers)
        ));
        // Event rows in (op, file, function) order, with multiplicities.
        let mut rows: BTreeMap<(ChanOp, &str, &str), usize> = BTreeMap::new();
        for (path, ev) in evs {
            *rows
                .entry((ev.op, path.as_str(), ev.func.as_str()))
                .or_insert(0) += 1;
        }
        for ((op, path, func), n) in rows {
            let mult = if n > 1 {
                format!(" x{n}")
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:<8} {:<36} {path}{mult}\n",
                op.to_string(),
                func
            ));
        }
        out.push('\n');
    }
    (out, num)
}

fn join_or_dash(set: &BTreeSet<&str>) -> String {
    if set.is_empty() {
        "-".to_string()
    } else {
        set.iter().copied().collect::<Vec<_>>().join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build(&SourceFile::parse("crates/comm/src/x.rs", src))
    }

    #[test]
    fn declarations_are_recognized() {
        let m = model(
            "struct S {\n    slots: Arc<Mutex<Vec<u64>>>,\n    tx: Sender<(u32, u64)>,\n    rx: Receiver<(u32, u64)>,\n}\nfn f() {\n    let q = RwLock::new(0);\n}\n",
        );
        assert_eq!(m.locks.len(), 2);
        assert_eq!(m.locks[0].name, "slots");
        assert_eq!(m.locks[0].kind, LockKind::Mutex);
        assert_eq!(m.locks[1].name, "q");
        assert_eq!(m.locks[1].kind, LockKind::RwLock);
        assert_eq!(m.endpoints.len(), 2);
        assert_eq!(m.endpoints[0].kind.as_deref(), Some("(u32, u64)"));
    }

    #[test]
    fn use_imports_are_not_declarations() {
        let m = model("use std::sync::mpsc::{channel, Receiver, Sender};\nuse std::sync::{Arc, Barrier, Mutex};\n");
        assert!(m.locks.is_empty());
        assert!(m.endpoints.is_empty());
    }

    #[test]
    fn guard_scopes_bound_the_held_set() {
        let m = model(
            "struct S { a: Mutex<u64>, b: Mutex<u64> }\nimpl S {\n    fn f(&self) {\n        {\n            let g = self.a.lock().unwrap();\n        }\n        let h = self.b.lock().unwrap();\n    }\n}\n",
        );
        assert_eq!(m.acquisitions.len(), 2);
        assert!(m.acquisitions[0].held.is_empty());
        assert!(m.acquisitions[1].held.is_empty(), "a released at block end");
        assert!(m.edges.is_empty());
    }

    #[test]
    fn nested_acquisitions_record_edges() {
        let m = model(
            "struct S { a: Mutex<u64>, b: Mutex<u64> }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock().unwrap();\n        let h = self.b.lock().unwrap();\n    }\n}\n",
        );
        assert_eq!(m.edges.len(), 1);
        assert_eq!(m.edges[0].from, "a");
        assert_eq!(m.edges[0].to, "b");
        assert_eq!(m.acquisitions[1].held, vec!["a".to_string()]);
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let m = model(
            "struct S { a: Mutex<u64>, bar: Barrier }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock().unwrap();\n        drop(g);\n        self.bar.wait();\n    }\n}\n",
        );
        assert!(m.blocking.is_empty());
    }

    #[test]
    fn temporary_guard_ends_with_the_statement() {
        let m = model(
            "struct S { a: Mutex<u64>, bar: Barrier }\nimpl S {\n    fn f(&self) {\n        self.a.lock().unwrap().push(1);\n        self.bar.wait();\n    }\n}\n",
        );
        assert!(m.blocking.is_empty(), "{:?}", m.blocking);
    }

    #[test]
    fn blocking_while_held_is_recorded() {
        let m = model(
            "struct S { a: Mutex<u64>, bar: Barrier, rx: Receiver<u64> }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock().unwrap();\n        self.bar.wait();\n        let v = self.rx.recv().unwrap();\n    }\n}\n",
        );
        assert_eq!(m.blocking.len(), 2);
        assert_eq!(m.blocking[0].1, ".wait()");
        assert_eq!(m.blocking[1].1, ".recv()");
    }

    #[test]
    fn cycle_detection_finds_inversions() {
        let edges = vec![
            EdgeSite {
                from: "a".into(),
                to: "b".into(),
                line: 1,
            },
            EdgeSite {
                from: "b".into(),
                to: "a".into(),
                line: 2,
            },
            EdgeSite {
                from: "a".into(),
                to: "c".into(),
                line: 3,
            },
        ];
        assert_eq!(cycle_edges(&edges), vec![0, 1]);
        assert!(cycle_edges(&edges[..1]).is_empty());
    }

    #[test]
    fn self_lock_is_a_cycle() {
        let edges = vec![EdgeSite {
            from: "a".into(),
            to: "a".into(),
            line: 1,
        }];
        assert_eq!(cycle_edges(&edges), vec![0]);
    }

    #[test]
    fn indexed_receiver_resolves_to_the_collection() {
        let m = model(
            "struct S { senders: Vec<Sender<u64>> }\nimpl S {\n    fn f(&self, dst: usize) {\n        self.senders[dst].send(1).unwrap();\n    }\n}\n",
        );
        assert_eq!(m.chan_events.len(), 1);
        assert_eq!(m.chan_events[0].op, ChanOp::Send);
        assert_eq!(m.chan_events[0].names, vec!["senders".to_string()]);
    }

    #[test]
    fn create_site_binds_tuple_names() {
        let m = model("fn f() {\n    let (tx, rx): (Sender<u64>, Receiver<u64>) = channel();\n    tx.send(1).unwrap();\n}\n");
        let create = m
            .chan_events
            .iter()
            .find(|e| e.op == ChanOp::Create)
            .expect("create event");
        assert_eq!(create.names, vec!["tx".to_string(), "rx".to_string()]);
    }

    #[test]
    fn bounded_recv_loops_are_not_flagged() {
        let m = model(
            "struct S { rx: Receiver<u64>, p: usize }\nimpl S {\n    fn f(&self) {\n        while self.p > 0 {\n            let v = self.rx.recv().unwrap();\n        }\n    }\n}\n",
        );
        assert!(m.unterminated.is_empty());
    }

    #[test]
    fn bare_recv_loop_without_break_is_flagged() {
        let m = model(
            "struct S { rx: Receiver<u64> }\nimpl S {\n    fn f(&self) {\n        loop {\n            let v = self.rx.recv().unwrap();\n        }\n    }\n}\n",
        );
        assert_eq!(m.unterminated, vec![5]);
    }

    #[test]
    fn bare_recv_loop_with_break_is_clean() {
        let m = model(
            "struct S { rx: Receiver<u64> }\nimpl S {\n    fn f(&self) {\n        loop {\n            match self.rx.recv() {\n                Ok(_) => {}\n                Err(_) => break,\n            }\n        }\n    }\n}\n",
        );
        assert!(m.unterminated.is_empty());
    }

    #[test]
    fn leak_requires_spawn_join_and_missing_drop() {
        let src_bad = "fn f(tx: Sender<u64>) {\n    let mut hs = Vec::new();\n    for _ in 0..2 {\n        let t = tx.clone();\n        hs.push(std::thread::spawn(move || t.send(1).unwrap()));\n    }\n    for h in hs { h.join().unwrap(); }\n}\n";
        let m = model(src_bad);
        assert_eq!(m.leaks.len(), 1);
        assert_eq!(m.leaks[0].0, 4);
        let src_ok = src_bad.replace(
            "    for h in hs { h.join",
            "    drop(tx);\n    for h in hs { h.join",
        );
        assert!(model(&src_ok).leaks.is_empty());
    }

    #[test]
    fn analyze_groups_channels_by_kind() {
        let files = vec![(
            "crates/comm/src/x.rs".to_string(),
            "struct S { tx: Sender<(u32, u64)>, rx: Receiver<(u32, u64)> }\nimpl S {\n    fn f(&self) {\n        self.tx.send((1, 2)).unwrap();\n        let v = self.rx.recv().unwrap();\n    }\n}\n"
                .to_string(),
        )];
        let a = analyze(&files);
        assert_eq!(a.num_channels, 1);
        assert!(a.channel_table.contains("channel kind (u32, u64)"));
        assert!(a.channel_table.contains("send"));
        assert!(a.channel_table.contains("recv"));
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn analyze_detects_cross_file_cycles() {
        let files = vec![
            (
                "crates/comm/src/a.rs".to_string(),
                "struct A { a: Mutex<u64>, b: Mutex<u64> }\nimpl A {\n    fn f(&self) {\n        let g = self.a.lock().unwrap();\n        let h = self.b.lock().unwrap();\n    }\n}\n"
                    .to_string(),
            ),
            (
                "crates/comm/src/b.rs".to_string(),
                "struct B { a: Mutex<u64>, b: Mutex<u64> }\nimpl B {\n    fn g(&self) {\n        let h = self.b.lock().unwrap();\n        let g = self.a.lock().unwrap();\n    }\n}\n"
                    .to_string(),
            ),
        ];
        let a = analyze(&files);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "concurrency-lock-cycle"),
            "{:?}",
            a.findings
        );
        assert!(a.lock_table.contains("participates in a cycle"));
    }

    #[test]
    fn allow_marker_suppresses_analyze_findings() {
        let files = vec![(
            "crates/comm/src/x.rs".to_string(),
            "struct S { a: Mutex<u64>, bar: Barrier }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock().unwrap();\n        // sssp-lint: allow(concurrency-blocking-hold): test\n        self.bar.wait();\n    }\n}\n"
                .to_string(),
        )];
        assert!(analyze(&files).findings.is_empty());
    }

    #[test]
    fn in_scope_covers_comm_and_threaded_engine() {
        assert!(in_scope("crates/comm/src/threaded.rs"));
        assert!(in_scope("crates/core/src/engine/threaded.rs"));
        assert!(in_scope("crates/serve/src/server.rs"));
        assert!(!in_scope("crates/graph/src/gen.rs"));
        assert!(!in_scope("crates/bench/src/lib.rs"));
    }
}
