//! The SPMD collective-protocol checker: the flow-aware half of the gate.
//!
//! The lexical rules in [`crate::rules`] look at single lines; this module
//! parses function bodies in `crates/core/src/engine/` into a lightweight
//! control-flow model and extracts each backend's *collective schedule* —
//! the ordered sequence of allreduce/exchange/barrier call sites, with
//! their loop-nesting depth along the call path from a marked entry point.
//! The two backends (the simulated BSP engine and the real-thread engine)
//! must issue the same sequence, or a run deadlocks / silently skews; the
//! checker diffs the normalized schedules and renders the agreed protocol
//! as a golden table (`crates/lint/golden/protocol_table.txt`).
//!
//! Source markers drive the model:
//!
//! ```text
//! // sssp-lint: protocol-entry(<backend>)      (directly above an entry fn)
//! // sssp-lint: protocol: <label>              (labels following collectives)
//! // sssp-lint: protocol-implicit: <label> <op>  (synthetic event: a
//!                                               collective the backend gets
//!                                               for free, e.g. the simulated
//!                                               engine's shared-memory scan)
//! ```
//!
//! Labels propagate down call chains (the innermost marker wins), so a
//! phase file can label `self.exchange_relax()` once and every terminal
//! `exchange` reached through it inherits the label.
//!
//! The comm primitives (`crates/comm/src/{collective,threaded}.rs`) are
//! modeled as *terminal* operations — the walker never descends into them,
//! so the rendezvous internals (triple lock/barrier handshakes) do not leak
//! into the protocol. They are still covered by the lexical
//! `protocol-missing-barrier` rule in this module.

use std::collections::BTreeSet;
use std::fmt;

use crate::rules::token_positions;
use crate::source::SourceFile;

// ---------------------------------------------------------------------------
// scope

/// Files whose function bodies the flow-aware pass parses and traverses.
pub fn traversable(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/src/engine/")
}

/// Files in scope for the protocol pass overall: the traversable engine
/// tree plus the comm primitives (modeled as terminal operations).
pub fn in_scope(rel_path: &str) -> bool {
    traversable(rel_path)
        || rel_path == "crates/comm/src/collective.rs"
        || rel_path == "crates/comm/src/threaded.rs"
}

// ---------------------------------------------------------------------------
// events, markers, tables

/// The kind of a collective call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// An allreduce/allgather rendezvous (every rank contributes, every
    /// rank observes the combined value).
    Reduce,
    /// An all-to-all message exchange (one superstep boundary).
    Exchange,
    /// A bare barrier.
    // sssp-lint: allow(no-shared-state): enum variant naming the op kind
    Barrier,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Reduce => "reduce",
            Op::Exchange => "exchange",
            // sssp-lint: allow(no-shared-state): op-kind variant, not a primitive
            Op::Barrier => "barrier",
        })
    }
}

/// Parse an op keyword as written in `protocol-implicit` markers.
pub fn op_from_str(s: &str) -> Option<Op> {
    match s {
        "reduce" => Some(Op::Reduce),
        "exchange" => Some(Op::Exchange),
        // sssp-lint: allow(no-shared-state): op-kind variant, not a primitive
        "barrier" => Some(Op::Barrier),
        _ => None,
    }
}

/// A `sssp-lint: protocol…` marker parsed from one raw source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    /// `protocol-entry(<backend>)`: the next `fn` is that backend's entry.
    Entry(String),
    /// `protocol: <label>`: collectives from here on carry this label.
    Label(String),
    /// `protocol-implicit: <label> <op>`: emit a synthetic event here.
    Implicit(String, Op),
}

/// Extract the protocol marker on a raw line, if any.
pub fn parse_marker(raw: &str) -> Option<Marker> {
    let at = raw.find("sssp-lint: protocol")?;
    let rest = &raw[at + "sssp-lint: protocol".len()..];
    if let Some(args) = rest.strip_prefix("-entry(") {
        let close = args.find(')')?;
        return Some(Marker::Entry(args[..close].trim().to_string()));
    }
    if let Some(args) = rest.strip_prefix("-implicit:") {
        let mut it = args.split_whitespace();
        let label = it.next()?.to_string();
        let op = op_from_str(it.next()?)?;
        return Some(Marker::Implicit(label, op));
    }
    if let Some(args) = rest.strip_prefix(':') {
        let label = args.split_whitespace().next()?.to_string();
        return Some(Marker::Label(label));
    }
    None
}

/// One collective event extracted by the schedule walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Workspace-relative file of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: usize,
    /// Protocol label in force at the call site (`None` = unlabeled).
    pub label: Option<String>,
    /// Collective kind.
    pub op: Op,
    /// Loop-nesting depth of the call site along its call path.
    pub depth: usize,
}

/// A protocol violation found by the flow-aware pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 = whole-tree finding).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [protocol] {}",
            self.file, self.line, self.message
        )
    }
}

/// One backend's full collective schedule, in program order.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Backend name from the `protocol-entry(<backend>)` marker.
    pub backend: String,
    /// Events in the order the walk reached them.
    pub events: Vec<Event>,
}

/// One normalized protocol-table row: consecutive events with the same
/// `(depth, op, label)` merge into a row with a per-backend count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Loop-nesting depth.
    pub depth: usize,
    /// Collective kind.
    pub op: Op,
    /// Protocol label (`<unlabeled>` for missing markers).
    pub label: String,
}

/// Collapse an event stream into `(row, consecutive-count)` pairs.
pub fn normalize(events: &[Event]) -> Vec<(TableRow, usize)> {
    let mut out: Vec<(TableRow, usize)> = Vec::new();
    for e in events {
        let row = TableRow {
            depth: e.depth,
            op: e.op,
            label: e.label.clone().unwrap_or_else(|| "<unlabeled>".to_string()),
        };
        match out.last_mut() {
            Some(last) if last.0 == row => last.1 += 1,
            _ => out.push((row, 1)),
        }
    }
    out
}

fn describe(row: Option<&(TableRow, usize)>) -> String {
    match row {
        Some((r, n)) => format!("(depth {}, {}, {}) x{}", r.depth, r.op, r.label, n),
        None => "nothing (schedule ended)".to_string(),
    }
}

/// Zip two normalized schedules into the shared protocol table. The
/// `(depth, op, label)` sequence must match exactly; the per-row call-site
/// counts may differ (e.g. the threaded backend reduces weight extremes
/// with two allreduces where the simulated engine scans shared memory).
/// `Err` describes the first divergence.
pub fn merge(
    sim: &[(TableRow, usize)],
    thr: &[(TableRow, usize)],
) -> Result<Vec<(TableRow, usize, usize)>, String> {
    for i in 0..sim.len().max(thr.len()) {
        let (a, b) = (sim.get(i), thr.get(i));
        if let (Some(ra), Some(rb)) = (a, b) {
            if ra.0 == rb.0 {
                continue;
            }
        }
        return Err(format!(
            "collective schedules diverge at row {}: simulated issues {}, threaded issues {}",
            i + 1,
            describe(a),
            describe(b)
        ));
    }
    Ok(sim
        .iter()
        .zip(thr.iter())
        .map(|(a, b)| (a.0.clone(), a.1, b.1))
        .collect())
}

/// Render the merged protocol table (the golden artifact committed at
/// `crates/lint/golden/protocol_table.txt`).
pub fn render_table(rows: &[(TableRow, usize, usize)]) -> String {
    let mut s = String::new();
    s.push_str("# Collective protocol table: the normalized SPMD schedule both engine\n");
    s.push_str("# backends must follow. Regenerate with:\n");
    s.push_str("#   cargo run -p sssp-lint -- --protocol\n");
    s.push_str("# Rows merge consecutive call sites with the same (depth, op, label);\n");
    s.push_str("# per-backend counts may differ, the row sequence may not (DESIGN.md).\n");
    s.push_str(&format!(
        "{:<6} {:<9} {:<26} {:>9} {:>9}\n",
        "depth", "op", "label", "simulated", "threaded"
    ));
    for (row, a, b) in rows {
        let line = format!(
            "{:<6} {:<9} {:<26} {:>9} {:>9}",
            row.depth,
            row.op.to_string(),
            row.label,
            a,
            b
        );
        s.push_str(line.trim_end());
        s.push('\n');
    }
    render_policy_sections(&mut s, rows);
    s
}

/// Append one schedule section per stepping policy. A run executes the
/// merged rows minus the *other* policies' window collectives (labels
/// `epoch.window-*` are policy-specific; every other row is shared), so
/// pinning each filtered section pins each policy's schedule distinctly.
fn render_policy_sections(s: &mut String, rows: &[(TableRow, usize, usize)]) {
    type LabelFilter = fn(&str) -> bool;
    let sections: &[(&str, LabelFilter)] = &[
        ("delta", |l| !l.starts_with("epoch.window-")),
        ("rho", |l| l != "epoch.window-radius"),
        ("radius", |l| l != "epoch.window-rho"),
    ];
    s.push_str("#\n");
    s.push_str("# Per-policy schedules: the rows one run actually executes under each\n");
    s.push_str("# stepping policy (the `epoch.window-*` collectives are policy-specific;\n");
    s.push_str("# all other rows are shared by every policy).\n");
    for (name, keep) in sections {
        s.push_str(&format!("## policy: {name}\n"));
        for (row, _, _) in rows.iter().filter(|(r, _, _)| keep(&r.label)) {
            let line = format!("{:<6} {:<9} {}", row.depth, row.op.to_string(), row.label);
            s.push_str(line.trim_end());
            s.push('\n');
        }
    }
}

// ---------------------------------------------------------------------------
// lexical call model

/// One `ident(`-shaped call site on a stripped code line.
#[derive(Debug)]
pub(crate) struct CallTok {
    pub(crate) ident: String,
    /// Identifier directly before a `.` (method receiver), if any.
    pub(crate) recv: Option<String>,
    /// Identifier directly before a `::`, if any.
    pub(crate) qual: Option<String>,
    /// True when the call is in method position (`.ident(`).
    pub(crate) method: bool,
    /// True when the token is a definition (`fn ident(`), not a call.
    pub(crate) is_def: bool,
}

fn ident_before(cs: &[char], end: usize) -> Option<String> {
    let mut j = end;
    while j > 0 && (cs[j - 1].is_alphanumeric() || cs[j - 1] == '_') {
        j -= 1;
    }
    (j < end).then(|| cs[j..end].iter().collect())
}

/// Scan a stripped code line for call-shaped tokens, left to right.
/// Macros (`ident!(`) are excluded; numbers never start a token.
pub(crate) fn call_tokens(code: &str) -> Vec<CallTok> {
    let cs: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        let c = cs[i];
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            if i < cs.len() && cs[i] == '(' {
                let ident: String = cs[start..i].iter().collect();
                let method = start > 0 && cs[start - 1] == '.';
                let recv = if method {
                    ident_before(&cs, start - 1)
                } else {
                    None
                };
                let qual = if !method && start >= 2 && cs[start - 1] == ':' && cs[start - 2] == ':'
                {
                    ident_before(&cs, start - 2)
                } else {
                    None
                };
                let is_def = {
                    let mut j = start;
                    while j > 0 && cs[j - 1].is_whitespace() {
                        j -= 1;
                    }
                    j >= 2
                        && cs[j - 2] == 'f'
                        && cs[j - 1] == 'n'
                        && (j < 3 || !(cs[j - 3].is_alphanumeric() || cs[j - 3] == '_'))
                };
                out.push(CallTok {
                    ident,
                    recv,
                    qual,
                    method,
                    is_def,
                });
            }
        } else if c.is_ascii_digit() {
            while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Idents that terminate the walk as a [`Op::Reduce`] in any call form.
const REDUCE_IDENTS: &[&str] = &[
    "allreduce",
    "allreduce_sum",
    "allreduce_min",
    "allreduce_min_window",
    "allreduce_max",
    "allreduce_any",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allgather",
];

/// Idents that terminate the walk as an [`Op::Exchange`] in method position.
const EXCHANGE_IDENTS: &[&str] = &["exchange", "exchange_pooled", "exchange_pooled_counted"];

/// Classify a call token as a terminal collective, if it is one. The comm
/// primitives are the protocol alphabet; the walker never descends into
/// them (`allreduce_inner`'s lock/barrier handshake is an implementation
/// detail, not part of the schedule).
fn terminal_op(t: &CallTok) -> Option<Op> {
    if t.is_def {
        return None;
    }
    if REDUCE_IDENTS.contains(&t.ident.as_str()) {
        return Some(Op::Reduce);
    }
    if t.ident == "any" && t.recv.as_deref() == Some("ctx") {
        return Some(Op::Reduce);
    }
    if t.method && EXCHANGE_IDENTS.contains(&t.ident.as_str()) {
        return Some(Op::Exchange);
    }
    if t.ident == "wait" && t.recv.as_deref() == Some("barrier") {
        // sssp-lint: allow(no-shared-state): op-kind variant, not a primitive
        return Some(Op::Barrier);
    }
    None
}

// ---------------------------------------------------------------------------
// function scanning

/// One function definition with a resolvable body span.
#[derive(Debug)]
pub(crate) struct FnDef {
    pub(crate) name: String,
    /// Surrounding `impl`/`trait` target type, if any.
    pub(crate) impl_type: Option<String>,
    /// True when the signature mentions `self` (method).
    pub(crate) has_self: bool,
    /// Backend name from a `protocol-entry` marker directly above.
    pub(crate) entry: Option<String>,
    /// True when the definition sits in a test region.
    pub(crate) in_test: bool,
    /// `(line index, char column just after the opening brace)`.
    pub(crate) open: (usize, usize),
    /// Line index of the closing brace.
    pub(crate) end_line: usize,
}

/// Extract the target type from an `impl`/`trait` header (text after the
/// keyword, up to the opening brace): angle-bracket spans are stripped,
/// `impl A for B` resolves to `B`, paths keep their last segment.
fn impl_target(header: &str) -> Option<String> {
    let mut flat = String::new();
    let mut angle = 0i32;
    for c in header.chars() {
        match c {
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            c if angle == 0 => flat.push(c),
            _ => {}
        }
    }
    let toks: Vec<&str> = flat
        .split(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .filter(|s| !s.is_empty())
        .collect();
    let pick = match toks.iter().position(|&t| t == "for") {
        Some(i) => toks.get(i + 1).copied(),
        None => toks.first().copied(),
    };
    pick.map(|t| t.rsplit("::").next().unwrap_or(t).to_string())
}

/// Scan a parsed file for function definitions, tracking brace depth,
/// `impl`/`trait` context and `protocol-entry` markers. Declarations
/// without a body (trait methods ending in `;`) are dropped.
pub(crate) fn scan_fns(sf: &SourceFile) -> Vec<FnDef> {
    let mut fns: Vec<FnDef> = Vec::new();
    let mut open_fns: Vec<(usize, usize)> = Vec::new(); // (fn index, depth at open)
    let mut impls: Vec<(String, usize)> = Vec::new(); // (target, depth at open)
    let mut pending_entry: Option<String> = None;
    let mut depth = 0usize;
    // In-flight signature: (fn index, paren depth, signature text).
    let mut sig: Option<(usize, i32, String)> = None;
    // In-flight impl/trait header text.
    let mut impl_head: Option<String> = None;

    for (li, line) in sf.lines.iter().enumerate() {
        if let Some(Marker::Entry(b)) = parse_marker(&line.raw) {
            pending_entry = Some(b);
        }
        let cs: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if let Some((fx, parens, text)) = sig.as_mut() {
                let c = cs[i];
                match c {
                    '(' => {
                        *parens += 1;
                        text.push(c);
                    }
                    ')' => {
                        *parens -= 1;
                        text.push(c);
                    }
                    '{' if *parens == 0 => {
                        depth += 1;
                        let fx = *fx;
                        let has_self = !token_positions(text, "self", false).is_empty();
                        fns[fx].has_self = has_self;
                        fns[fx].open = (li, i + 1);
                        open_fns.push((fx, depth));
                        sig = None;
                    }
                    ';' if *parens == 0 => {
                        // Bodyless declaration: drop the def.
                        let fx = *fx;
                        fns.remove(fx);
                        sig = None;
                    }
                    _ => text.push(c),
                }
                i += 1;
                continue;
            }
            if let Some(text) = impl_head.as_mut() {
                let c = cs[i];
                if c == '{' {
                    depth += 1;
                    if let Some(target) = impl_target(text) {
                        impls.push((target, depth));
                    }
                    impl_head = None;
                } else {
                    text.push(c);
                }
                i += 1;
                continue;
            }
            let c = cs[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
                let boundary_ok = start == 0
                    || !(cs[start - 1].is_alphanumeric()
                        || cs[start - 1] == '_'
                        || cs[start - 1] == '.');
                if !boundary_ok {
                    continue;
                }
                let tok: String = cs[start..i].iter().collect();
                match tok.as_str() {
                    "fn" => {
                        let mut j = i;
                        while j < cs.len() && cs[j].is_whitespace() {
                            j += 1;
                        }
                        let ns = j;
                        while j < cs.len() && (cs[j].is_alphanumeric() || cs[j] == '_') {
                            j += 1;
                        }
                        if j > ns {
                            let name: String = cs[ns..j].iter().collect();
                            fns.push(FnDef {
                                name,
                                impl_type: impls.last().map(|(t, _)| t.clone()),
                                has_self: false,
                                entry: pending_entry.take(),
                                in_test: line.in_test,
                                open: (0, 0),
                                end_line: 0,
                            });
                            sig = Some((fns.len() - 1, 0, String::new()));
                            i = j;
                        }
                    }
                    "impl" | "trait" => {
                        impl_head = Some(String::new());
                    }
                    _ => {}
                }
            } else {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        if open_fns.last().map(|&(_, d)| d) == Some(depth) {
                            if let Some((fx, _)) = open_fns.pop() {
                                fns[fx].end_line = li;
                            }
                        }
                        if impls.last().map(|&(_, d)| d) == Some(depth) {
                            impls.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    // Unterminated bodies (malformed input): close at EOF.
    let last = sf.lines.len().saturating_sub(1);
    for (fx, _) in open_fns {
        fns[fx].end_line = last;
    }
    fns.retain(|f| f.end_line >= f.open.0);
    fns
}

// ---------------------------------------------------------------------------
// the flow model and schedule walk

struct ParsedFile {
    path: String,
    stem: String,
    sf: SourceFile,
    fns: Vec<FnDef>,
}

/// The parsed flow model over the traversable engine files.
pub struct Model {
    files: Vec<ParsedFile>,
}

impl Model {
    /// Parse `(rel_path, text)` pairs. Only [`traversable`] files enter
    /// the model; everything else (including the comm primitives) is
    /// treated as terminal.
    pub fn build(files: &[(String, String)]) -> Model {
        let mut parsed: Vec<ParsedFile> = files
            .iter()
            .filter(|(p, _)| traversable(p))
            .map(|(p, text)| {
                let sf = SourceFile::parse(p, text);
                let fns = scan_fns(&sf);
                let stem = p
                    .rsplit('/')
                    .next()
                    .unwrap_or(p)
                    .trim_end_matches(".rs")
                    .to_string();
                ParsedFile {
                    path: p.clone(),
                    stem,
                    sf,
                    fns,
                }
            })
            .collect();
        parsed.sort_by(|a, b| a.path.cmp(&b.path));
        Model { files: parsed }
    }

    /// Resolve a call token to a function in the model: qualified calls
    /// match the impl type or (for free functions) the module stem, method
    /// calls match `self` methods, bare calls match free functions.
    /// Same-file definitions win over cross-file ones.
    fn resolve(&self, from: usize, t: &CallTok) -> Option<(usize, usize)> {
        let mut first: Option<(usize, usize)> = None;
        for (fj, f) in self.files.iter().enumerate() {
            for (nj, fd) in f.fns.iter().enumerate() {
                if fd.in_test || fd.name != t.ident {
                    continue;
                }
                let ok = if let Some(q) = &t.qual {
                    fd.impl_type.as_deref() == Some(q.as_str()) || (!fd.has_self && f.stem == *q)
                } else if t.method {
                    fd.has_self
                } else {
                    !fd.has_self
                };
                if !ok {
                    continue;
                }
                if fj == from {
                    return Some((fj, nj));
                }
                if first.is_none() {
                    first = Some((fj, nj));
                }
            }
        }
        first
    }

    /// Walk every marked entry point and collect each backend's schedule.
    /// Also reports findings for collectives reached without a label.
    pub fn schedules(&self) -> (Vec<Schedule>, Vec<Finding>) {
        let mut by_backend: Vec<(String, Vec<Event>)> = Vec::new();
        for (fi, f) in self.files.iter().enumerate() {
            for (ni, fd) in f.fns.iter().enumerate() {
                let Some(backend) = &fd.entry else { continue };
                if fd.in_test {
                    continue;
                }
                let mut w = Walk {
                    model: self,
                    events: Vec::new(),
                    stack: Vec::new(),
                };
                w.walk(fi, ni, None, 0);
                match by_backend.iter_mut().find(|(b, _)| b == backend) {
                    Some((_, ev)) => ev.extend(w.events),
                    None => by_backend.push((backend.clone(), w.events)),
                }
            }
        }
        let mut findings: Vec<Finding> = Vec::new();
        for (backend, events) in &by_backend {
            for e in events {
                if e.label.is_none() {
                    findings.push(Finding {
                        file: e.file.clone(),
                        line: e.line,
                        message: format!(
                            "{} reached from the `{backend}` entry without a \
                             `sssp-lint: protocol:` label — label the call site \
                             so the schedule diff can align it",
                            e.op
                        ),
                    });
                }
            }
        }
        findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        findings.dedup();
        let schedules = by_backend
            .into_iter()
            .map(|(backend, events)| Schedule { backend, events })
            .collect();
        (schedules, findings)
    }
}

/// True when the line opens a loop (`loop`/`while`/`for` token present).
fn has_loop_header(code: &str) -> bool {
    ["loop", "while", "for"]
        .iter()
        .any(|k| !token_positions(code, k, false).is_empty())
}

struct Walk<'m> {
    model: &'m Model,
    events: Vec<Event>,
    stack: Vec<(usize, usize)>,
}

impl Walk<'_> {
    /// Walk one function body: emit terminal events at their loop depth,
    /// propagate the innermost label, recurse into resolvable calls.
    /// Closures are scanned at their definition site; recursion is cut by
    /// the call stack.
    fn walk(&mut self, fi: usize, ni: usize, label: Option<String>, base: usize) {
        if self.stack.contains(&(fi, ni)) || self.stack.len() > 64 {
            return;
        }
        self.stack.push((fi, ni));
        let f = &self.model.files[fi];
        let fd = &f.fns[ni];
        let mut label = label;
        let mut loops: Vec<usize> = Vec::new();
        let mut depth = 0usize;
        let mut pending_loop = false;
        for li in fd.open.0..=fd.end_line.min(f.sf.lines.len() - 1) {
            let line = &f.sf.lines[li];
            if line.in_test {
                continue;
            }
            match parse_marker(&line.raw) {
                Some(Marker::Label(l)) => label = Some(l),
                Some(Marker::Implicit(l, op)) => self.events.push(Event {
                    file: f.path.clone(),
                    line: li + 1,
                    label: Some(l),
                    op,
                    depth: base + loops.len(),
                }),
                _ => {}
            }
            let code: String = if li == fd.open.0 {
                line.code.chars().skip(fd.open.1).collect()
            } else {
                line.code.clone()
            };
            if has_loop_header(&code) {
                pending_loop = true;
            }
            let at = base + loops.len() + usize::from(pending_loop);
            for t in call_tokens(&code) {
                if t.is_def {
                    continue;
                }
                if let Some(op) = terminal_op(&t) {
                    self.events.push(Event {
                        file: f.path.clone(),
                        line: li + 1,
                        label: label.clone(),
                        op,
                        depth: at,
                    });
                } else if let Some((cf, cn)) = self.model.resolve(fi, &t) {
                    self.walk(cf, cn, label.clone(), at);
                }
            }
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if pending_loop {
                            loops.push(depth);
                            pending_loop = false;
                        }
                    }
                    '}' => {
                        if loops.last() == Some(&depth) {
                            loops.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
        self.stack.pop();
    }
}

// ---------------------------------------------------------------------------
// whole-tree analysis

/// Result of the whole-tree protocol pass.
#[derive(Debug)]
pub struct Analysis {
    /// The rendered protocol table when both backends' schedules align.
    pub table: Option<String>,
    /// Everything the pass flagged (unlabeled sites, divergence, missing
    /// entries). Empty on a healthy tree.
    pub findings: Vec<Finding>,
    /// The raw per-backend schedules, for tests and tooling.
    pub schedules: Vec<Schedule>,
}

/// Run the full protocol pass over `(rel_path, text)` pairs (the caller
/// collects the [`in_scope`] files; out-of-scope entries are ignored).
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let model = Model::build(files);
    let (schedules, mut findings) = model.schedules();
    let sim = schedules.iter().find(|s| s.backend == "simulated");
    let thr = schedules.iter().find(|s| s.backend == "threaded");
    let mut table = None;
    match (sim, thr) {
        (Some(s), Some(t)) => match merge(&normalize(&s.events), &normalize(&t.events)) {
            Ok(rows) => table = Some(render_table(&rows)),
            Err(msg) => findings.push(Finding {
                file: "crates/core/src/engine/".to_string(),
                line: 0,
                message: msg,
            }),
        },
        _ => {
            for backend in ["simulated", "threaded"] {
                if !schedules.iter().any(|s| s.backend == backend) {
                    findings.push(Finding {
                        file: "crates/core/src/engine/".to_string(),
                        line: 0,
                        message: format!(
                            "no `sssp-lint: protocol-entry({backend})` marker found — \
                             the {backend} backend's schedule cannot be extracted"
                        ),
                    });
                }
            }
        }
    }
    Analysis {
        table,
        findings,
        schedules,
    }
}

// ---------------------------------------------------------------------------
// rule: protocol-divergent-guard

/// Identifiers that seed the rank-local taint set in every function:
/// the rank id and the per-rank message buffers / state.
const TAINT_SEEDS: &[&str] = &["rank", "out", "inbox", "req_inbox", "st", "lg"];

/// Tokens whose presence sanitizes a condition or right-hand side:
/// collective results are identical on every rank, and the config / the
/// decision heuristics are uniform by construction.
const SANITIZERS: &[&str] = &[
    "allreduce",
    "allreduce_sum",
    "allreduce_min",
    "allreduce_min_window",
    "allreduce_max",
    "allreduce_any",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allgather",
    "any",
    "any_active",
    "next_bucket",
    "enabled",
    "cfg",
    "decide",
    "decide_threaded",
    "heuristic_decide",
    "hybrid_should_switch",
    "num_ranks",
];

fn has_any_token(text: &str, needles: &[&str]) -> bool {
    needles
        .iter()
        .any(|n| !token_positions(text, n, false).is_empty())
}

fn has_taint_token(text: &str, taint: &BTreeSet<String>) -> bool {
    taint
        .iter()
        .any(|n| !token_positions(text, n, false).is_empty())
}

/// If the (trimmed) line starts a guard, return `(condition text, is_else)`.
/// Only line-leading guards are modeled; `loop` has no condition and is
/// never tainted.
fn guard_condition(trimmed: &str) -> Option<(String, bool)> {
    let mut t = trimmed;
    let mut is_else = false;
    if let Some(rest) = t.strip_prefix('}') {
        t = rest.trim_start();
    }
    if let Some(rest) = t.strip_prefix("else") {
        if rest.is_empty() || !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            is_else = true;
            t = rest.trim_start();
        }
    }
    for kw in ["if ", "while ", "match "] {
        if let Some(rest) = t.strip_prefix(kw) {
            return Some((rest.trim_end_matches('{').trim().to_string(), is_else));
        }
    }
    if let Some(rest) = t.strip_prefix("for ") {
        let cond = match rest.split_once(" in ") {
            Some((_, c)) => c,
            None => rest,
        };
        return Some((cond.trim_end_matches('{').trim().to_string(), is_else));
    }
    if is_else {
        return Some((String::new(), true));
    }
    None
}

/// Find the first top-level `=` that is an assignment (not part of `==`,
/// `!=`, `<=`, `>=`, `=>`, or a compound operator's tail).
fn assign_eq(text: &str) -> Option<usize> {
    let cs: Vec<char> = text.chars().collect();
    for (i, &c) in cs.iter().enumerate() {
        if c != '=' {
            continue;
        }
        if cs.get(i + 1) == Some(&'=') || cs.get(i + 1) == Some(&'>') {
            continue;
        }
        if i > 0 && matches!(cs[i - 1], '=' | '!' | '<' | '>') {
            continue;
        }
        return Some(i);
    }
    None
}

fn ident_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let cs: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if cs[i].is_alphabetic() || cs[i] == '_' {
            let start = i;
            while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            out.push(cs[start..i].iter().collect());
        } else {
            i += 1;
        }
    }
    out
}

/// Apply one line's `let`/assignment effects to the taint set: a
/// sanitizer on the right-hand side clears the bound names, a tainted
/// right-hand side (or a surrounding tainted block) taints them, and a
/// clean one clears them.
fn apply_assign(code: &str, taint: &mut BTreeSet<String>, in_tainted: bool) {
    let t = code.trim();
    let (lhs, rhs) = if let Some(rest) = t.strip_prefix("let ") {
        let Some(eq) = assign_eq(rest) else { return };
        let (l, r) = rest.split_at(eq);
        let l = l.split(':').next().unwrap_or(l);
        (l.to_string(), r[1..].to_string())
    } else {
        let Some(eq) = assign_eq(t) else { return };
        let (l, r) = t.split_at(eq);
        // Strip a compound operator tail (`+`, `|`, …) off the lhs.
        let l = l
            .trim_end_matches(|c: char| !(c.is_alphanumeric() || c == '_' || c == ')' || c == ']'));
        // Only simple `name` / `name.field` / `name[..]` targets.
        (l.to_string(), r[1..].to_string())
    };
    // Keywords leak into the lhs scan for `if let` / `while let` binding
    // lines; they are not bindable names and must never enter the taint
    // set (a tainted `let` would poison every later `if let` guard).
    const KEYWORDS: &[&str] = &[
        "mut", "_", "if", "else", "let", "ref", "while", "for", "in", "match", "box",
    ];
    let names: Vec<String> = ident_names(&lhs)
        .into_iter()
        .filter(|n| !KEYWORDS.contains(&n.as_str()) && !n.starts_with(char::is_uppercase))
        .collect();
    if names.is_empty() {
        return;
    }
    if has_any_token(&rhs, SANITIZERS) {
        for n in &names {
            taint.remove(n);
        }
    } else if in_tainted || has_taint_token(&rhs, taint) {
        for n in names {
            taint.insert(n);
        }
    } else {
        // Plain-assignment targets get their taint cleared; `let` shadows
        // likewise. Field writes (`t.hwm = …`) conservatively keep only the
        // head name, which the ident scan already produced.
        for n in &names {
            taint.remove(n);
        }
    }
}

/// `protocol-divergent-guard`: a collective call site under a rank-local
/// condition. Every rank must reach every collective the same number of
/// times; a guard on the rank id or on per-rank buffers/state deadlocks
/// the rendezvous (threaded) or skews the schedule (simulated).
pub(crate) fn check_divergent_guard(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for fd in scan_fns(sf) {
        if fd.in_test {
            continue;
        }
        let mut taint: BTreeSet<String> = TAINT_SEEDS.iter().map(|s| s.to_string()).collect();
        let mut depth = 0usize;
        // (depth of block, tainted, guard line index)
        let mut blocks: Vec<(usize, bool, usize)> = Vec::new();
        let mut pending: Option<(bool, usize)> = None;
        for li in fd.open.0..=fd.end_line.min(sf.lines.len() - 1) {
            let code: String = if li == fd.open.0 {
                sf.lines[li].code.chars().skip(fd.open.1).collect()
            } else {
                sf.lines[li].code.clone()
            };
            let trimmed = code.trim_start().to_string();
            // A line-leading `}` closes its block before the rest of the
            // line is interpreted (`} else {` / `} else if … {`).
            let mut rest: &str = &code;
            let mut popped_taint = false;
            if trimmed.starts_with('}') {
                if blocks.last().map(|b| b.0) == Some(depth) {
                    if let Some(b) = blocks.pop() {
                        popped_taint = b.1;
                    }
                }
                depth = depth.saturating_sub(1);
                if let Some(at) = code.find('}') {
                    rest = &code[at + 1..];
                }
            }
            if let Some((cond, is_else)) = guard_condition(&trimmed) {
                let tainted = has_taint_token(&cond, &taint) && !has_any_token(&cond, SANITIZERS);
                pending = Some((tainted || (is_else && popped_taint), li));
            }
            // Events under any tainted block.
            if let Some(&(_, _, gl)) = blocks.iter().rev().find(|b| b.1) {
                for t in call_tokens(&code) {
                    if let Some(op) = terminal_op(&t) {
                        out.push((
                            li,
                            format!(
                                "`{}` ({op}) is reached under a rank-local condition \
                                 (guard at line {}): collectives must execute \
                                 uniformly on every rank",
                                t.ident,
                                gl + 1
                            ),
                        ));
                    }
                }
            }
            let in_tainted = blocks.iter().any(|b| b.1);
            apply_assign(&code, &mut taint, in_tainted);
            for c in rest.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if let Some((t, gl)) = pending.take() {
                            blocks.push((depth, t, gl));
                        }
                    }
                    '}' => {
                        if blocks.last().map(|b| b.0) == Some(depth) {
                            blocks.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// rule: protocol-missing-barrier

/// `protocol-missing-barrier`: two `.lock(` phases in one function with no
/// `.wait(` between them. The rendezvous protocol writes a slot table
/// under one lock, barriers, then reads it under the next; dropping the
/// barrier lets a reader observe a half-written table.
pub(crate) fn check_missing_barrier(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for fd in scan_fns(sf) {
        if fd.in_test {
            continue;
        }
        let mut pending_lock: Option<usize> = None;
        for li in fd.open.0..=fd.end_line.min(sf.lines.len() - 1) {
            let code: String = if li == fd.open.0 {
                sf.lines[li].code.chars().skip(fd.open.1).collect()
            } else {
                sf.lines[li].code.clone()
            };
            let mut marks: Vec<(usize, bool)> = Vec::new(); // (col, is_lock)
            for at in token_positions(&code, ".lock(", false) {
                marks.push((at, true));
            }
            for at in token_positions(&code, ".wait(", false) {
                marks.push((at, false));
            }
            marks.sort_unstable();
            for (_, is_lock) in marks {
                if is_lock {
                    if let Some(prev) = pending_lock {
                        out.push((
                            li,
                            format!(
                                "second `.lock(` with no barrier `.wait(` since the \
                                 lock at line {}: a reader may observe a \
                                 half-written collective slot table",
                                prev + 1
                            ),
                        ));
                    }
                    pending_lock = Some(li);
                } else {
                    pending_lock = None;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// rule: protocol-backend-skew

/// `protocol-backend-skew`: a file defining protocol entries for more than
/// one backend must produce the same normalized schedule from each. (The
/// cross-file simulated/threaded diff runs in `--protocol` mode and CI;
/// this rule catches the single-file case in fixtures and future twins.)
pub(crate) fn check_backend_skew(sf: &SourceFile) -> Vec<(usize, String)> {
    let fns = scan_fns(sf);
    let mut backends: Vec<&String> = Vec::new();
    for fd in &fns {
        if let Some(b) = &fd.entry {
            if !fd.in_test && !backends.contains(&b) {
                backends.push(b);
            }
        }
    }
    if backends.len() < 2 {
        return Vec::new();
    }
    let path = if traversable(&sf.rel_path) {
        sf.rel_path.clone()
    } else {
        "crates/core/src/engine/backend_skew_probe.rs".to_string()
    };
    let text: String = sf
        .lines
        .iter()
        .map(|l| l.raw.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let model = Model::build(&[(path, text)]);
    let (schedules, _) = model.schedules();
    let first = backends[0].clone();
    let second = backends[1].clone();
    let a = schedules.iter().find(|s| s.backend == first);
    let b = schedules.iter().find(|s| s.backend == second);
    let (Some(a), Some(b)) = (a, b) else {
        return Vec::new();
    };
    if let Err(msg) = merge(&normalize(&a.events), &normalize(&b.events)) {
        let line = fns
            .iter()
            .find(|f| f.entry.as_ref() == Some(&second))
            .map(|f| f.open.0)
            .unwrap_or(0);
        return vec![(
            line,
            format!("backend `{second}` skews from `{first}`: {msg}"),
        )];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_parse() {
        assert_eq!(
            parse_marker("    // sssp-lint: protocol-entry(threaded)"),
            Some(Marker::Entry("threaded".to_string()))
        );
        assert_eq!(
            parse_marker("// sssp-lint: protocol: epoch.settle"),
            Some(Marker::Label("epoch.settle".to_string()))
        );
        assert_eq!(
            parse_marker("// sssp-lint: protocol-implicit: setup.weight-extremes reduce"),
            Some(Marker::Implicit(
                "setup.weight-extremes".to_string(),
                Op::Reduce
            ))
        );
        assert_eq!(parse_marker("// sssp-lint: allow(no-panic-hot-path)"), None);
        assert_eq!(parse_marker("let x = 1;"), None);
    }

    #[test]
    fn call_tokens_classify_receivers_and_macros() {
        let toks = call_tokens("ctx.allreduce_min(st.next_nonempty_after(k).unwrap_or(MAX));");
        assert_eq!(toks[0].ident, "allreduce_min");
        assert_eq!(toks[0].recv.as_deref(), Some("ctx"));
        assert!(toks[0].method);
        let toks = call_tokens("decide::rank_volumes(lg, st)");
        assert_eq!(toks[0].qual.as_deref(), Some("decide"));
        assert!(call_tokens("panic!(\"boom\")").is_empty());
        let toks = call_tokens("fn exchange_relax(ctx: &mut RankCtx)");
        assert!(toks[0].is_def);
    }

    #[test]
    fn terminal_ops_are_token_exact() {
        let t = &call_tokens("self.allreduce_inner(v, f)")[0];
        assert_eq!(terminal_op(t), None);
        let t = &call_tokens("allgather(&vals, &mut comm)")[0];
        assert_eq!(terminal_op(t), Some(Op::Reduce));
        let t = &call_tokens("bufs.exchange(BYTES, packet)")[0];
        assert_eq!(terminal_op(t), Some(Op::Exchange));
        let t = &call_tokens("x.iter().any(|v| v > 0)")[1];
        assert_eq!(t.ident, "any");
        assert_eq!(terminal_op(t), None);
        let t = &call_tokens("ctx.any(flag)")[0];
        assert_eq!(terminal_op(t), Some(Op::Reduce));
        let t = &call_tokens("barrier.wait()")[0];
        assert_eq!(terminal_op(t), Some(Op::Barrier));
    }

    #[test]
    fn scan_fns_tracks_impls_entries_and_self() {
        let src = "\
impl<'a> Engine<'a> {
    // sssp-lint: protocol-entry(simulated)
    fn run(&mut self) {
        self.go();
    }
    fn go(&mut self) {}
}
fn free(x: u64) -> u64 {
    x
}
trait Rec {
    fn hook(&mut self);
}
";
        let sf = SourceFile::parse("crates/core/src/engine/x.rs", src);
        let fns = scan_fns(&sf);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["run", "go", "free"]);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Engine"));
        assert_eq!(fns[0].entry.as_deref(), Some("simulated"));
        assert!(fns[0].has_self);
        assert!(!fns[2].has_self);
        assert_eq!(fns[0].open.0, 2);
        assert_eq!(fns[0].end_line, 4);
    }

    fn two_backend_src() -> (String, String) {
        let src = "\
// sssp-lint: protocol-entry(simulated)
fn run_sim(&mut self) {
    loop {
        // sssp-lint: protocol: epoch.select
        let k = allreduce_min(&self.coll, &mut self.comm);
        // sssp-lint: protocol: epoch.body
        self.body();
    }
}
fn body(&mut self) {
    let step = bufs.exchange(BYTES, packet);
}
// sssp-lint: protocol-entry(threaded)
fn run_thr(ctx: &mut RankCtx) {
    loop {
        // sssp-lint: protocol: epoch.select
        let k = ctx.allreduce_min(v);
        // sssp-lint: protocol: epoch.body
        let step = ctx.exchange_pooled_counted(out, inbox, BYTES, packet);
    }
}
";
        ("crates/core/src/engine/x.rs".to_string(), src.to_string())
    }

    #[test]
    fn walker_labels_depths_and_diffs_align() {
        let a = analyze(&[two_backend_src()]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        let table = a.table.expect("table");
        assert!(table.contains("epoch.select"));
        assert!(table.contains("epoch.body"));
        let sim = &a.schedules[0];
        assert_eq!(sim.backend, "simulated");
        assert_eq!(sim.events.len(), 2);
        assert_eq!(sim.events[0].depth, 1);
        assert_eq!(sim.events[1].op, Op::Exchange);
        assert_eq!(sim.events[1].label.as_deref(), Some("epoch.body"));
    }

    #[test]
    fn unlabeled_collectives_are_flagged() {
        let src = "\
// sssp-lint: protocol-entry(simulated)
fn run(&mut self) {
    let k = allreduce_min(&self.coll, &mut self.comm);
}
";
        let a = analyze(&[("crates/core/src/engine/x.rs".to_string(), src.to_string())]);
        assert_eq!(a.findings.len(), 2, "{:?}", a.findings);
        assert!(a.findings[0].message.contains("without a"));
    }

    #[test]
    fn normalize_merges_consecutive_rows_only() {
        let ev = |label: &str, op, depth| Event {
            file: "f".to_string(),
            line: 1,
            label: Some(label.to_string()),
            op,
            depth,
        };
        let rows = normalize(&[
            ev("a", Op::Reduce, 1),
            ev("a", Op::Reduce, 1),
            ev("b", Op::Exchange, 1),
            ev("a", Op::Reduce, 1),
        ]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 2);
    }

    #[test]
    fn merge_reports_first_divergence() {
        let row = |label: &str| {
            (
                TableRow {
                    depth: 1,
                    op: Op::Reduce,
                    label: label.to_string(),
                },
                1,
            )
        };
        let err = merge(&[row("a"), row("b")], &[row("a")]).unwrap_err();
        assert!(err.contains("row 2"), "{err}");
        assert!(err.contains("schedule ended"), "{err}");
        let ok = merge(&[row("a")], &[(row("a").0, 3)]).unwrap();
        assert_eq!(ok[0].1, 1);
        assert_eq!(ok[0].2, 3);
    }

    #[test]
    fn divergent_guard_flags_and_sanitizes() {
        let src = "\
fn f(ctx: &mut RankCtx) {
    let r = ctx.rank();
    if r == 0 {
        ctx.allreduce_sum(1);
    }
    let total = ctx.allreduce_sum(v);
    if total > 0 {
        ctx.allreduce_max(total);
    }
    while ctx.any(!st.active.is_empty()) {
        ctx.exchange_pooled(out, inbox);
    }
}
";
        let sf = SourceFile::parse("crates/core/src/engine/x.rs", src);
        let hits = check_divergent_guard(&sf);
        let lines: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert_eq!(lines, vec![3]);
    }

    #[test]
    fn divergent_guard_else_branch_carries_taint() {
        let src = "\
fn f(ctx: &mut RankCtx) {
    if inbox.is_empty() {
        noop();
    } else {
        ctx.allreduce_sum(1);
    }
}
";
        let sf = SourceFile::parse("crates/core/src/engine/x.rs", src);
        let hits = check_divergent_guard(&sf);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 4);
    }

    #[test]
    fn if_let_on_tainted_rhs_does_not_taint_the_let_keyword() {
        // Regression: `if let (a, b) = (inbox.x(), inbox.y())` used to push
        // the keywords `if`/`let` into the taint set via the lhs ident scan,
        // after which EVERY later `if let` guard (whose condition text starts
        // with `let …`) read as rank-local — e.g. a guard on a uniform run
        // parameter like `if let Some(tv) = target`.
        let src = "\
fn f(ctx: &mut RankCtx, target: Option<u32>) {
    if let (Some(a), Some(b)) = (inbox.first(), inbox.last()) {
        noop(a, b);
    }
    if let Some(tv) = target {
        ctx.allreduce_min(tv);
    }
}
";
        let sf = SourceFile::parse("crates/core/src/engine/x.rs", src);
        let hits = check_divergent_guard(&sf);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn missing_barrier_resets_per_function() {
        let src = "\
fn bad(&self) {
    let a = self.slots.lock();
    let b = self.slots.lock();
    self.barrier.wait();
}
fn good(&self) {
    let a = self.slots.lock();
    self.barrier.wait();
    let b = self.slots.lock();
    self.barrier.wait();
}
";
        let sf = SourceFile::parse("crates/comm/src/x.rs", src);
        let hits = check_missing_barrier(&sf);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn backend_skew_fires_on_single_file_divergence() {
        let src = "\
// sssp-lint: protocol-entry(simulated)
fn run_sim(&mut self) {
    // sssp-lint: protocol: a
    let k = allreduce_min(&self.coll, &mut self.comm);
    // sssp-lint: protocol: b
    let s = allreduce_sum(&self.coll, &mut self.comm);
}
// sssp-lint: protocol-entry(threaded)
fn run_thr(ctx: &mut RankCtx) {
    // sssp-lint: protocol: a
    let k = ctx.allreduce_min(v);
}
";
        let sf = SourceFile::parse("crates/core/src/engine/x.rs", src);
        let hits = check_backend_skew(&sf);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 8);
        assert!(hits[0].1.contains("diverge"), "{}", hits[0].1);
        let (p, aligned) = two_backend_src();
        let sf = SourceFile::parse(&p, &aligned);
        assert!(check_backend_skew(&sf).is_empty());
    }
}
