//! CLI for the project lint gate.
//!
//! ```text
//! cargo run -p sssp-lint -- --check            # lint the workspace
//! cargo run -p sssp-lint -- --check --root DIR # lint another tree
//! cargo run -p sssp-lint -- --list-rules       # show the rule set
//! ```
//!
//! Exits 0 when clean, 1 when violations are found, 2 on usage or I/O
//! errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: sssp-lint [--check] [--root DIR] [--list-rules]\n\
                     Lints every .rs file in the workspace against the \
                     project rules.\nMark deliberate exceptions with \
                     `// sssp-lint: allow(rule-name): reason`."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in sssp_lint::rules::RULES {
            println!("{:<20} {}", rule.name, normalize_ws(rule.summary));
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(sssp_lint::default_root);
    let files = match sssp_lint::workspace_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sssp-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let n_files = files.len();
    match sssp_lint::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("sssp-lint: clean ({n_files} files checked)");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "sssp-lint: {} issue(s) in {n_files} files checked",
                diags.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sssp-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sssp-lint: {msg} (try --help)");
    ExitCode::from(2)
}

/// Collapse the multi-line rule summaries to single spaces for display.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
