//! CLI for the project lint gate.
//!
//! ```text
//! cargo run -p sssp-lint -- --check            # lint the workspace
//! cargo run -p sssp-lint -- --check --root DIR # lint another tree
//! cargo run -p sssp-lint -- --list-rules       # show the rule set
//! cargo run -p sssp-lint -- --protocol         # extract + diff the
//!                                              # collective schedules
//! cargo run -p sssp-lint -- --concurrency      # lock-order + channel
//!                                              # topology models
//! cargo run -p sssp-lint -- --concurrency-locks     # lock table only
//! cargo run -p sssp-lint -- --concurrency-channels  # channel table only
//! cargo run -p sssp-lint -- --panics           # panic-reachability &
//!                                              # unwind-safety audit
//! cargo run -p sssp-lint -- --panics-table     # table only (golden diffs)
//! ```
//!
//! Exits 0 when clean, 1 when violations are found, 2 on usage or I/O
//! errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut protocol = false;
    // None = not requested; Some(None) = both tables; Some(Some(..)) = one.
    let mut concurrency: Option<Option<&'static str>> = None;
    // None = not requested; Some(true) = table only (for golden diffs).
    let mut panics: Option<bool> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--list-rules" => list_rules = true,
            "--protocol" => protocol = true,
            "--concurrency" => concurrency = Some(None),
            "--concurrency-locks" => concurrency = Some(Some("locks")),
            "--concurrency-channels" => concurrency = Some(Some("channels")),
            "--panics" => panics = Some(false),
            "--panics-table" => panics = Some(true),
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: sssp-lint [--check] [--root DIR] [--list-rules] [--protocol]\n\
                     \x20                [--concurrency | --concurrency-locks | --concurrency-channels]\n\
                     \x20                [--panics | --panics-table]\n\
                     Lints every .rs file in the workspace against the \
                     project rules.\nMark deliberate exceptions with \
                     `// sssp-lint: allow(rule-name): reason`.\n\
                     --protocol extracts both engine backends' collective \
                     schedules,\ndiffs them, and prints the normalized \
                     protocol table.\n\
                     --concurrency builds the lock-order graph and channel \
                     topology\nfrom the comm and threaded-engine sources and \
                     prints both tables;\nthe -locks/-channels variants print \
                     one table (for golden diffs).\n\
                     --panics walks the call graph from every process and \
                     thread root,\nclassifies reachable panic sites with their \
                     held locks, prints the\nreachability table and enforces \
                     the unwind-safety rules;\n--panics-table prints the table \
                     only (for golden diffs)."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        print!("{}", sssp_lint::rules::list_rules_text());
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(sssp_lint::default_root);

    if protocol {
        let files = match sssp_lint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("sssp-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let mut inputs = Vec::new();
        for (rel, path) in files {
            if !sssp_lint::protocol::in_scope(&rel) {
                continue;
            }
            match std::fs::read_to_string(&path) {
                Ok(text) => inputs.push((rel, text)),
                Err(e) => {
                    eprintln!("sssp-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        let analysis = sssp_lint::protocol::analyze(&inputs);
        if let Some(table) = &analysis.table {
            print!("{table}");
        }
        if analysis.findings.is_empty() {
            eprintln!(
                "sssp-lint: protocol clean ({} backends)",
                analysis.schedules.len()
            );
            return ExitCode::SUCCESS;
        }
        for f in &analysis.findings {
            eprintln!("{f}");
        }
        eprintln!("sssp-lint: {} protocol finding(s)", analysis.findings.len());
        return ExitCode::FAILURE;
    }
    if let Some(table) = concurrency {
        let files = match sssp_lint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("sssp-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let mut inputs = Vec::new();
        for (rel, path) in files {
            if !sssp_lint::concurrency::in_scope(&rel) {
                continue;
            }
            match std::fs::read_to_string(&path) {
                Ok(text) => inputs.push((rel, text)),
                Err(e) => {
                    eprintln!("sssp-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        let analysis = sssp_lint::concurrency::analyze(&inputs);
        match table {
            Some("locks") => print!("{}", analysis.lock_table),
            Some(_) => print!("{}", analysis.channel_table),
            None => {
                print!("{}", analysis.lock_table);
                println!();
                print!("{}", analysis.channel_table);
            }
        }
        if analysis.findings.is_empty() {
            eprintln!(
                "sssp-lint: concurrency clean ({} locks, {} channels)",
                analysis.num_locks, analysis.num_channels
            );
            return ExitCode::SUCCESS;
        }
        for f in &analysis.findings {
            eprintln!("{f}");
        }
        eprintln!(
            "sssp-lint: {} concurrency finding(s)",
            analysis.findings.len()
        );
        return ExitCode::FAILURE;
    }
    if let Some(table_only) = panics {
        let files = match sssp_lint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("sssp-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let mut inputs = Vec::new();
        for (rel, path) in files {
            match std::fs::read_to_string(&path) {
                Ok(text) => inputs.push((rel, text)),
                Err(e) => {
                    eprintln!("sssp-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        let analysis = sssp_lint::panics::analyze(&inputs);
        print!("{}", analysis.table);
        if table_only {
            return ExitCode::SUCCESS;
        }
        if analysis.findings.is_empty() {
            eprintln!(
                "sssp-lint: panic audit clean ({} roots, {} sites)",
                analysis.num_roots, analysis.num_sites
            );
            return ExitCode::SUCCESS;
        }
        for f in &analysis.findings {
            eprintln!("{f}");
        }
        eprintln!("sssp-lint: {} panic finding(s)", analysis.findings.len());
        return ExitCode::FAILURE;
    }
    let files = match sssp_lint::workspace_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sssp-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let n_files = files.len();
    match sssp_lint::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("sssp-lint: clean ({n_files} files checked)");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "sssp-lint: {} issue(s) in {n_files} files checked",
                diags.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sssp-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sssp-lint: {msg} (try --help)");
    ExitCode::from(2)
}
