//! Panic-reachability & unwind-safety analysis (`sssp-lint --panics`).
//!
//! The engine's hot-path rules keep panics *out* of the supersteps; this
//! pass asks the complementary question: for the panics that remain
//! (deliberate aborts, validated invariants, indexing), **who reaches
//! them and what do they take down?** A panic on a plain process root
//! (a bench binary's `main`) kills one process — acceptable. A panic on
//! a worker thread that holds a lock poisons it for every sibling, and a
//! panic that crosses an unguarded thread boundary dies silently in
//! `JoinHandle` limbo. Those are the bugs this pass pins at lint time.
//!
//! Roots come from two places:
//!
//! - every `fn main` under a `src/bin/` or `src/main.rs` path is a
//!   process root, labeled `bin:<stem>`;
//! - a `// sssp-lint: panic-root(<label>[, forwarded])` marker above a
//!   function declares a thread entry point. `forwarded` documents that
//!   panics propagate through a joining parent (and are absorbed there);
//!   without it, every direct panic site in the body must share a line
//!   with `catch_unwind`.
//!
//! Sites are classified lexically per function: `panic!`-family macros,
//! `.unwrap()`/`.expect(`, `assert!`-family (`debug_assert!` is exempt —
//! it compiles out of release kernels), slice indexing, and `/`/`%` with
//! a non-literal divisor. A lightweight per-function lock walk (guards
//! bound by `let` from `.lock(` receivers or `lock_<name>(` helpers,
//! released on `drop(g)` and scope exit) supplies the held set at each
//! site. The committed golden `golden/panic_reachability.txt` records
//! the whole model; four engine rules (`panic-in-critical-section`,
//! `panic-on-worker-boundary`, `panic-unvalidated-input`,
//! `panic-silent-poison`) enforce the invariants file by file.
//!
//! Allow markers naming a `panic-*` rule must carry a justification
//! (`// sssp-lint: allow(panic-…): why this abort is correct`); a bare
//! allow is itself a finding.

use std::collections::BTreeSet;
use std::fmt;

use crate::callgraph::{CallGraph, FnId};
use crate::protocol::{scan_fns, FnDef};
use crate::source::SourceFile;

// ---------------------------------------------------------------------------
// site classification

/// What kind of panic a site can raise.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum Kind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Explicit,
    /// `.unwrap()` / `.expect(`.
    UnwrapExpect,
    /// `assert!` / `assert_eq!` / `assert_ne!`.
    Assert,
    /// Slice or array indexing.
    Index,
    /// `/` or `%` with a non-literal divisor.
    Arith,
}

/// One potentially-panicking site inside a function body.
#[derive(Debug)]
pub(crate) struct Site {
    /// 0-based line index.
    pub(crate) line: usize,
    pub(crate) kind: Kind,
    /// Lock guards live when control reaches the line (lexical).
    pub(crate) held: Vec<String>,
    /// True when the line itself mentions `catch_unwind`.
    pub(crate) guarded: bool,
    /// True when the line carries a panic-related allow marker.
    pub(crate) allowed: bool,
}

const EXPLICIT: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];
const ASSERTS: &[&str] = &["assert!(", "assert_eq!(", "assert_ne!("];

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `what` in `code` whose preceding char is not part of a
/// larger identifier (so `debug_assert!(` never matches `assert!(`).
fn needle_positions(code: &str, what: &str) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    let mut from = 0;
    while let Some(p) = code[from..].find(what) {
        let at = from + p;
        let pre_ok = at == 0 || !ident_char(bytes[at - 1] as char);
        if pre_ok {
            n += 1;
        }
        from = at + what.len();
    }
    n
}

/// Count method-position needles (`.unwrap()`, `.expect(`): the literal
/// already starts with `.`, so no boundary check is needed.
fn method_positions(code: &str, what: &str) -> usize {
    code.matches(what).count()
}

/// Indexing sites: `[` whose previous char closes a value expression.
fn index_sites(code: &str) -> usize {
    let cs: Vec<char> = code.chars().collect();
    let mut n = 0;
    for (i, &c) in cs.iter().enumerate() {
        if c == '[' && i > 0 {
            let p = cs[i - 1];
            if ident_char(p) || p == ')' || p == ']' {
                n += 1;
            }
        }
    }
    n
}

/// `/` or `%` whose divisor starts with an identifier (a literal divisor
/// cannot be zero; an identifier can).
fn arith_sites(code: &str) -> usize {
    let cs: Vec<char> = code.chars().collect();
    let mut n = 0;
    for (i, &c) in cs.iter().enumerate() {
        if c != '/' && c != '%' {
            continue;
        }
        let prev = cs[..i].iter().rev().find(|ch| !ch.is_whitespace());
        let prev_ok = prev.is_some_and(|&p| ident_char(p) || p == ')' || p == ']');
        if !prev_ok {
            continue;
        }
        let mut j = i + 1;
        if cs.get(j) == Some(&'=') {
            j += 1; // compound `/=` / `%=`
        }
        while j < cs.len() && cs[j].is_whitespace() {
            j += 1;
        }
        if cs.get(j).is_some_and(|&d| d.is_alphabetic() || d == '_') {
            n += 1;
        }
    }
    n
}

/// Ident immediately before a byte offset (receiver of `.lock(`).
fn ident_before(code: &str, end: usize) -> Option<String> {
    let cs: Vec<char> = code[..end].chars().collect();
    let mut i = cs.len();
    while i > 0 && ident_char(cs[i - 1]) {
        i -= 1;
    }
    if i == cs.len() {
        None
    } else {
        Some(cs[i..].iter().collect())
    }
}

/// Lock acquisitions on one code line: `.lock(` receivers plus
/// `.lock_<name>(` helper methods (the serving layer's recovering
/// `lock_queue` helper — method position only, so free functions that
/// merely start with `lock_` never register).
fn acquisitions(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(".lock(") {
        let at = from + p;
        out.push(ident_before(code, at).unwrap_or_else(|| "<lock>".into()));
        from = at + ".lock(".len();
    }
    let mut from = 0;
    while let Some(p) = code[from..].find(".lock_") {
        let at = from + p;
        let rest = &code[at + ".lock_".len()..];
        let name: String = rest.chars().take_while(|&c| ident_char(c)).collect();
        if !name.is_empty() && rest[name.len()..].starts_with('(') {
            out.push(name);
        }
        from = at + ".lock_".len();
    }
    out
}

/// Name bound by a `let` statement opening on this line, if any.
fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|&c| ident_char(c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Guards released by `drop(ident)` calls on this line.
fn drops(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find("drop(") {
        let at = from + p;
        let pre_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !ident_char(c) && c != '.'
        };
        if pre_ok {
            let inner = &code[at + "drop(".len()..];
            let name: String = inner.chars().take_while(|&c| ident_char(c)).collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
        from = at + "drop(".len();
    }
    out
}

struct Guard {
    name: Option<String>,
    lock: String,
    depth: usize,
}

/// Classify every potentially-panicking site in one function body,
/// tracking the lexically held lock set. Test regions are skipped.
pub(crate) fn scan_sites(sf: &SourceFile, fd: &FnDef) -> Vec<Site> {
    let mut sites = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize; // inside the already-open body brace
    let mut pending_let: Option<Option<String>> = None;
    let last = sf.lines.len().saturating_sub(1);
    for li in fd.open.0..=fd.end_line.min(last) {
        let line = &sf.lines[li];
        if line.in_test {
            continue;
        }
        let code: String = if li == fd.open.0 {
            line.code.chars().skip(fd.open.1).collect()
        } else {
            line.code.clone()
        };
        let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
        let guarded = code.contains("catch_unwind");
        let allowed = line
            .allows
            .iter()
            .any(|a| a.starts_with("panic-") || a == "no-panic-hot-path");
        let mut push = |kind: Kind, n: usize| {
            for _ in 0..n {
                sites.push(Site {
                    line: li,
                    kind,
                    held: held.clone(),
                    guarded,
                    allowed,
                });
            }
        };
        let explicit: usize = EXPLICIT.iter().map(|m| needle_positions(&code, m)).sum();
        push(Kind::Explicit, explicit);
        let ue = method_positions(&code, ".unwrap()") + method_positions(&code, ".expect(");
        push(Kind::UnwrapExpect, ue);
        let asserts: usize = ASSERTS.iter().map(|m| needle_positions(&code, m)).sum();
        push(Kind::Assert, asserts);
        push(Kind::Index, index_sites(&code));
        push(Kind::Arith, arith_sites(&code));

        // Lock-walk events, after the snapshot: a guard never covers the
        // acquisition's own line.
        if pending_let.is_none() {
            if let Some(name) = let_binding(&code) {
                pending_let = Some(Some(name));
            }
        }
        for lock in acquisitions(&code) {
            let name = pending_let.clone().flatten();
            if name.is_some() {
                guards.push(Guard { name, lock, depth });
            }
        }
        for dropped in drops(&code) {
            guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    guards.retain(|g| g.depth < depth);
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        if code.trim_end().ends_with(';') {
            pending_let = None;
        }
    }
    sites
}

// ---------------------------------------------------------------------------
// the per-file rules

/// `panic-in-critical-section`: an explicit panic, unwrap/expect or
/// assert while a lock guard is held poisons the lock for every waiter.
pub fn check_critical_section(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for fd in scan_fns(sf) {
        if fd.in_test {
            continue;
        }
        for s in scan_sites(sf, &fd) {
            let panics = matches!(s.kind, Kind::Explicit | Kind::UnwrapExpect | Kind::Assert);
            if panics && !s.held.is_empty() && !s.guarded {
                out.push((
                    s.line,
                    format!(
                        "potential panic while holding `{}` — a panic here \
                         poisons the lock for every waiter; drop the guard \
                         first, guard with catch_unwind, or justify the abort",
                        s.held.join(", ")
                    ),
                ));
            }
        }
    }
    out
}

/// Parsed `panic-root(label[, forwarded])` marker on one raw line. Only
/// a marker at the start of a plain comment counts (the prefix may hold
/// nothing but whitespace and comment punctuation), and the label must
/// be a kebab-case token — so marker-shaped text inside doc prose or
/// string literals never registers a root.
pub(crate) fn parse_panic_root(raw: &str) -> Option<(String, bool)> {
    let at = raw.find("sssp-lint: panic-root(")?;
    if !raw[..at]
        .chars()
        .all(|c| c.is_whitespace() || matches!(c, '/' | '!' | '*'))
    {
        return None;
    }
    let inner = &raw[at + "sssp-lint: panic-root(".len()..];
    let close = inner.find(')')?;
    let mut parts = inner[..close].split(',').map(str::trim);
    let label = parts.next().filter(|l| !l.is_empty())?.to_string();
    if !label
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return None;
    }
    let forwarded = parts.any(|p| p == "forwarded");
    Some((label, forwarded))
}

/// `panic-on-worker-boundary`: direct panic sites in a non-forwarded
/// thread root must share their line with `catch_unwind` — otherwise the
/// panic dies in `JoinHandle` limbo and the worker vanishes silently.
pub fn check_worker_boundary(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let fns = scan_fns(sf);
    for (li, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some((label, forwarded)) = parse_panic_root(&line.raw) else {
            continue;
        };
        let Some(fd) = fns
            .iter()
            .filter(|f| f.open.0 >= li && !f.in_test)
            .min_by_key(|f| f.open.0)
        else {
            out.push((
                li,
                format!("panic-root(`{label}`) marker attaches to no function"),
            ));
            continue;
        };
        if forwarded {
            continue;
        }
        for s in scan_sites(sf, fd) {
            let panics = matches!(s.kind, Kind::Explicit | Kind::UnwrapExpect | Kind::Assert);
            if panics && !s.guarded {
                out.push((
                    s.line,
                    format!(
                        "panic can cross the `{label}` thread boundary — wrap \
                         the work in catch_unwind or mark the root \
                         `forwarded` if a parent joins and absorbs it"
                    ),
                ));
            }
        }
    }
    out
}

/// Idents bound by `QuerySpec::Variant {{ … }}` destructuring patterns
/// on one code line.
fn query_spec_taints(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find("QuerySpec::") {
        let at = from + p;
        let rest = &code[at..];
        if let Some(ob) = rest.find('{') {
            if let Some(cb) = rest[ob..].find('}') {
                for part in rest[ob + 1..ob + cb].split(',') {
                    // `root`, `root: r`, `..` — the binding is the last ident.
                    let name: String = part
                        .chars()
                        .rev()
                        .skip_while(|c| c.is_whitespace())
                        .take_while(|&c| ident_char(c))
                        .collect::<Vec<_>>()
                        .into_iter()
                        .rev()
                        .collect();
                    if !name.is_empty() && name != "_" {
                        out.push(name);
                    }
                }
            }
        }
        from = at + "QuerySpec::".len();
    }
    out
}

/// `panic-unvalidated-input`: a function that destructures request
/// vertices out of a `QuerySpec` and indexes with them must have called
/// `validate()` — requests are untrusted input.
pub fn check_unvalidated_input(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let last = sf.lines.len().saturating_sub(1);
    for fd in scan_fns(sf) {
        if fd.in_test {
            continue;
        }
        let mut taints: BTreeSet<String> = BTreeSet::new();
        let mut sanitized = false;
        for li in fd.open.0..=fd.end_line.min(last) {
            let code = &sf.lines[li].code;
            if code.contains("validate(") {
                sanitized = true;
            }
            taints.extend(query_spec_taints(code));
        }
        if sanitized || taints.is_empty() {
            continue;
        }
        for li in fd.open.0..=fd.end_line.min(last) {
            let line = &sf.lines[li];
            if line.in_test {
                continue;
            }
            let cs: Vec<char> = line.code.chars().collect();
            for (i, &c) in cs.iter().enumerate() {
                if c != '[' || i == 0 {
                    continue;
                }
                let p = cs[i - 1];
                if !(ident_char(p) || p == ')' || p == ']') {
                    continue;
                }
                let mut nest = 1;
                let mut j = i + 1;
                while j < cs.len() && nest > 0 {
                    match cs[j] {
                        '[' => nest += 1,
                        ']' => nest -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner: String = cs[i + 1..j.saturating_sub(1).max(i + 1)].iter().collect();
                for t in &taints {
                    if needle_positions(&inner, t) > 0 {
                        out.push((
                            li,
                            format!(
                                "`{t}` comes from a QuerySpec and indexes a \
                                 buffer without validate() — an out-of-range \
                                 request would panic the worker"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
    out
}

/// `panic-silent-poison`: `.lock()`/`.wait()` + unwrap/expect dies the
/// moment any other thread has panicked with the guard held, multiplying
/// one crash into many. Recover with
/// `unwrap_or_else(PoisonError::into_inner)` or justify die-on-poison.
pub fn check_silent_poison(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (li, line) in sf.lines.iter().enumerate() {
        let code = &line.code;
        let primitive = code.contains(".lock(") || code.contains(".wait(");
        let dies = code.contains(".unwrap()") || code.contains(".expect(");
        if primitive && dies && !code.contains("unwrap_or_else") {
            out.push((
                li,
                "a poisoned Mutex/Condvar panics every thread that touches \
                 it next — recover with unwrap_or_else(PoisonError::\
                 into_inner) or justify die-on-poison with a marker"
                    .to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// the workspace analysis and the golden table

/// One analysis finding with file attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The merged panic-reachability analysis.
pub struct Analysis {
    /// Rendered reachability model (golden `panic_reachability.txt`).
    pub table: String,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of roots (process mains + marked thread entries).
    pub num_roots: usize,
    /// Number of classified sites in the table's functions.
    pub num_sites: usize,
}

enum RootKind {
    Bin,
    Thread { forwarded: bool },
}

struct Root {
    label: String,
    kind: RootKind,
    id: FnId,
}

fn is_bin_main(path: &str, fd: &FnDef) -> bool {
    if fd.name != "main" || fd.in_test {
        return false;
    }
    path.starts_with("src/bin/")
        || path == "src/main.rs"
        || path.contains("/src/bin/")
        || path.ends_with("/src/main.rs")
}

fn bin_label(path: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    if stem == "main" {
        // `crates/<crate>/src/main.rs` → the crate dir names the binary.
        let crate_dir = path
            .split("/src/")
            .next()
            .unwrap_or(path)
            .rsplit('/')
            .next()
            .unwrap_or(path);
        format!("bin:{crate_dir}")
    } else {
        format!("bin:{stem}")
    }
}

/// Discover process and thread roots in a built call graph.
fn find_roots(g: &CallGraph) -> (Vec<Root>, Vec<Finding>) {
    let mut roots = Vec::new();
    let mut findings = Vec::new();
    for (fi, f) in g.files.iter().enumerate() {
        for (ni, fd) in f.fns.iter().enumerate() {
            if is_bin_main(&f.path, fd) {
                roots.push(Root {
                    label: bin_label(&f.path),
                    kind: RootKind::Bin,
                    id: (fi, ni),
                });
            }
        }
        for (li, line) in f.sf.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some((label, forwarded)) = parse_panic_root(&line.raw) else {
                continue;
            };
            let fd = f
                .fns
                .iter()
                .enumerate()
                .filter(|(_, d)| d.open.0 >= li && !d.in_test)
                .min_by_key(|(_, d)| d.open.0);
            match fd {
                Some((ni, _)) => {
                    if roots
                        .iter()
                        .any(|r| matches!(r.kind, RootKind::Thread { .. }) && r.label == label)
                    {
                        findings.push(Finding {
                            file: f.path.clone(),
                            line: li + 1,
                            rule: "panic-on-worker-boundary",
                            message: format!("duplicate panic-root label `{label}`"),
                        });
                    }
                    roots.push(Root {
                        label,
                        kind: RootKind::Thread { forwarded },
                        id: (fi, ni),
                    });
                }
                None => findings.push(Finding {
                    file: f.path.clone(),
                    line: li + 1,
                    rule: "panic-on-worker-boundary",
                    message: format!("panic-root(`{label}`) marker attaches to no function"),
                }),
            }
        }
    }
    roots.sort_by(|a, b| a.label.cmp(&b.label));
    (roots, findings)
}

/// Lines whose allow marker names a `panic-*` rule without a
/// `: justification` tail.
fn unjustified_allows(path: &str, sf: &SourceFile) -> Vec<Finding> {
    let rule_name = |n: &str| {
        !n.is_empty()
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    };
    let mut out = Vec::new();
    for (li, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(at) = line.raw.find("sssp-lint: allow(") else {
            continue;
        };
        let inner = &line.raw[at + "sssp-lint: allow(".len()..];
        let Some(close) = inner.find(')') else {
            continue;
        };
        let names: Vec<&str> = inner[..close].split(',').map(str::trim).collect();
        // Marker-shaped text in prose or string literals has non-rule
        // characters in its list; a real marker never does.
        if !names.iter().all(|n| rule_name(n)) || !names.iter().any(|n| n.starts_with("panic-")) {
            continue;
        }
        let tail = inner[close + 1..].trim_start();
        let justified = tail.strip_prefix(':').is_some_and(|t| !t.trim().is_empty());
        if !justified {
            out.push(Finding {
                file: path.to_string(),
                line: li + 1,
                rule: "panic-unjustified-allow",
                message: "allowing a panic-* rule needs `): <justification>` \
                          — say why this abort is correct"
                    .to_string(),
            });
        }
    }
    out
}

/// Build the full panic-reachability analysis from `(rel_path, text)`
/// pairs spanning the whole workspace. Findings respect inline allow
/// markers, like the engine-driven rules.
/// A per-file panic rule: returns `(line, message)` findings.
type RuleCheck = fn(&SourceFile) -> Vec<(usize, String)>;

/// Build the full panic-reachability analysis from `(rel_path, text)`
/// pairs spanning the whole workspace. Findings respect inline allow
/// markers, like the engine-driven rules.
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let g = CallGraph::build(files);
    let (roots, mut findings) = find_roots(&g);

    // Per-file rule findings, scope- and allow-filtered exactly like the
    // engine, so `--panics` and `--check` agree.
    let per_rule: [(&str, RuleCheck); 4] = [
        ("panic-in-critical-section", check_critical_section),
        ("panic-on-worker-boundary", check_worker_boundary),
        ("panic-unvalidated-input", check_unvalidated_input),
        ("panic-silent-poison", check_silent_poison),
    ];
    for f in &g.files {
        for (rule, check) in per_rule {
            let Some(r) = crate::rules::RULES.iter().find(|r| r.name == rule) else {
                continue;
            };
            if !r.scope.matches(&f.path) {
                continue;
            }
            for (li, message) in check(&f.sf) {
                let line = &f.sf.lines[li];
                if line.in_test || line.allows.iter().any(|a| a == rule) {
                    continue;
                }
                findings.push(Finding {
                    file: f.path.clone(),
                    line: li + 1,
                    rule: r.name,
                    message,
                });
            }
        }
        findings.extend(unjustified_allows(&f.path, &f.sf));
    }

    // Reachability: which roots reach each function.
    let reach: Vec<(usize, BTreeSet<FnId>)> = roots
        .iter()
        .enumerate()
        .map(|(ri, r)| (ri, g.reachable(r.id)))
        .collect();

    // Cross-file escalation: an unguarded, unallowed panic site under a
    // held lock, reachable from a live (non-forwarded) thread root, is a
    // poisoning crash multiplier no single file can see.
    let live_threads: Vec<usize> = roots
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.kind, RootKind::Thread { forwarded: false }))
        .map(|(ri, _)| ri)
        .collect();
    for (fi, f) in g.files.iter().enumerate() {
        for (ni, fd) in f.fns.iter().enumerate() {
            if fd.in_test {
                continue;
            }
            let reaching: Vec<&str> = live_threads
                .iter()
                .filter(|&&ri| reach[ri].1.contains(&(fi, ni)))
                .map(|&ri| roots[ri].label.as_str())
                .collect();
            if reaching.is_empty() {
                continue;
            }
            for s in scan_sites(&f.sf, fd) {
                let panics = matches!(s.kind, Kind::Explicit | Kind::UnwrapExpect);
                if !panics || s.held.is_empty() || s.guarded || s.allowed {
                    continue;
                }
                let fnd = Finding {
                    file: f.path.clone(),
                    line: s.line + 1,
                    rule: "panic-in-critical-section",
                    message: format!(
                        "panic site holding `{}` is reachable from thread \
                         root(s) {} — a crash here poisons the lock for \
                         every sibling worker",
                        s.held.join(", "),
                        reaching.join(", ")
                    ),
                };
                if !findings
                    .iter()
                    .any(|x| x.file == fnd.file && x.line == fnd.line && x.rule == fnd.rule)
                {
                    findings.push(fnd);
                }
            }
        }
    }

    // A non-forwarded thread root with no unwind guard anywhere in its
    // body aborts silently in JoinHandle limbo.
    for &ri in &live_threads {
        let (fi, ni) = roots[ri].id;
        let f = &g.files[fi];
        let fd = &f.fns[ni];
        let last = f.sf.lines.len().saturating_sub(1);
        let has_guard = (fd.open.0..=fd.end_line.min(last))
            .any(|li| f.sf.lines[li].code.contains("catch_unwind"));
        if !has_guard {
            findings.push(Finding {
                file: f.path.clone(),
                line: fd.open.0 + 1,
                rule: "panic-on-worker-boundary",
                message: format!(
                    "thread root `{}` has no catch_unwind anywhere in its \
                     body — a panic kills the worker silently",
                    roots[ri].label
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();

    let (table, num_sites) = render_table(&g, &roots, &reach);
    Analysis {
        table,
        findings,
        num_roots: roots.len(),
        num_sites,
    }
}

/// Render the golden table. Functions are identified by file + qualified
/// name (no line numbers), so unrelated edits do not churn the golden;
/// only functions with at least one explicit/unwrap/assert site appear
/// (indexing and arithmetic are ubiquitous in a CSR engine — they are
/// counted for those functions, not listed on their own).
fn render_table(
    g: &CallGraph,
    roots: &[Root],
    reach: &[(usize, BTreeSet<FnId>)],
) -> (String, usize) {
    let mut out = String::new();
    out.push_str("panic-reachability model\n");
    out.push_str("========================\n");
    out.push_str("scope: whole workspace (tests and fixtures excluded)\n");
    out.push_str("counts: total/allowed per kind; a fn is listed when a root\n");
    out.push_str("reaches it and it has an explicit, unwrap/expect or assert\n");
    out.push_str("site. `held:` is the union of lock guards live at its sites.\n\n");

    out.push_str("roots\n");
    for r in roots {
        let tag = match r.kind {
            RootKind::Bin => r.label.clone(),
            RootKind::Thread { forwarded: false } => format!("thread:{}", r.label),
            RootKind::Thread { forwarded: true } => format!("thread:{} (forwarded)", r.label),
        };
        let mut line = format!("  {tag:<34} {}\n", g.qualified(r.id));
        if line.len() > 100 {
            line = format!("  {tag}\n    {}\n", g.qualified(r.id));
        }
        out.push_str(&line);
    }
    out.push('\n');

    out.push_str("reachable panic sites\n");
    let mut num_sites = 0usize;
    let mut any = false;
    for (fi, f) in g.files.iter().enumerate() {
        let mut rows = String::new();
        for (ni, fd) in f.fns.iter().enumerate() {
            if fd.in_test {
                continue;
            }
            let reaching: Vec<usize> = reach
                .iter()
                .filter(|(_, set)| set.contains(&(fi, ni)))
                .map(|(ri, _)| *ri)
                .collect();
            if reaching.is_empty() {
                continue;
            }
            let sites = scan_sites(&f.sf, fd);
            let hard = sites
                .iter()
                .any(|s| matches!(s.kind, Kind::Explicit | Kind::UnwrapExpect | Kind::Assert));
            if !hard {
                continue;
            }
            num_sites += sites.len();
            let bins = reaching
                .iter()
                .filter(|&&ri| matches!(roots[ri].kind, RootKind::Bin))
                .count();
            let threads: Vec<&str> = reaching
                .iter()
                .filter(|&&ri| matches!(roots[ri].kind, RootKind::Thread { .. }))
                .map(|&ri| roots[ri].label.as_str())
                .collect();
            let threads = if threads.is_empty() {
                "-".to_string()
            } else {
                threads.join(",")
            };
            let mut held: BTreeSet<String> = BTreeSet::new();
            for s in &sites {
                held.extend(s.held.iter().cloned());
            }
            let held = if held.is_empty() {
                "-".to_string()
            } else {
                held.into_iter().collect::<Vec<_>>().join(",")
            };
            let count = |k: Kind| {
                let total = sites.iter().filter(|s| s.kind == k).count();
                let allowed = sites.iter().filter(|s| s.kind == k && s.allowed).count();
                format!("{total}/{allowed}")
            };
            let name = match &fd.impl_type {
                Some(t) => format!("{t}::{}", fd.name),
                None => fd.name.clone(),
            };
            rows.push_str(&format!("    {name}\n"));
            rows.push_str(&format!(
                "      roots: bins:{bins} threads:{threads}  held: {held}\n"
            ));
            rows.push_str(&format!(
                "      explicit {}  unwrap-expect {}  assert {}  index {}  arith {}\n",
                count(Kind::Explicit),
                count(Kind::UnwrapExpect),
                count(Kind::Assert),
                count(Kind::Index),
                count(Kind::Arith),
            ));
        }
        if !rows.is_empty() {
            any = true;
            out.push_str(&format!("  {}\n", f.path));
            out.push_str(&rows);
        }
    }
    if !any {
        out.push_str("  (none)\n");
    }
    (out, num_sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/x.rs", src)
    }

    #[test]
    fn critical_section_flags_held_unwrap_only() {
        let src = "fn f(m: &std::sync::Mutex<u32>) {\n\
                   \x20   let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                   \x20   g.checked_add(1).unwrap();\n\
                   \x20   drop(g);\n\
                   \x20   g2.checked_add(1).unwrap();\n\
                   }\n";
        let sf = parse(src);
        let hits = check_critical_section(&sf);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2); // the unwrap under the guard, not after drop
    }

    #[test]
    fn silent_poison_spares_the_recovering_idiom() {
        let sf = parse(
            "fn f() {\n\
             \x20   let a = m.lock().unwrap();\n\
             \x20   let b = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
             }\n",
        );
        let hits = check_silent_poison(&sf);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn worker_boundary_needs_catch_unwind_or_forwarded() {
        let bad = parse(
            "// sssp-lint: panic-root(w)\n\
             fn w() {\n\
             \x20   x.unwrap();\n\
             }\n",
        );
        assert_eq!(check_worker_boundary(&bad).len(), 1);
        let guarded = parse(
            "// sssp-lint: panic-root(w)\n\
             fn w() {\n\
             \x20   let r = catch_unwind(|| x.unwrap());\n\
             }\n",
        );
        assert!(check_worker_boundary(&guarded).is_empty());
        let forwarded = parse(
            "// sssp-lint: panic-root(w, forwarded)\n\
             fn w() {\n\
             \x20   x.unwrap();\n\
             }\n",
        );
        assert!(check_worker_boundary(&forwarded).is_empty());
    }

    #[test]
    fn unvalidated_input_needs_validate() {
        let bad = parse(
            "fn f(spec: &QuerySpec, dist: &[u64]) -> u64 {\n\
             \x20   match spec {\n\
             \x20       QuerySpec::PointToPoint { target, .. } => dist[*target as usize],\n\
             \x20   }\n\
             }\n",
        );
        assert_eq!(check_unvalidated_input(&bad).len(), 1);
        let good = parse(
            "fn f(spec: &QuerySpec, dist: &[u64]) -> u64 {\n\
             \x20   spec.validate(dist.len()).unwrap();\n\
             \x20   match spec {\n\
             \x20       QuerySpec::PointToPoint { target, .. } => dist[*target as usize],\n\
             \x20   }\n\
             }\n",
        );
        assert!(check_unvalidated_input(&good).is_empty());
    }

    #[test]
    fn panic_root_markers_parse() {
        assert_eq!(
            parse_panic_root("// sssp-lint: panic-root(serve-worker)"),
            Some(("serve-worker".into(), false))
        );
        assert_eq!(
            parse_panic_root("// sssp-lint: panic-root(rank-thread, forwarded): note"),
            Some(("rank-thread".into(), true))
        );
        assert_eq!(parse_panic_root("// sssp-lint: allow(x)"), None);
    }

    #[test]
    fn analyze_reaches_panics_across_files() {
        let files = vec![
            (
                "crates/x/src/bin/tool.rs".to_string(),
                "fn main() { helper::run(); }\n".to_string(),
            ),
            (
                "crates/x/src/helper.rs".to_string(),
                "pub fn run() { inner().unwrap(); }\nfn inner() -> Option<u32> { None }\n"
                    .to_string(),
            ),
        ];
        let a = analyze(&files);
        assert_eq!(a.num_roots, 1);
        assert!(a.table.contains("bin:tool"));
        assert!(a.table.contains("crates/x/src/helper.rs"));
        assert!(a.table.contains("unwrap-expect 1/0"));
    }

    #[test]
    fn unjustified_panic_allows_are_findings() {
        let files = vec![(
            "crates/serve/src/x.rs".to_string(),
            "fn f() {\n\
             \x20   // sssp-lint: allow(panic-silent-poison)\n\
             \x20   let g = m.lock().unwrap();\n\
             }\n"
            .to_string(),
        )];
        let a = analyze(&files);
        assert!(a
            .findings
            .iter()
            .any(|f| f.rule == "panic-unjustified-allow"));
    }
}
