//! Intra-workspace call graph for the panic-reachability pass.
//!
//! Reuses the protocol walker's function scanner and call tokenizer
//! ([`crate::protocol::scan_fns`] / `call_tokens`) but spans the *whole*
//! workspace instead of only the traversable engine files: a panic site
//! in the comm primitives is reachable from a bench binary's `main`
//! through every engine layer in between.
//!
//! Resolution is lexical, mirroring the protocol model: qualified calls
//! (`Type::f`) match the `impl` target or a free function in the module
//! whose file stem equals the qualifier, method calls (`.f(`) match
//! `self` methods, bare calls match free functions. Same-file
//! definitions win over cross-file ones; the first match wins otherwise.
//! Unresolvable calls (std, vendored deps, closures) are terminal. The
//! graph over-approximates on same-named methods across types — fine for
//! an auditor that must not under-report reachability.

use std::collections::BTreeSet;

use crate::protocol::{call_tokens, scan_fns, CallTok, FnDef};
use crate::source::SourceFile;

/// One parsed workspace file with its function definitions.
pub(crate) struct GraphFile {
    /// Workspace-relative `/`-separated path.
    pub(crate) path: String,
    /// File stem (module name) used to resolve qualified free calls.
    pub(crate) stem: String,
    /// The parsed source.
    pub(crate) sf: SourceFile,
    /// Function definitions in file order.
    pub(crate) fns: Vec<FnDef>,
}

/// `(file index, fn index)` — one node of the graph.
pub(crate) type FnId = (usize, usize);

/// The workspace-wide call graph.
pub struct CallGraph {
    pub(crate) files: Vec<GraphFile>,
}

impl CallGraph {
    /// Parse `(rel_path, text)` pairs into a graph. Whole test files are
    /// skipped; test regions inside shipped files are masked line by
    /// line during traversal.
    pub fn build(files: &[(String, String)]) -> CallGraph {
        let mut parsed: Vec<GraphFile> = files
            .iter()
            .filter(|(p, _)| !crate::is_test_file(p))
            .map(|(p, text)| {
                let sf = SourceFile::parse(p, text);
                let fns = scan_fns(&sf);
                let stem = p
                    .rsplit('/')
                    .next()
                    .unwrap_or(p)
                    .trim_end_matches(".rs")
                    .to_string();
                GraphFile {
                    path: p.clone(),
                    stem,
                    sf,
                    fns,
                }
            })
            .collect();
        parsed.sort_by(|a, b| a.path.cmp(&b.path));
        CallGraph { files: parsed }
    }

    /// Resolve a call token to a definition, same semantics as the
    /// protocol model's resolver (same-file wins, else first match).
    pub(crate) fn resolve(&self, from: usize, t: &CallTok) -> Option<FnId> {
        let mut first: Option<FnId> = None;
        for (fj, f) in self.files.iter().enumerate() {
            for (nj, fd) in f.fns.iter().enumerate() {
                if fd.in_test || fd.name != t.ident {
                    continue;
                }
                let ok = if let Some(q) = &t.qual {
                    fd.impl_type.as_deref() == Some(q.as_str()) || (!fd.has_self && f.stem == *q)
                } else if t.method {
                    fd.has_self
                } else {
                    !fd.has_self
                };
                if !ok {
                    continue;
                }
                if fj == from {
                    return Some((fj, nj));
                }
                if first.is_none() {
                    first = Some((fj, nj));
                }
            }
        }
        first
    }

    /// Direct callees of one function, resolved within the workspace.
    /// Test regions inside the body are skipped.
    pub(crate) fn callees(&self, (fi, ni): FnId) -> Vec<FnId> {
        let f = &self.files[fi];
        let fd = &f.fns[ni];
        let mut out = Vec::new();
        for li in fd.open.0..=fd.end_line.min(f.sf.lines.len().saturating_sub(1)) {
            let line = &f.sf.lines[li];
            if line.in_test {
                continue;
            }
            let code: String = if li == fd.open.0 {
                line.code.chars().skip(fd.open.1).collect()
            } else {
                line.code.clone()
            };
            for t in call_tokens(&code) {
                if t.is_def {
                    continue;
                }
                if let Some(id) = self.resolve(fi, &t) {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Every function reachable from `root`, root included. Recursion is
    /// cut by the visited set.
    pub(crate) fn reachable(&self, root: FnId) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            for callee in self.callees(id) {
                if !seen.contains(&callee) {
                    stack.push(callee);
                }
            }
        }
        seen
    }

    /// `path::fn` (or `path::Type::fn`) label for one node.
    pub(crate) fn qualified(&self, (fi, ni): FnId) -> String {
        let f = &self.files[fi];
        let fd = &f.fns[ni];
        match &fd.impl_type {
            Some(t) => format!("{}::{}::{}", f.path, t, fd.name),
            None => format!("{}::{}", f.path, fd.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect();
        CallGraph::build(&owned)
    }

    fn node(g: &CallGraph, file: &str, name: &str) -> FnId {
        for (fi, f) in g.files.iter().enumerate() {
            if f.path != file {
                continue;
            }
            for (ni, fd) in f.fns.iter().enumerate() {
                if fd.name == name {
                    return (fi, ni);
                }
            }
        }
        panic!("no fn {name} in {file}");
    }

    #[test]
    fn cross_file_calls_resolve_through_helpers() {
        let g = graph(&[
            ("crates/x/src/bin/tool.rs", "fn main() { helper::run(); }\n"),
            (
                "crates/x/src/helper.rs",
                "pub fn run() { deep(); }\nfn deep() { let _ = 1; }\n",
            ),
        ]);
        let main = node(&g, "crates/x/src/bin/tool.rs", "main");
        let reach = g.reachable(main);
        assert!(reach.contains(&node(&g, "crates/x/src/helper.rs", "run")));
        assert!(reach.contains(&node(&g, "crates/x/src/helper.rs", "deep")));
    }

    #[test]
    fn recursion_terminates_and_methods_resolve() {
        let g = graph(&[(
            "crates/x/src/a.rs",
            "struct S;\nimpl S {\n    fn go(&self) { self.go(); free(); }\n}\nfn free() {}\n",
        )]);
        let go = node(&g, "crates/x/src/a.rs", "go");
        let reach = g.reachable(go);
        assert!(reach.contains(&node(&g, "crates/x/src/a.rs", "free")));
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn test_files_and_test_regions_stay_out() {
        let g = graph(&[
            ("crates/x/tests/t.rs", "fn main() { boom(); }\n"),
            (
                "crates/x/src/a.rs",
                "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn dead() { super::live(); }\n}\n",
            ),
        ]);
        assert!(g.files.iter().all(|f| !f.path.contains("/tests/")));
        let live = node(&g, "crates/x/src/a.rs", "live");
        assert_eq!(g.reachable(live).len(), 1);
    }
}
