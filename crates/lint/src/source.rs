//! Lexical source model for the analyzer.
//!
//! Rules never look at raw text directly: every file is first reduced to a
//! per-line view in which comment bodies and string/char literal contents
//! are blanked out (so `".unwrap()"` inside a string can never fire the
//! no-panic rule), `#[cfg(test)]` / `#[test]` regions are masked, and
//! `sssp-lint: allow(rule)` markers are resolved per line.

/// One line of a parsed source file.
#[derive(Debug)]
pub struct Line {
    /// The original line text, untouched.
    pub raw: String,
    /// The line with comments and literal contents replaced by spaces.
    /// String/char delimiters are kept so `.expect("…")` still reads as
    /// `.expect("   ")`.
    pub code: String,
    /// True when the line sits inside a `#[cfg(test)]` or `#[test]`
    /// region (including the attribute line and the closing brace).
    pub in_test: bool,
    /// Rule names allowed on this line via an inline marker, either on
    /// the line itself or anywhere in the comment block directly above it
    /// (blank lines end a block).
    pub allows: Vec<String>,
}

/// A fully parsed source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Per-line views, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Parse `text` into the per-line model used by all rules.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let raw: Vec<&str> = text.split('\n').collect();
        let code = strip_literals(text);
        debug_assert_eq!(raw.len(), code.len(), "strip must preserve line count");
        let in_test = mask_test_regions(&code);
        let marker_sets: Vec<Vec<String>> = raw.iter().map(|r| parse_markers(r)).collect();

        // Markers on comment-only lines accumulate and attach to the next
        // code line; a blank line discards them.
        let mut pending: Vec<String> = Vec::new();
        let lines = (0..raw.len())
            .map(|i| {
                let mut allows = marker_sets[i].clone();
                if code[i].trim().is_empty() {
                    if raw[i].trim().is_empty() {
                        pending.clear();
                    } else {
                        pending.extend(marker_sets[i].iter().cloned());
                    }
                } else {
                    allows.append(&mut pending);
                }
                Line {
                    raw: raw[i].to_string(),
                    code: code[i].clone(),
                    in_test: in_test[i],
                    allows,
                }
            })
            .collect();

        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
        }
    }
}

/// Lexer state for [`strip_literals`].
enum State {
    Normal,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string; the payload is the number of `#` marks in the opener.
    RawStr(u32),
    CharLit,
}

/// Blank out comment bodies and string/char literal contents, preserving
/// the line structure exactly (same number of lines, same byte columns
/// for everything kept).
fn strip_literals(text: &str) -> Vec<String> {
    let cs: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = State::Normal;
    let mut prev_ident = false;
    let mut i = 0;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            if matches!(st, State::LineComment) {
                st = State::Normal;
            }
            out.push('\n');
            prev_ident = false;
            i += 1;
            continue;
        }
        match st {
            State::Normal => {
                if c == '/' && cs.get(i + 1) == Some(&'/') {
                    st = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && cs.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = State::Str;
                    out.push('"');
                    i += 1;
                } else if !prev_ident && (c == 'r' || c == 'b') {
                    if let Some(hashes) = raw_string_opener(&cs, i) {
                        // `r"`, `r#"`, `br##"` … — skip prefix, hashes
                        // and the opening quote.
                        let skip = (cs[i] == 'b') as usize + 1 + hashes as usize + 1;
                        for _ in 0..skip {
                            out.push(' ');
                        }
                        st = State::RawStr(hashes);
                        i += skip;
                    } else {
                        out.push(c);
                        prev_ident = true;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Distinguish `'a` (lifetime/label: keep scanning) from
                    // `'a'` / `'\n'` (char literal: blank contents).
                    let next = cs.get(i + 1);
                    let lifetime = matches!(next, Some(&n) if n.is_alphabetic() || n == '_')
                        && cs.get(i + 2) != Some(&'\'');
                    if lifetime {
                        out.push(' ');
                        i += 1;
                    } else {
                        st = State::CharLit;
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    prev_ident = c.is_alphanumeric() || c == '_';
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && cs.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && cs.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str | State::CharLit => {
                let quote = if matches!(st, State::Str) { '"' } else { '\'' };
                if c == '\\' {
                    out.push(' ');
                    if cs.get(i + 1).is_some_and(|&n| n != '\n') {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == quote {
                    out.push(quote);
                    st = State::Normal;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&cs, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    st = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out.split('\n').map(String::from).collect()
}

/// If position `i` starts a raw (byte) string opener, return its `#` count.
fn raw_string_opener(cs: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if cs.get(j) == Some(&'b') {
        j += 1;
    }
    if cs.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while cs.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (cs.get(j) == Some(&'"')).then_some(hashes)
}

/// True when the `"` at position `i` is followed by `hashes` `#` marks.
fn closes_raw_string(cs: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| cs.get(i + k) == Some(&'#'))
}

/// Attribute spellings that mark the following item as test-only.
const TEST_ATTRS: &[&str] = &[
    "#[cfg(test)]",
    "#[test]",
    "#[cfg(all(test",
    "#[cfg(any(test",
];

/// Compute, for each stripped line, whether it belongs to a test region:
/// the braces-balanced item following a test attribute. Tracks global
/// brace depth, so nested helper fns inside `mod tests` stay masked.
fn mask_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth = 0usize;
    let mut mask_stack: Vec<usize> = Vec::new();
    let mut pending = false;
    for (li, line) in code.iter().enumerate() {
        let mut line_test = !mask_stack.is_empty();
        if TEST_ATTRS.iter().any(|a| line.contains(a)) {
            pending = true;
        }
        if pending {
            line_test = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        mask_stack.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if mask_stack.last() == Some(&depth) {
                        mask_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use foo;` — the attribute guards a
                // braceless item; nothing to mask beyond this line.
                ';' if pending && mask_stack.is_empty() => pending = false,
                _ => {}
            }
        }
        in_test[li] = line_test || !mask_stack.is_empty();
    }
    in_test
}

/// Extract rule names from a `sssp-lint: allow(rule-a, rule-b)` marker.
fn parse_markers(raw: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = raw;
    while let Some(at) = rest.find("sssp-lint: allow(") {
        let args = &rest[at + "sssp-lint: allow(".len()..];
        if let Some(close) = args.find(')') {
            allows.extend(
                args[..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
            );
            rest = &args[close + 1..];
        } else {
            break;
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        strip_literals(text)
    }

    #[test]
    fn strips_line_and_block_comments() {
        let c = codes("let x = 1; // .unwrap()\n/* panic! */ let y = 2;");
        assert_eq!(c[0].trim_end(), "let x = 1;");
        assert!(!c[1].contains("panic!"));
        assert!(c[1].contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let c = codes("/* outer /* inner */ still */ code");
        assert!(!c[0].contains("outer"));
        assert!(!c[0].contains("still"));
        assert!(c[0].contains("code"));
    }

    #[test]
    fn blanks_string_contents_keeps_delimiters() {
        let c = codes(r#"m.expect("do not .unwrap() here");"#);
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains(".expect(\""));
    }

    #[test]
    fn escaped_quotes_do_not_terminate() {
        let c = codes(r#"let s = "a\"b"; panic!();"#);
        assert!(c[0].contains("panic!"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = codes("let s = r#\"contains .unwrap() and \"quotes\"\"#; Mutex");
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("Mutex"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = codes("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; panic!()");
        // The char literal 'x' is blanked, but code after it survives.
        assert!(c[0].contains("panic!"));
        assert!(c[0].contains("fn f<"));
    }

    #[test]
    fn char_escape_literal() {
        let c = codes(r"let c = '\''; todo!()");
        assert!(c[0].contains("todo!"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\nfn live2() {}\n",
        );
        let mask: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(
            mask,
            vec![false, true, true, true, true, true, true, false, false]
        );
    }

    #[test]
    fn test_attr_fn_is_masked_without_cfg() {
        let f = SourceFile::parse("x.rs", "#[test]\nfn t() {\n    body();\n}\nfn live() {}\n");
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn cfg_test_on_use_does_not_mask_rest_of_file() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn live() {\n    x();\n}\n");
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn markers_propagate_through_comment_blocks_not_blanks() {
        let f = SourceFile::parse(
            "x.rs",
            "// sssp-lint: allow(rule-a): reason spanning\n// a second comment line\nlet x = 1;\n// sssp-lint: allow(rule-b)\n\nlet y = 2;\n",
        );
        assert!(f.lines[2].allows.iter().any(|a| a == "rule-a"));
        // The blank line at index 4 discards rule-b before `let y`.
        assert!(f.lines[5].allows.is_empty());
    }

    #[test]
    fn markers_apply_to_own_and_next_line() {
        let f = SourceFile::parse(
            "x.rs",
            "// sssp-lint: allow(rule-a, rule-b)\nlet x = 1;\nlet y = 2; // sssp-lint: allow(rule-c)\n",
        );
        assert!(f.lines[1].allows.iter().any(|a| a == "rule-a"));
        assert!(f.lines[1].allows.iter().any(|a| a == "rule-b"));
        assert!(f.lines[2].allows.iter().any(|a| a == "rule-c"));
        assert!(f.lines[2].allows.iter().all(|a| a != "rule-a"));
    }
}
