//! The project rule set.
//!
//! Each rule has a name (used in `sssp-lint: allow(name)` markers), a path
//! scope over the workspace, and a check that maps a parsed
//! [`SourceFile`] to `(line_index, message)` findings. Test regions and
//! allow-marked lines are filtered by the engine, not by the rules.

use crate::source::SourceFile;

/// Path scope of a rule: `/`-separated paths relative to the workspace
/// root. Entries ending in `/` are directory prefixes, others are exact
/// file paths.
pub struct Scope {
    /// Paths the rule applies to.
    pub include: &'static [&'static str],
    /// Paths carved back out of `include`.
    pub exclude: &'static [&'static str],
}

impl Scope {
    /// Does `rel_path` fall under this scope?
    pub fn matches(&self, rel_path: &str) -> bool {
        let hit = |pat: &str| {
            if let Some(dir) = pat.strip_suffix('/') {
                rel_path.starts_with(pat) || rel_path == dir
            } else {
                rel_path == pat
            }
        };
        self.include.iter().any(|p| hit(p)) && !self.exclude.iter().any(|p| hit(p))
    }
}

/// One named, scoped check.
pub struct Rule {
    /// Marker-facing rule name (kebab-case).
    pub name: &'static str,
    /// One-line description shown by `--list-rules`.
    pub summary: &'static str,
    /// Where in the tree the rule applies.
    pub scope: Scope,
    /// The check itself.
    pub check: fn(&SourceFile) -> Vec<(usize, String)>,
}

/// All rules, in reporting order.
pub static RULES: &[Rule] = &[
    Rule {
        name: "no-panic-hot-path",
        summary: "no unwrap/expect/panic in engine and comm hot paths; \
                  propagate errors or justify with an allow marker",
        scope: Scope {
            include: &[
                "crates/core/src/engine/",
                "crates/core/src/state.rs",
                "crates/comm/src/",
                "crates/dist/src/",
            ],
            exclude: &[],
        },
        check: check_no_panic,
    },
    Rule {
        name: "no-shared-state",
        summary: "thread primitives (spawn/Mutex/atomics/channels) only in \
                  sssp-comm::threaded — everything else stays rank-sequential",
        scope: Scope {
            include: &[
                "crates/graph/src/",
                "crates/comm/src/",
                "crates/dist/src/",
                "crates/core/src/",
                "crates/bench/src/",
                "crates/lint/src/",
                "src/",
            ],
            exclude: &[
                "crates/comm/src/threaded.rs",
                // The concurrency analyzer must spell the primitives it
                // detects (token tables, lock-kind enums); it never uses them.
                "crates/lint/src/concurrency.rs",
            ],
        },
        check: check_no_shared_state,
    },
    Rule {
        name: "no-lossy-cast",
        summary: "no `as` narrowing of vertex ids / distances in the engine \
                  and dist layers; use the checked helpers",
        scope: Scope {
            include: &[
                "crates/core/src/engine/",
                "crates/core/src/state.rs",
                "crates/dist/src/",
            ],
            exclude: &[],
        },
        check: check_no_lossy_cast,
    },
    Rule {
        name: "no-float-kernel",
        summary: "no floating point in core kernels; f64 belongs to the \
                  push/pull cost model (engine/decide.rs, comm cost model)",
        scope: Scope {
            include: &["crates/core/src/engine/", "crates/core/src/state.rs"],
            exclude: &["crates/core/src/engine/decide.rs"],
        },
        check: check_no_float,
    },
    Rule {
        name: "missing-docs-pub",
        summary: "public items in sssp-core, sssp-comm and sssp-serve need \
                  a doc comment",
        scope: Scope {
            include: &["crates/core/src/", "crates/comm/src/", "crates/serve/src/"],
            exclude: &[],
        },
        check: check_missing_docs,
    },
    Rule {
        name: "crate-hygiene",
        summary: "every crate root must carry #![forbid(unsafe_code)] and \
                  #![warn(missing_docs)]",
        scope: Scope {
            include: &[
                "crates/graph/src/lib.rs",
                "crates/comm/src/lib.rs",
                "crates/dist/src/lib.rs",
                "crates/core/src/lib.rs",
                "crates/serve/src/lib.rs",
                "crates/bench/src/lib.rs",
                "crates/lint/src/lib.rs",
                "src/lib.rs",
            ],
            exclude: &[],
        },
        check: check_crate_hygiene,
    },
    Rule {
        name: "no-print-debug",
        summary: "no println!/eprintln!/dbg! in library crates; reporting \
                  lives in sssp-bench and the binaries",
        scope: Scope {
            include: &[
                "crates/graph/src/",
                "crates/comm/src/",
                "crates/dist/src/",
                "crates/core/src/",
                "crates/serve/src/",
            ],
            exclude: &[],
        },
        check: check_no_print,
    },
    Rule {
        name: "protocol-divergent-guard",
        summary: "no collective call site under a rank-local condition; \
                  every rank must reach every collective uniformly",
        scope: Scope {
            include: &["crates/core/src/engine/"],
            exclude: &[],
        },
        check: crate::protocol::check_divergent_guard,
    },
    Rule {
        name: "protocol-missing-barrier",
        summary: "no two `.lock(` phases in one comm function without a \
                  barrier `.wait(` between them",
        scope: Scope {
            include: &["crates/comm/src/"],
            exclude: &[],
        },
        check: crate::protocol::check_missing_barrier,
    },
    Rule {
        name: "protocol-backend-skew",
        summary: "a file with protocol entries for several backends must \
                  extract the same normalized collective schedule from each",
        scope: Scope {
            include: &["crates/core/src/engine/"],
            exclude: &[],
        },
        check: crate::protocol::check_backend_skew,
    },
    Rule {
        name: "concurrency-lock-cycle",
        summary: "lock acquisitions must follow one global order; an \
                  acquisition that closes an order cycle can deadlock",
        scope: Scope {
            include: &[
                "crates/comm/src/",
                "crates/core/src/engine/",
                "crates/serve/src/",
            ],
            exclude: &[],
        },
        check: crate::concurrency::check_lock_cycle,
    },
    Rule {
        name: "concurrency-blocking-hold",
        summary: "no blocking `.recv(`/`.wait(` while holding a lock — a \
                  peer blocked on the same lock deadlocks the rendezvous",
        scope: Scope {
            include: &[
                "crates/comm/src/",
                "crates/core/src/engine/",
                "crates/serve/src/",
            ],
            exclude: &[],
        },
        check: crate::concurrency::check_blocking_hold,
    },
    Rule {
        name: "concurrency-endpoint-leak",
        summary: "a cloned Sender in a spawning function must be dropped \
                  before the join, or receivers never see disconnect",
        scope: Scope {
            include: &["crates/comm/src/"],
            exclude: &[],
        },
        check: crate::concurrency::check_endpoint_leak,
    },
    Rule {
        name: "concurrency-unterminated-recv",
        summary: "a recv inside a bare `loop` needs a break/return \
                  termination edge; otherwise a quiet peer hangs the rank",
        scope: Scope {
            include: &["crates/comm/src/"],
            exclude: &[],
        },
        check: crate::concurrency::check_unterminated_recv,
    },
    Rule {
        name: "panic-in-critical-section",
        summary: "no unwrap/expect/panic/assert while a lock guard is held \
                  — a panic there poisons the lock for every other thread",
        scope: Scope {
            include: &[
                "crates/comm/src/",
                "crates/core/src/engine/",
                "crates/serve/src/",
            ],
            exclude: &[],
        },
        check: crate::panics::check_critical_section,
    },
    Rule {
        name: "panic-on-worker-boundary",
        summary: "a fn marked `panic-root(label)` is a thread entry: direct \
                  panic sites must sit under catch_unwind or be forwarded",
        scope: Scope {
            include: &[
                "crates/comm/src/",
                "crates/core/src/engine/",
                "crates/serve/src/",
            ],
            exclude: &[],
        },
        check: crate::panics::check_worker_boundary,
    },
    Rule {
        name: "panic-unvalidated-input",
        summary: "vertices destructured from a QuerySpec must pass validate() \
                  before indexing a buffer — requests are untrusted input",
        scope: Scope {
            include: &["crates/serve/src/"],
            exclude: &[],
        },
        check: crate::panics::check_unvalidated_input,
    },
    Rule {
        name: "panic-silent-poison",
        summary: "`.lock()`/`.wait()` followed by unwrap/expect dies on a \
                  poisoned primitive — recover with PoisonError::into_inner \
                  or justify die-on-poison",
        scope: Scope {
            include: &[
                "crates/comm/src/",
                "crates/core/src/engine/",
                "crates/serve/src/",
            ],
            exclude: &[],
        },
        check: crate::panics::check_silent_poison,
    },
];

/// The `--list-rules` output, one `name  summary` line per rule. Shared
/// by the CLI and the golden snapshot test.
pub fn list_rules_text() -> String {
    let normalize_ws = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
    let mut out = String::new();
    for rule in RULES {
        out.push_str(&format!(
            "{:<26} {}\n",
            rule.name,
            normalize_ws(rule.summary)
        ));
    }
    out
}

/// Look up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

const IDENT: fn(char) -> bool = |c: char| c.is_alphanumeric() || c == '_';

/// Find `needle` in `code` as a token: when the needle starts (ends) with
/// an identifier character, the preceding (following) character must not
/// be one. `prefix` relaxes the trailing boundary so `Atomic` matches
/// `AtomicU64`.
pub(crate) fn token_positions(code: &str, needle: &str, prefix: bool) -> Vec<usize> {
    let first_ident = needle.chars().next().is_some_and(IDENT);
    let last_ident = needle.chars().next_back().is_some_and(IDENT);
    code.match_indices(needle)
        .filter(|&(at, _)| {
            let before_ok = !first_ident || !code[..at].chars().next_back().is_some_and(IDENT);
            let after_ok = prefix
                || !last_ident
                || !code[at + needle.len()..].chars().next().is_some_and(IDENT);
            before_ok && after_ok
        })
        .map(|(at, _)| at)
        .collect()
}

fn token_hits(file: &SourceFile, patterns: &[(&str, bool, &str)]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        for &(needle, prefix, why) in patterns {
            if !token_positions(&line.code, needle, prefix).is_empty() {
                out.push((li, format!("`{needle}` {why}")));
            }
        }
    }
    out
}

fn check_no_panic(file: &SourceFile) -> Vec<(usize, String)> {
    token_hits(
        file,
        &[
            (
                ".unwrap()",
                false,
                "in a hot path: propagate the error or justify with a marker",
            ),
            (
                ".expect(",
                false,
                "in a hot path: propagate the error or justify with a marker",
            ),
            (
                "panic!",
                false,
                "in a hot path: hot paths must not abort mid-superstep",
            ),
            (
                "unreachable!",
                false,
                "in a hot path: encode the invariant as a type instead",
            ),
            ("todo!", false, "left in a hot path"),
            ("unimplemented!", false, "left in a hot path"),
        ],
    )
}

fn check_no_shared_state(file: &SourceFile) -> Vec<(usize, String)> {
    token_hits(
        file,
        &[
            (
                "thread::spawn",
                false,
                "outside sssp-comm::threaded: ranks are simulated sequentially everywhere else",
            ),
            (
                "thread::scope",
                false,
                "outside sssp-comm::threaded: ranks are simulated sequentially everywhere else",
            ),
            (
                "thread::Builder",
                false,
                "outside sssp-comm::threaded: rank threads are spawned only by run_threaded",
            ),
            (
                "Barrier",
                false,
                "outside sssp-comm::threaded: supersteps synchronize through RankCtx collectives",
            ),
            (
                "Mutex",
                false,
                "outside sssp-comm::threaded: the BSP model has no shared memory",
            ),
            (
                "RwLock",
                false,
                "outside sssp-comm::threaded: the BSP model has no shared memory",
            ),
            (
                "Condvar",
                false,
                "outside sssp-comm::threaded: use the superstep barrier",
            ),
            (
                "Atomic",
                true,
                "outside sssp-comm::threaded: the BSP model has no shared memory",
            ),
            (
                "mpsc::",
                false,
                "outside sssp-comm::threaded: message passing goes through comm::exchange",
            ),
            (
                "static mut",
                false,
                "is shared mutable state; thread it through explicitly",
            ),
            (
                "OnceLock",
                false,
                "is global state; thread configuration through explicitly",
            ),
            (
                "LazyLock",
                false,
                "is global state; thread configuration through explicitly",
            ),
            ("UnsafeCell", false, "outside sssp-comm::threaded"),
        ],
    )
}

/// Integer types an `as` cast may silently truncate vertex ids or
/// distances into. `VertexId` and `Weight` are `u32` aliases — spelling
/// the alias does not make the cast any less lossy.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "VertexId", "Weight"];

fn check_no_lossy_cast(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        for at in token_positions(&line.code, "as", false) {
            let rest = line.code[at + 2..].trim_start();
            if let Some(ty) = NARROW_TYPES.iter().find(|t| {
                rest.strip_prefix(**t)
                    .is_some_and(|tail| !tail.chars().next().is_some_and(IDENT))
            }) {
                out.push((
                    li,
                    format!(
                        "lossy `as {ty}` narrowing: use the checked helpers \
                         (Partition::local_index / sssp_graph::checked_u32) \
                         so truncation asserts instead of wrapping"
                    ),
                ));
            }
        }
    }
    out
}

fn check_no_float(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        for ty in ["f32", "f64"] {
            // Boundary-before is relaxed for literal suffixes (`1f64`).
            let hit = line.code.match_indices(ty).any(|(at, _)| {
                let before = line.code[..at].chars().next_back();
                let after = line.code[at + ty.len()..].chars().next();
                let before_ok =
                    !before.is_some_and(IDENT) || before.is_some_and(|c| c.is_ascii_digit());
                before_ok && !after.is_some_and(IDENT)
            });
            if hit {
                out.push((
                    li,
                    format!(
                        "`{ty}` in a core kernel: distances and weights are \
                         integral; floating point belongs to the cost model \
                         (engine/decide.rs)"
                    ),
                ));
            }
        }
        // Unsuffixed float literals (`0.5`) — a digit, a dot, a digit.
        let cs: Vec<char> = line.code.chars().collect();
        if cs
            .windows(3)
            .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
        {
            out.push((
                li,
                "float literal in a core kernel: distances and weights are \
                 integral; floating point belongs to the cost model \
                 (engine/decide.rs)"
                    .to_string(),
            ));
        }
    }
    out
}

/// Item kinds that require a doc comment when `pub`.
const DOC_KINDS: &[&str] = &[
    "fn ", "struct ", "enum ", "trait ", "mod ", "const ", "static ", "type ",
];

fn check_missing_docs(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        let t = line.code.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let Some(kind) = DOC_KINDS.iter().find(|k| rest.starts_with(**k)) else {
            continue;
        };
        // Walk up over attributes and blank lines; a doc comment anywhere
        // directly above (rustdoc semantics) satisfies the rule.
        let mut j = li;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let above = file.lines[j].raw.trim();
            if above.starts_with("#[") || above.is_empty() || above.ends_with(")]") {
                continue;
            }
            break above.starts_with("///")
                || above.starts_with("//!")
                || above.starts_with("/**")
                || above.starts_with("#[doc");
        };
        if !documented {
            out.push((
                li,
                format!(
                    "public {}has no doc comment",
                    kind.trim_end().to_string() + " "
                ),
            ));
        }
    }
    out
}

fn check_crate_hygiene(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let has = |attr: &str| file.lines.iter().any(|l| l.code.contains(attr));
    if !has("#![forbid(unsafe_code)]") {
        out.push((
            0,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !has("#![warn(missing_docs)]") && !has("#![deny(missing_docs)]") {
        out.push((
            0,
            "crate root is missing `#![warn(missing_docs)]`".to_string(),
        ));
    }
    out
}

fn check_no_print(file: &SourceFile) -> Vec<(usize, String)> {
    token_hits(
        file,
        &[
            (
                "println!",
                false,
                "in a library crate: reporting belongs to sssp-bench or a binary",
            ),
            (
                "eprintln!",
                false,
                "in a library crate: reporting belongs to sssp-bench or a binary",
            ),
            (
                "print!",
                false,
                "in a library crate: reporting belongs to sssp-bench or a binary",
            ),
            (
                "eprint!",
                false,
                "in a library crate: reporting belongs to sssp-bench or a binary",
            ),
            ("dbg!", false, "left in a library crate"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_prefix_and_exact() {
        let s = Scope {
            include: &["crates/core/src/engine/", "crates/core/src/state.rs"],
            exclude: &["crates/core/src/engine/decide.rs"],
        };
        assert!(s.matches("crates/core/src/engine/short.rs"));
        assert!(s.matches("crates/core/src/state.rs"));
        assert!(!s.matches("crates/core/src/engine/decide.rs"));
        assert!(!s.matches("crates/core/src/validate.rs"));
    }

    #[test]
    fn token_boundaries() {
        assert!(token_positions("a.unwrap()", ".unwrap()", false).len() == 1);
        assert!(token_positions("a.unwrap_or(0)", ".unwrap()", false).is_empty());
        assert!(token_positions("x.expect_err(e)", ".expect(", false).is_empty());
        assert!(token_positions("AtomicU64::new(0)", "Atomic", true).len() == 1);
        assert!(token_positions("NonAtomicThing", "Atomic", true).is_empty());
        assert!(token_positions("println!(\"\")", "print!", false).is_empty());
    }

    #[test]
    fn lossy_cast_detection() {
        let f = SourceFile::parse(
            "crates/core/src/engine/x.rs",
            "let a = v as u32;\nlet b = v as u64;\nlet c = v as usize;\nlet d = x as  u16;\n",
        );
        let hits = check_no_lossy_cast(&f);
        let lines: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert_eq!(lines, vec![0, 3]);
    }

    #[test]
    fn float_detection() {
        let f = SourceFile::parse(
            "x.rs",
            "let a: f64 = 0.0;\nlet b = w as u64;\nlet c = 1f32;\nlet d = tuple.0;\n",
        );
        let hits = check_no_float(&f);
        assert!(hits.iter().any(|h| h.0 == 0));
        assert!(hits.iter().any(|h| h.0 == 2));
        assert!(!hits.iter().any(|h| h.0 == 1));
        assert!(!hits.iter().any(|h| h.0 == 3));
    }

    #[test]
    fn missing_docs_sees_attrs_and_blank_lines() {
        let src = "/// documented\n#[derive(Debug)]\npub struct A;\n\npub struct B;\n";
        let f = SourceFile::parse("x.rs", src);
        let hits = check_missing_docs(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 4);
    }

    #[test]
    fn restricted_visibility_is_exempt() {
        let f = SourceFile::parse("x.rs", "pub(crate) fn helper() {}\npub(super) fn h2() {}\n");
        assert!(check_missing_docs(&f).is_empty());
    }
}
