//! Seeded unterminated recv: `bad` recvs in a bare loop with no break;
//! `good` breaks on disconnect and `bounded` uses a counted while loop.

struct S {
    rx: Receiver<u64>,
    p: usize,
}

impl S {
    fn bad(&self) -> u64 {
        let mut acc = 0;
        loop {
            acc += self.rx.recv();
        }
    }

    fn good(&self) -> u64 {
        let mut acc = 0;
        loop {
            match self.rx.recv() {
                Ok(v) => acc = acc + v,
                Err(_) => break,
            }
        }
        acc
    }

    fn bounded(&self) -> u64 {
        let mut acc = 0;
        let mut seen = 0;
        while seen < self.p {
            acc += self.rx.recv();
            seen += 1;
        }
        acc
    }
}
