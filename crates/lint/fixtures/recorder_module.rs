// Seeded violations proving the telemetry recorder module
// (crates/core/src/engine/record.rs) sits inside the engine lint scope:
// no-float and no-panic must fire on it like on any other engine file.

fn merge_fraction(sum: u64, n: u64) -> u64 {
    let mean = sum as f64 / n as f64; // line 6: floats in the recorder
    mean as u64
}

fn take_first(traces: Vec<u64>) -> u64 {
    traces.first().copied().unwrap() // line 11: unwrap on the hot path
}

fn merge_checked(traces: &[u64]) -> u64 {
    // sssp-lint: allow(no-panic-hot-path): post-join merge, not a hot path
    traces.first().copied().expect("at least one rank trace")
}

fn sum_is_fine(traces: &[u64]) -> u64 {
    traces.iter().sum()
}
