//! Fixture: twin backends whose collective schedules diverge — the
//! threaded twin drops the epoch.settle reduction, so line 15 must fire.

// sssp-lint: protocol-entry(simulated)
fn run_simulated(&mut self) {
    loop {
        // sssp-lint: protocol: epoch.select
        let k = allreduce_min(&self.coll, &mut self.comm);
        // sssp-lint: protocol: epoch.settle
        let settled = allreduce_sum(&self.coll, &mut self.comm);
    }
}

// sssp-lint: protocol-entry(threaded)
fn run_threaded_rank(ctx: &mut RankCtx) {
    loop {
        // sssp-lint: protocol: epoch.select
        let k = ctx.allreduce_min(0);
    }
}
