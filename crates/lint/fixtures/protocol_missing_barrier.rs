//! Fixture: a collective rendezvous missing the barrier between its
//! write and read phases. The second `.lock(` at line 10 must fire.

fn bad_collective(&self, value: u64) -> u64 {
    {
        let mut slots = self.slots.lock();
        slots.push(value);
    }
    // Missing: a barrier between the write phase and the read below.
    let combined = self.slots.lock();
    let out = combined.iter().sum();
    drop(combined);
    self.barrier.wait();
    out
}

fn good_collective(&self, value: u64) -> u64 {
    {
        let mut slots = self.slots.lock();
        slots.push(value);
    }
    self.barrier.wait();
    let out = {
        let slots = self.slots.lock();
        slots.iter().sum()
    };
    self.barrier.wait();
    out
}
