// Seeded violations for the no-shared-state rule. Linted by the fixture
// self-test under the path crates/core/src/threaded_kernels.rs (any
// library path outside sssp-comm::threaded).

use std::sync::atomic::AtomicU64; // line 5: Atomic
use std::sync::{Mutex, RwLock}; // line 6: Mutex + RwLock

fn sneaky_parallelism(work: Vec<u64>) -> u64 {
    let total = AtomicU64::new(0); // line 9: Atomic
    std::thread::spawn(move || {}); // line 10: thread::spawn
    let (tx, rx) = std::sync::mpsc::channel::<u64>(); // line 11: mpsc::
    drop((tx, rx));
    total.into_inner()
}

static mut COUNTER: u64 = 0; // line 16: static mut

fn fine_sequential(work: &[u64]) -> u64 {
    // Arc alone is immutable sharing and allowed:
    let shared = std::sync::Arc::new(work.to_vec());
    shared.iter().sum()
}
