// Seeded violations for the no-panic-hot-path rule. Linted by the fixture
// self-test under the path crates/core/src/engine/fixture.rs.

fn relax_all(buckets: &mut Buckets, v: u32) {
    let b = buckets.get(v).unwrap(); // line 5: .unwrap()
    let c = buckets.counts.get_mut(&b).expect("bucket count missing"); // line 6: .expect(
    if *c == 0 {
        panic!("empty bucket"); // line 8: panic!
    }
    match b {
        0 => todo!(), // line 11: todo!
        _ => unreachable!("bucket overflow"), // line 12: unreachable!
    }
}

fn justified(buckets: &Buckets) -> u64 {
    // A marked line must NOT be reported:
    // sssp-lint: allow(no-panic-hot-path): counts are rebuilt one line above
    buckets.counts.get(&0).expect("just rebuilt")
}

fn strings_do_not_count() {
    let msg = "please do not .unwrap() in hot paths or call panic!()";
    let raw = r"also not .expect( here";
    let _ = (msg, raw);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_are_exempt() {
        make_buckets().get(0).unwrap();
    }
}
