// Seeded violations for the no-float-kernel rule. Linted by the fixture
// self-test under the path crates/core/src/engine/fixture.rs.

fn drift_prone(dist: u64, hops: u64) -> u64 {
    let scaled = dist as f64 * 0.5; // line 5: f64 + float literal
    let ratio: f32 = hops as f32; // line 6: f32 (twice)
    let fudge = 1f64; // line 7: suffixed literal
    scaled as u64 + ratio as u64 + fudge as u64
}

fn integral_is_fine(dist: u64, w: u32) -> u64 {
    let half = dist / 2;
    let range = 0..10;
    let _ = range;
    half + w as u64
}

fn documented_exception(n: u64) -> u64 {
    // sssp-lint: allow(no-float-kernel): hybrid switch threshold, paper SIII-D
    ((n as f64) * 0.05) as u64
}
