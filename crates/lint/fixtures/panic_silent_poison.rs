//! Seeded poison-blind sites: unwrap/expect straight off `.lock()` or a
//! condvar `.wait()` dies the moment any thread has panicked with the
//! guard held; the recovering `unwrap_or_else(PoisonError::into_inner)`
//! idiom and the justified die-on-poison stay clean.

fn bad(m: &Mutex<u64>, cv: &Condvar) {
    let g = m.lock().unwrap();
    let g = cv.wait(g).expect("collective mutex poisoned");
}

fn good(m: &Mutex<u64>, cv: &Condvar) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    let g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
}

fn justified(m: &Mutex<u64>) {
    // sssp-lint: allow(panic-silent-poison): fixture die-on-poison rendezvous
    let g = m.lock().expect("poisoned");
}
