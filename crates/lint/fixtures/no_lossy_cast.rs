// Seeded violations for the no-lossy-cast rule. Linted by the fixture
// self-test under the path crates/core/src/engine/fixture.rs.

fn build_messages(part: &Partition, v: u64, w: u64) -> RelaxMsg {
    let target = part.to_local(v) as u32; // line 5: as u32
    let weight = w as u16; // line 6: as u16
    let small = v as u8; // line 7: as u8
    let signed = w as i32; // line 8: as i32
    let alias = v as VertexId; // line 9: u32 alias is just as lossy
    RelaxMsg { target, weight, small, signed, alias }
}

fn widening_is_fine(v: u32, w: u32) -> u64 {
    let a = v as u64;
    let b = w as usize;
    a + b as u64
}

fn checked_site(part: &Partition, v: u64) -> u32 {
    // sssp-lint: allow(no-lossy-cast): audited helper, bound asserted above
    part.to_local(v) as u32
}
