//! Seeded lock-order cycle: `ab` takes a then b, `ba` takes b then a.
//! `ac` extends the order without closing a cycle and must stay clean.

struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
    c: Mutex<u64>,
}

impl S {
    fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }

    fn ba(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
    }

    fn ac(&self) {
        let g = self.a.lock();
        let h = self.c.lock();
    }
}
