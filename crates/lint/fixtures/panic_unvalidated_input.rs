//! Seeded unvalidated-input indexing: `bad` indexes with vertices
//! destructured straight out of the request; `good` validates the spec
//! against the graph first and may then index freely.

fn bad(spec: &QuerySpec, dist: &[u64]) -> u64 {
    match spec {
        QuerySpec::PointToPoint { target, .. } => dist[*target as usize],
        QuerySpec::SingleSource { root } => dist[*root as usize],
    }
}

fn good(spec: &QuerySpec, dist: &[u64]) -> u64 {
    spec.validate(dist.len()).ok();
    match spec {
        QuerySpec::PointToPoint { target, .. } => dist[*target as usize],
        QuerySpec::SingleSource { root } => dist[*root as usize],
    }
}
