//! Fixture: collective call sites guarded by rank-local state. The
//! collectives at lines 7 and 11 must fire; the sanitized tail must not.

fn divergent_reduce(ctx: &mut RankCtx, inbox: &[u64]) {
    let r = ctx.rank();
    if r == 0 {
        ctx.allreduce_sum(1);
    }
    let flag = !inbox.is_empty();
    while flag {
        ctx.exchange_pooled(out, inbox);
    }
}

fn clean_reduce(ctx: &mut RankCtx, st: &RankState) {
    let total = ctx.allreduce_sum(st.len());
    if total > 0 {
        ctx.allreduce_max(total);
    }
}
