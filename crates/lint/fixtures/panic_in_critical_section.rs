//! Seeded critical-section panics: `bad` unwraps, asserts and aborts
//! under a live guard; `good` drops the guard first, `guarded` catches
//! the unwind on the same line, and the marked abort is justified.

fn bad(m: &Mutex<Vec<u64>>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    g.first().unwrap();
    assert!(g.len() > 0);
    panic!("boom");
}

fn good(m: &Mutex<Vec<u64>>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    drop(g);
    fallback().unwrap();
}

fn guarded(m: &Mutex<Vec<u64>>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    let r = catch_unwind(|| g.first().unwrap());
}

fn justified(m: &Mutex<Vec<u64>>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    // sssp-lint: allow(panic-in-critical-section): fixture-justified abort
    g.first().unwrap();
}
