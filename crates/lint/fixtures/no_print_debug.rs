// Seeded violations for the no-print-debug rule. Linted by the fixture
// self-test under the path crates/core/src/instrument.rs.

fn report_progress(step: u64, sent: u64) {
    println!("step {step}: sent {sent}"); // line 5: println!
    eprintln!("warning"); // line 6: eprintln!
    print!("partial"); // line 7: print!
    let x = dbg!(sent); // line 8: dbg!
    let _ = x;
}

fn formatting_is_fine(step: u64) -> String {
    format!("step {step}")
}
