//! Seeded endpoint leak: `bad` clones the sender into spawned threads and
//! joins without dropping the original; `good` drops it before the join.

fn bad(tx: Sender<u64>) {
    let mut hs = Vec::new();
    for _ in 0..2 {
        let t = tx.clone();
        hs.push(std::thread::spawn(move || t.send(1)));
    }
    for h in hs {
        h.join();
    }
}

fn good(tx: Sender<u64>) {
    let mut hs = Vec::new();
    for _ in 0..2 {
        let t = tx.clone();
        hs.push(std::thread::spawn(move || t.send(1)));
    }
    drop(tx);
    for h in hs {
        h.join();
    }
}
