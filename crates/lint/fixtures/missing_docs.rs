// Seeded violations for the missing-docs-pub rule. Linted by the fixture
// self-test under the path crates/comm/src/fixture.rs.

pub struct Undocumented; // line 4: pub struct without docs

/// Documented, fine.
pub struct Documented;

/// Docs survive attributes and blank lines in between.
#[derive(Debug)]

pub enum AlsoDocumented {}

pub fn undocumented_fn() {} // line 14: pub fn without docs

pub(crate) fn restricted_needs_no_docs() {}

fn private_needs_no_docs() {}

pub use std::cmp::Ordering; // re-exports are exempt

// sssp-lint: allow(missing-docs-pub): name is the documentation
pub const SELF_EXPLANATORY: u32 = 0;
