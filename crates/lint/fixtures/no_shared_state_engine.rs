// Seeded violations for the no-shared-state rule inside the real-thread
// engine module. Linted by the fixture self-test under the path
// crates/core/src/engine/threaded.rs: the module runs on real OS threads,
// but it may reach them only through the sssp_comm::threaded primitives —
// raw thread/sync machinery stays banned there too.

use std::sync::Barrier; // line 7: Barrier
use std::thread::Builder as _; // line 8: (named import, caught below)

fn rolls_its_own_superstep(p: usize) {
    let barrier = std::sync::Barrier::new(p); // line 11: Barrier
    std::thread::Builder::new(); // line 12: thread::Builder
    let (tx, rx) = std::sync::mpsc::channel::<u64>(); // line 13: mpsc::
    drop((tx, rx, barrier));
}

// The sanctioned surface: everything below goes through RankCtx and must
// stay clean.
fn sanctioned_rank_body(ctx: &mut sssp_comm::threaded::RankCtx<u64>) -> u64 {
    let k = ctx.allreduce_min(7);
    let mut out = vec![Vec::new(); ctx.num_ranks()];
    let mut inbox = Vec::new();
    ctx.exchange_pooled(&mut out, &mut inbox);
    ctx.trim_spares();
    k + ctx.allreduce_sum(inbox.len() as u64)
}
