//! Seeded worker-boundary panics: the unforwarded thread root's bare
//! unwrap must fire; its guarded line, the forwarded root and the plain
//! (rootless) helper stay clean.

// sssp-lint: panic-root(fixture-worker)
fn worker(rx: &Receiver<Job>) {
    let job = rx.recv().unwrap();
    let done = catch_unwind(|| run_job(job).unwrap());
}

// sssp-lint: panic-root(fixture-pool, forwarded): parent joins and rethrows
fn pool_member() {
    step().unwrap();
}

fn helper() {
    free().unwrap();
}
