//! Seeded blocking-while-held: `bad` waits on the barrier and recvs with
//! the guard live; `good` scopes the guard, or drops it, before blocking.

struct S {
    m: Mutex<u64>,
    bar: Barrier,
    rx: Receiver<u64>,
}

impl S {
    fn bad(&self) {
        let g = self.m.lock();
        self.bar.wait();
        let v = self.rx.recv();
    }

    fn good(&self) {
        {
            let g = self.m.lock();
        }
        self.bar.wait();
        let g2 = self.m.lock();
        drop(g2);
        let v = self.rx.recv();
    }
}
