// Seeded violation for the crate-hygiene rule: a crate root with neither
// #![forbid(unsafe_code)] nor #![warn(missing_docs)]. Linted by the
// fixture self-test under the path crates/core/src/lib.rs.

pub mod engine;
pub mod state;
