//! Query serving over a **resident** distributed graph.
//!
//! The engine crates answer one query per call: build a
//! [`sssp_dist::DistGraph`], run, tear everything down. A serving workload
//! — many shortest-path queries against the same large graph — wants the
//! opposite lifecycle: load and partition the graph once, keep the warmed
//! per-rank engine state and transport buffer pools resident, and push a
//! stream of queries through them. This crate is that layer:
//!
//! * [`QuerySpec`] names a query: classic single-source, multi-seed,
//!   point-to-point (with early termination inside the engine), plus the
//!   analytics kernels (BFS, connected components, PageRank, closeness)
//!   as additional endpoints over the same resident graph.
//! * [`SsspServer`] owns the graph and a pool of `max_inflight` worker
//!   threads, each holding one [`sssp_core::EngineScratch`]. Submitted
//!   queries queue FIFO; a worker claims one, runs it through the
//!   threaded backend via [`sssp_core::threaded_sssp_query`] — no
//!   re-partitioning, no pool re-allocation — and publishes the
//!   [`QueryResult`].
//! * A landmark / repeat-root distance cache keyed by the canonicalized
//!   seed set answers repeated roots (and point-to-point queries whose
//!   root has a cached full distance field) without running the engine at
//!   all. [`SsspServer::rebuild`] swaps in a new graph, bumps the
//!   generation and invalidates the cache.
//!
//! Results are bit-identical to fresh one-shot runs — the differential
//! proptests in `tests/` pin scheduler output against
//! [`sssp_core::threaded_sssp_seeded`] under all three stepping policies.
//!
//! # Crash isolation
//!
//! A query failure is scoped to its own ticket, never to the server:
//! malformed specs are rejected by [`QuerySpec::validate`] *before* the
//! queue lock is taken (so a bad submit can never poison the queue), a
//! panic inside a worker is caught at the ticket boundary and surfaces as
//! [`QueryError::Panicked`] on that ticket alone, and every queue-lock
//! acquisition recovers from poisoning instead of cascading it. An
//! optional per-query deadline stops the epoch loop through a dedicated
//! collective and reports [`QueryError::TimedOut`]. The static
//! panic-reachability pass in `sssp-lint` (`--panics`) pins all of this
//! at lint time; the crash-isolation proptests pin it at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The landmark / repeat-root distance cache.
pub mod cache;
/// The scheduler: worker pool, queue, tickets.
pub mod server;

pub use cache::DistanceCache;
pub use server::{ServeConfig, SsspServer, Ticket};

use std::sync::Arc;

use sssp_core::pagerank::PageRankConfig;
use sssp_graph::VertexId;

/// One query against the resident graph.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// Classic SSSP from one root at distance 0.
    SingleSource {
        /// The root vertex.
        root: VertexId,
    },
    /// Multi-source SSSP from arbitrary `(vertex, start_distance)` seeds
    /// (a vertex listed twice keeps its smallest distance).
    MultiSeed {
        /// The seed set.
        seeds: Vec<(VertexId, u64)>,
    },
    /// Point-to-point distance: runs SSSP from `root` but stops as soon
    /// as `target`'s distance is provably final (see the target-cutoff
    /// collective in the engine), typically after far fewer epochs than a
    /// full run.
    PointToPoint {
        /// The root vertex.
        root: VertexId,
        /// The vertex whose distance is wanted.
        target: VertexId,
    },
    /// Direction-optimizing BFS from `root` (hop distances).
    Bfs {
        /// The root vertex.
        root: VertexId,
    },
    /// Connected components via min-label propagation.
    Components,
    /// PageRank over the undirected graph.
    PageRank {
        /// Damping / tolerance / iteration cap.
        config: PageRankConfig,
    },
    /// Harmonic closeness estimated from SSSP runs out of `sources`.
    Closeness {
        /// The sample sources (exact when they cover all vertices).
        sources: Vec<VertexId>,
    },
}

impl QuerySpec {
    /// The canonical seed set of a distance query (used as the cache
    /// key), or `None` for the analytics endpoints.
    pub(crate) fn seeds(&self) -> Option<Vec<(VertexId, u64)>> {
        match self {
            QuerySpec::SingleSource { root } | QuerySpec::PointToPoint { root, .. } => {
                Some(vec![(*root, 0)])
            }
            QuerySpec::MultiSeed { seeds } => Some(seeds.clone()),
            _ => None,
        }
    }

    /// Every vertex id the spec mentions (for submit-time range checks).
    pub(crate) fn vertices(&self) -> Vec<VertexId> {
        match self {
            QuerySpec::SingleSource { root } | QuerySpec::Bfs { root } => vec![*root],
            QuerySpec::MultiSeed { seeds } => seeds.iter().map(|&(v, _)| v).collect(),
            QuerySpec::PointToPoint { root, target } => vec![*root, *target],
            QuerySpec::Components | QuerySpec::PageRank { .. } => Vec::new(),
            QuerySpec::Closeness { sources } => sources.clone(),
        }
    }

    /// Validate the spec against a graph of `n` vertices: every mentioned
    /// vertex must be in range, and closeness needs at least one source.
    /// This is the sanitizer the serving layer runs **before** any lock is
    /// taken — a malformed spec is an error return, never a panic inside a
    /// critical section (the `panic-unvalidated-input` lint rule pins the
    /// pattern).
    pub fn validate(&self, n: usize) -> Result<(), QueryError> {
        for v in self.vertices() {
            if (v as usize) >= n {
                return Err(QueryError::InvalidSpec(format!(
                    "query vertex {v} out of range (n = {n})"
                )));
            }
        }
        if let QuerySpec::Closeness { sources } = self {
            if sources.is_empty() {
                return Err(QueryError::InvalidSpec(
                    "closeness needs at least one source".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// Why a query failed. Failures are scoped to the ticket that carried
/// them: the server, its workers and every other in-flight query keep
/// running (the crash-isolation proptests pin exactly this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The spec was rejected by [`QuerySpec::validate`] — at submit time
    /// (before the queue lock is taken) or by the worker's re-validation
    /// after a racing [`SsspServer::rebuild`] shrank the graph.
    InvalidSpec(String),
    /// The query panicked inside a worker. The unwind was caught at the
    /// ticket boundary: the worker recycled its scratch and went back to
    /// serving, and no lock was poisoned. The payload's panic message is
    /// carried when it was a string.
    Panicked(String),
    /// The query missed its deadline: the epoch loop stopped through the
    /// `epoch.deadline` collective (or the worker found the deadline
    /// already passed at claim time) and the partial distance field was
    /// discarded rather than served.
    TimedOut,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidSpec(why) => write!(f, "invalid query spec: {why}"),
            QueryError::Panicked(msg) => write!(f, "query panicked in worker: {msg}"),
            QueryError::TimedOut => write!(f, "query missed its deadline"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The payload of a finished query.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// Final distances per global vertex (`u64::MAX` = unreached). Shared
    /// so cache hits and their original run hand out the same allocation.
    Distances(Arc<Vec<u64>>),
    /// The target's final distance (point-to-point; the rest of the
    /// distance field may be tentative and is not exposed).
    TargetDistance(u64),
    /// BFS depth per global vertex (`u32::MAX` = unreached).
    BfsDepths(Arc<Vec<u32>>),
    /// Component label (minimum member vertex id) per global vertex.
    ComponentLabels(Arc<Vec<VertexId>>),
    /// PageRank score per global vertex.
    PageRankScores(Arc<Vec<f64>>),
    /// Harmonic closeness per global vertex.
    Closeness(Arc<Vec<f64>>),
}

impl QueryOutput {
    /// The distance field, if this output carries one.
    pub fn distances(&self) -> Option<&Arc<Vec<u64>>> {
        match self {
            QueryOutput::Distances(d) => Some(d),
            _ => None,
        }
    }

    /// The target distance, if this output is point-to-point.
    pub fn target_distance(&self) -> Option<u64> {
        match self {
            QueryOutput::TargetDistance(d) => Some(*d),
            _ => None,
        }
    }
}

/// A finished query: the payload plus serving metadata.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The ticket this result answers.
    pub ticket: Ticket,
    /// The query's payload.
    pub output: QueryOutput,
    /// Epoch-select rounds the engine performed (0 for cache hits and for
    /// endpoints that do not run the epoch loop). For a point-to-point
    /// query this is the early-terminated count — strictly fewer rounds
    /// than the same root run to completion whenever the cutoff fires
    /// before the last bucket.
    pub epochs: u64,
    /// Whether the distance cache answered without running the engine.
    pub cache_hit: bool,
    /// Graph generation the query ran against (bumped by
    /// [`SsspServer::rebuild`]).
    pub generation: u64,
}
