//! The query scheduler: a FIFO of submitted [`QuerySpec`]s drained by a
//! pool of `max_inflight` worker threads, each owning one resident
//! [`EngineScratch`].
//!
//! Locking discipline (mirrored by the static concurrency model in
//! `sssp-lint` and its committed goldens): exactly **one** mutex —
//! `queue` — guards every piece of shared state (job FIFO, finished
//! results, the graph handle, the distance cache, lifecycle flags), and
//! the two condvars `work_ready` / `done_ready` park workers and waiting
//! clients against it. No code path acquires a second lock while holding
//! the first, so the lock-order graph has no edges and cannot deadlock;
//! queries themselves execute strictly outside the critical section.
//!
//! Unwind discipline (mirrored by the static panic-reachability pass,
//! `sssp-lint --panics`): specs are validated before the queue lock is
//! ever taken, query execution runs behind `catch_unwind` so a panic
//! fails only its own ticket ([`crate::QueryError::Panicked`]), and every
//! lock acquisition goes through [`Shared::lock_queue`], which recovers a
//! poisoned mutex instead of cascading the poison — one crashed thread
//! can never wedge the condvar protocol for everyone else.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sssp_comm::cost::MachineModel;
use sssp_core::bfs::run_bfs;
use sssp_core::cc::run_cc;
use sssp_core::closeness::harmonic_closeness_sampled;
use sssp_core::pagerank::run_pagerank;
use sssp_core::{canonical_seeds, threaded_sssp_query_deadline, EngineScratch, SsspConfig};
use sssp_dist::DistGraph;

use crate::cache::{DistanceCache, SeedKey};
use crate::{QueryError, QueryOutput, QueryResult, QuerySpec};

/// Handle to a submitted query; redeem it with [`SsspServer::wait`] or
/// [`SsspServer::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

/// Serving parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads, i.e. the number of queries in flight at once.
    /// Each worker owns one [`EngineScratch`]; every query still spawns
    /// its own rank threads inside the engine.
    pub max_inflight: usize,
    /// Distance-cache capacity in full fields (0 disables the cache).
    pub cache_capacity: usize,
    /// Default per-query deadline, measured from submit time (`None` =
    /// unbounded). A query that misses it fails with
    /// [`QueryError::TimedOut`]; [`SsspServer::submit_with_deadline`]
    /// overrides this per query.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 4,
            cache_capacity: 32,
            deadline: None,
        }
    }
}

/// What a worker should do with one claimed job.
enum JobKind {
    /// Run a validated query (deadline fixed at submit time).
    Query {
        spec: QuerySpec,
        deadline: Option<Instant>,
    },
    /// Panic on the worker thread, inside the unwind guard — the chaos
    /// probe the crash-isolation tests inject.
    PanicProbe,
}

/// One queued job.
struct Job {
    ticket: Ticket,
    kind: JobKind,
}

/// Everything the queue mutex guards.
struct QueueState {
    /// FIFO of submitted, not-yet-claimed jobs.
    jobs: VecDeque<Job>,
    /// Finished queries awaiting pickup, by ticket.
    results: BTreeMap<u64, Result<QueryResult, QueryError>>,
    /// The resident graph every new query runs against.
    graph: Arc<DistGraph>,
    /// Bumped by [`SsspServer::rebuild`]; stale cache inserts are dropped.
    generation: u64,
    /// The landmark / repeat-root distance cache.
    cache: DistanceCache,
    /// Next ticket id.
    next_ticket: u64,
    /// Set once by the server's `Drop`; workers drain the FIFO then exit.
    shutdown: bool,
    /// Queries currently claimed by a worker.
    running: usize,
    /// High-water mark of `running` over the server's lifetime.
    peak_running: usize,
    /// Tickets that failed with [`QueryError::Panicked`].
    panicked: u64,
    /// Tickets that failed with [`QueryError::TimedOut`].
    timed_out: u64,
}

/// The shared half of the server: one mutex, two condvars (see the
/// module docs for the locking discipline), and a lock-free mirror of the
/// resident graph's vertex count so submit-time validation never touches
/// the lock.
struct Shared {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    done_ready: Condvar,
    /// Vertex count of the resident graph, updated under the queue lock
    /// by [`SsspServer::rebuild`] but readable without it. Submit-time
    /// validation reads this mirror; a racing rebuild costs at most a
    /// late [`QueryError::InvalidSpec`] from the worker's re-validation,
    /// never a panic.
    num_vertices: AtomicUsize,
}

impl Shared {
    /// Acquire the queue lock, **recovering** from poison: the queue's
    /// critical sections only mutate state through infallible operations
    /// (the static panic pass keeps them free of panic sites), so a
    /// poisoned mutex still holds a consistent `QueueState` — recovering
    /// it keeps one crashed thread from permanently wedging every worker
    /// and client parked on the condvars.
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Park on `work_ready`, re-acquiring the queue lock on wake (poison
    /// recovered, same contract as [`Shared::lock_queue`]).
    fn wait_work<'a>(&self, g: MutexGuard<'a, QueueState>) -> MutexGuard<'a, QueueState> {
        self.work_ready
            .wait(g)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Park on `done_ready`, re-acquiring the queue lock on wake (poison
    /// recovered, same contract as [`Shared::lock_queue`]).
    fn wait_done<'a>(&self, g: MutexGuard<'a, QueueState>) -> MutexGuard<'a, QueueState> {
        self.done_ready
            .wait(g)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A query-serving engine over one resident graph. Dropping the server
/// finishes every queued query, then joins the workers.
pub struct SsspServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    max_inflight: usize,
    deadline: Option<Duration>,
}

/// What a worker claimed from the queue in one critical section: either
/// an already-decided outcome (cache hit, expired deadline) or work to
/// execute outside the lock.
enum Claim {
    /// The ticket's outcome was decided inside the critical section.
    Done {
        ticket: Ticket,
        outcome: Result<QueryResult, QueryError>,
    },
    /// A query to execute.
    Run {
        ticket: Ticket,
        spec: QuerySpec,
        deadline: Option<Instant>,
        graph: Arc<DistGraph>,
        generation: u64,
    },
    /// A panic probe to detonate behind the unwind guard.
    Probe {
        ticket: Ticket,
    },
    Exit,
}

impl SsspServer {
    /// Spin up a server over `graph`: `serve.max_inflight` workers, each
    /// with an empty [`EngineScratch`] warmed by its first query. `cfg`
    /// and `model` apply to every SSSP-family query (analytics endpoints
    /// take only what they need from them).
    pub fn new(
        graph: Arc<DistGraph>,
        cfg: SsspConfig,
        model: MachineModel,
        serve: ServeConfig,
    ) -> SsspServer {
        let num_vertices = AtomicUsize::new(graph.num_vertices());
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                results: BTreeMap::new(),
                graph,
                generation: 0,
                cache: DistanceCache::new(serve.cache_capacity),
                next_ticket: 0,
                shutdown: false,
                running: 0,
                peak_running: 0,
                panicked: 0,
                timed_out: 0,
            }),
            work_ready: Condvar::new(),
            done_ready: Condvar::new(),
            num_vertices,
        });
        let max_inflight = serve.max_inflight.max(1);
        let workers = (0..max_inflight)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                std::thread::spawn(move || worker_loop(&shared, &cfg, &model))
            })
            .collect();
        SsspServer {
            shared,
            workers,
            max_inflight,
            deadline: serve.deadline,
        }
    }

    /// The worker-pool size (= maximum concurrently running queries).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Enqueue a query under the server's default deadline and return its
    /// ticket. A spec naming a vertex outside the resident graph (or a
    /// sourceless closeness query) is rejected with
    /// [`QueryError::InvalidSpec`] **before the queue lock is taken** —
    /// a malformed submit is an error return in the submitting thread and
    /// can never poison the queue.
    pub fn submit(&self, spec: QuerySpec) -> Result<Ticket, QueryError> {
        self.submit_with_deadline(spec, self.deadline)
    }

    /// [`SsspServer::submit`] with a per-query deadline override
    /// (measured from now; `None` = unbounded regardless of the config
    /// default).
    pub fn submit_with_deadline(
        &self,
        spec: QuerySpec,
        deadline: Option<Duration>,
    ) -> Result<Ticket, QueryError> {
        // Validation reads the lock-free vertex-count mirror, so a bad
        // spec returns before any critical section. A rebuild can race
        // the mirror read; the worker re-validates against the graph it
        // actually claims, so the race costs a late error, never a panic.
        let n = self.shared.num_vertices.load(Ordering::Acquire);
        spec.validate(n)?;
        let deadline = deadline.map(|d| Instant::now() + d);
        let mut q = self.shared.lock_queue();
        let ticket = Ticket(q.next_ticket);
        q.next_ticket += 1;
        q.jobs.push_back(Job {
            ticket,
            kind: JobKind::Query { spec, deadline },
        });
        self.shared.work_ready.notify_one();
        Ok(ticket)
    }

    /// Enqueue a job that **panics inside a worker** — the chaos probe
    /// the crash-isolation tests inject. The panic detonates on the
    /// worker thread, behind the same unwind guard real queries run
    /// under, so the probe's ticket fails with [`QueryError::Panicked`]
    /// while every other ticket (and the server itself) is unaffected.
    pub fn submit_panic_probe(&self) -> Ticket {
        let mut q = self.shared.lock_queue();
        let ticket = Ticket(q.next_ticket);
        q.next_ticket += 1;
        q.jobs.push_back(Job {
            ticket,
            kind: JobKind::PanicProbe,
        });
        self.shared.work_ready.notify_one();
        ticket
    }

    /// Block until `ticket`'s query finishes and take its outcome. Each
    /// ticket can be redeemed exactly once.
    pub fn wait(&self, ticket: Ticket) -> Result<QueryResult, QueryError> {
        let mut q = self.shared.lock_queue();
        loop {
            if let Some(outcome) = q.results.remove(&ticket.0) {
                return outcome;
            }
            // sssp-lint: allow(concurrency-blocking-hold): a condvar wait
            // atomically releases the queue lock while parked; workers
            // publishing results can always acquire it.
            q = self.shared.wait_done(q);
        }
    }

    /// Take `ticket`'s outcome if the query already finished.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<QueryResult, QueryError>> {
        let mut q = self.shared.lock_queue();
        q.results.remove(&ticket.0)
    }

    /// Submit-and-wait convenience for sequential callers.
    pub fn run(&self, spec: QuerySpec) -> Result<QueryResult, QueryError> {
        let ticket = self.submit(spec)?;
        self.wait(ticket)
    }

    /// Swap in a new resident graph: bumps the generation and clears the
    /// distance cache. Queries already claimed by a worker finish against
    /// the graph they started with (their results report the old
    /// generation, and their cache inserts are discarded); queries still
    /// queued run against the new graph.
    pub fn rebuild(&self, graph: Arc<DistGraph>) {
        let n = graph.num_vertices();
        let mut q = self.shared.lock_queue();
        q.graph = graph;
        q.generation += 1;
        q.cache.clear();
        self.shared.num_vertices.store(n, Ordering::Release);
    }

    /// The current graph generation (0 until the first [`rebuild`]).
    ///
    /// [`rebuild`]: SsspServer::rebuild
    pub fn generation(&self) -> u64 {
        let q = self.shared.lock_queue();
        q.generation
    }

    /// Distance-cache `(hits, misses)` over the server's lifetime.
    pub fn cache_stats(&self) -> (u64, u64) {
        let q = self.shared.lock_queue();
        q.cache.stats()
    }

    /// The most queries ever observed running at the same instant —
    /// the serving benchmark's concurrency gate.
    pub fn peak_inflight(&self) -> usize {
        let q = self.shared.lock_queue();
        q.peak_running
    }

    /// `(panicked, timed_out)` ticket counts over the server's lifetime —
    /// the serving telemetry block records both, and the benchmark gate
    /// requires them to be zero on a clean run.
    pub fn failure_stats(&self) -> (u64, u64) {
        let q = self.shared.lock_queue();
        (q.panicked, q.timed_out)
    }
}

impl Drop for SsspServer {
    fn drop(&mut self) {
        {
            // `lock_queue` recovers poison, so shutdown goes through even
            // after a crash — a drop may not panic, and the parked
            // workers need the wake-up.
            let mut q = self.shared.lock_queue();
            q.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker that somehow died already surfaced its message on
            // stderr; the server's drop must not double-panic.
            let _ = h.join();
        }
    }
}

/// Claim the next job — answering straight from the cache, failing an
/// already-expired deadline, or deciding to exit — one critical section
/// on the queue mutex.
fn claim(shared: &Shared) -> Claim {
    let mut q = shared.lock_queue();
    loop {
        if let Some(Job { ticket, kind }) = q.jobs.pop_front() {
            q.running += 1;
            q.peak_running = q.peak_running.max(q.running);
            let (spec, deadline) = match kind {
                JobKind::Query { spec, deadline } => (spec, deadline),
                JobKind::PanicProbe => return Claim::Probe { ticket },
            };
            // A deadline that expired while the job sat in the FIFO fails
            // here, before any engine work is scheduled for it.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Claim::Done {
                    ticket,
                    outcome: Err(QueryError::TimedOut),
                };
            }
            // Re-validate against the graph this claim actually runs on: a
            // rebuild may have raced the submit-time mirror check, and the
            // cache lookup below indexes with spec vertices.
            let n = q.graph.num_vertices();
            if let Err(e) = spec.validate(n) {
                return Claim::Done {
                    ticket,
                    outcome: Err(e),
                };
            }
            if let Some(seeds) = spec.seeds() {
                let key = canonical_seeds(&seeds, n);
                if let Some(dist) = q.cache.get(&key) {
                    let output = match &spec {
                        QuerySpec::PointToPoint { target, .. } => {
                            QueryOutput::TargetDistance(dist[*target as usize])
                        }
                        _ => QueryOutput::Distances(dist),
                    };
                    return Claim::Done {
                        ticket,
                        outcome: Ok(QueryResult {
                            ticket,
                            output,
                            epochs: 0,
                            cache_hit: true,
                            generation: q.generation,
                        }),
                    };
                }
            }
            return Claim::Run {
                ticket,
                spec,
                deadline,
                graph: Arc::clone(&q.graph),
                generation: q.generation,
            };
        }
        if q.shutdown {
            return Claim::Exit;
        }
        // sssp-lint: allow(concurrency-blocking-hold): a condvar wait
        // atomically releases the queue lock while parked; submitters can
        // always acquire it to hand over work.
        q = shared.wait_work(q);
    }
}

/// Publish a finished ticket and (for successful full distance runs) feed
/// the cache — one critical section on the queue mutex. Failure counters
/// advance here so the telemetry block sees every outcome exactly once.
fn finish(
    shared: &Shared,
    ticket: Ticket,
    outcome: Result<QueryResult, QueryError>,
    cache_insert: Option<(SeedKey, Arc<Vec<u64>>, u64)>,
) {
    let mut q = shared.lock_queue();
    if let Some((key, dist, insert_generation)) = cache_insert {
        // A rebuild may have raced this query; a stale field must not
        // poison the new graph's cache.
        if q.generation == insert_generation {
            q.cache.insert(key, dist);
        }
    }
    match &outcome {
        Err(QueryError::Panicked(_)) => q.panicked += 1,
        Err(QueryError::TimedOut) => q.timed_out += 1,
        _ => {}
    }
    q.running -= 1;
    q.results.insert(ticket.0, outcome);
    shared.done_ready.notify_all();
}

/// Best-effort text of a panic payload: string payloads (the overwhelming
/// majority — `panic!`, `assert!`, `expect` all produce them) are carried
/// verbatim; anything else gets a fixed description.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute one claimed query **outside the critical section**: re-validate
/// the spec against the graph actually claimed (submit validated against a
/// lock-free snapshot that a rebuild may have raced), check the deadline
/// once up front, then run the endpoint. SSSP-family queries thread the
/// deadline into the engine's `epoch.deadline` collective; the analytics
/// kernels run to completion once admitted. Returns the output, the epoch
/// count and an optional cache insert.
#[allow(clippy::type_complexity)]
fn run_spec(
    spec: &QuerySpec,
    deadline: Option<Instant>,
    graph: &Arc<DistGraph>,
    cfg: &SsspConfig,
    model: &MachineModel,
    scratch: &mut EngineScratch,
) -> Result<(QueryOutput, u64, Option<(SeedKey, Arc<Vec<u64>>)>), QueryError> {
    let n = graph.num_vertices();
    spec.validate(n)?;
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(QueryError::TimedOut);
    }
    match spec {
        QuerySpec::SingleSource { .. } | QuerySpec::MultiSeed { .. } => {
            let seeds = spec.seeds().unwrap_or_default();
            let out =
                threaded_sssp_query_deadline(graph, &seeds, None, deadline, cfg, model, scratch);
            if out.timed_out {
                // A timed-out field is partially tentative: never served,
                // never cached.
                return Err(QueryError::TimedOut);
            }
            let dist = Arc::new(out.distances);
            let insert = Some((canonical_seeds(&seeds, n), Arc::clone(&dist)));
            Ok((QueryOutput::Distances(dist), out.epochs, insert))
        }
        QuerySpec::PointToPoint { root, target } => {
            let out = threaded_sssp_query_deadline(
                graph,
                &[(*root, 0)],
                Some(*target),
                deadline,
                cfg,
                model,
                scratch,
            );
            if out.timed_out {
                return Err(QueryError::TimedOut);
            }
            // The early-terminated field is partially tentative, so it
            // never enters the cache; only the target entry is final.
            let td = out.distances.get(*target as usize).copied();
            let td = td.ok_or_else(|| {
                QueryError::InvalidSpec(format!("target {target} out of range (n = {n})"))
            })?;
            Ok((QueryOutput::TargetDistance(td), out.epochs, None))
        }
        QuerySpec::Bfs { root } => {
            let out = run_bfs(graph, *root, model);
            let rounds = out.stats.levels.len() as u64;
            Ok((QueryOutput::BfsDepths(Arc::new(out.depth)), rounds, None))
        }
        QuerySpec::Components => {
            let out = run_cc(graph, model);
            Ok((
                QueryOutput::ComponentLabels(Arc::new(out.labels)),
                out.rounds,
                None,
            ))
        }
        QuerySpec::PageRank { config } => {
            let out = run_pagerank(graph, config, model);
            Ok((
                QueryOutput::PageRankScores(Arc::new(out.scores)),
                out.iterations as u64,
                None,
            ))
        }
        QuerySpec::Closeness { sources } => {
            let c = harmonic_closeness_sampled(graph, sources, cfg, model);
            Ok((QueryOutput::Closeness(Arc::new(c)), 0, None))
        }
    }
}

/// One worker: claim, execute outside the lock behind an unwind guard,
/// publish, repeat. The worker's [`EngineScratch`] stays resident across
/// queries and is discarded when the graph generation changes **or** when
/// a query panics (a mid-superstep unwind leaves the scratch in whatever
/// state the crashing epoch abandoned, so it must not seed the next run).
// sssp-lint: panic-root(serve-worker)
fn worker_loop(shared: &Shared, cfg: &SsspConfig, model: &MachineModel) {
    let mut scratch = EngineScratch::new(0);
    let mut scratch_generation = u64::MAX;
    loop {
        let (ticket, spec, deadline, graph, generation) = match claim(shared) {
            Claim::Done { ticket, outcome } => {
                finish(shared, ticket, outcome, None);
                continue;
            }
            Claim::Probe { ticket } => {
                // The probe panics behind the same guard real queries run
                // under; its unwind must stop here, at the ticket.
                let blast = catch_unwind(|| panic!("deliberate panic probe"));
                let msg = match blast {
                    Err(payload) => panic_message(payload.as_ref()),
                    Ok(()) => "probe failed to panic".to_string(),
                };
                finish(shared, ticket, Err(QueryError::Panicked(msg)), None);
                continue;
            }
            Claim::Run {
                ticket,
                spec,
                deadline,
                graph,
                generation,
            } => (ticket, spec, deadline, graph, generation),
            Claim::Exit => return,
        };
        if generation != scratch_generation {
            scratch = EngineScratch::new(graph.num_ranks());
            scratch_generation = generation;
        }
        // The ticket boundary: a panic anywhere inside the query — rank
        // threads re-raise theirs at the engine join — is caught here, on
        // the worker thread, outside every critical section. The worker
        // publishes the failure and goes back to claiming.
        let guarded = catch_unwind(AssertUnwindSafe(|| {
            run_spec(&spec, deadline, &graph, cfg, model, &mut scratch)
        }));
        let (outcome, cache_insert) = match guarded {
            Ok(Ok((output, epochs, insert))) => (
                Ok(QueryResult {
                    ticket,
                    output,
                    epochs,
                    cache_hit: false,
                    generation,
                }),
                insert.map(|(key, dist)| (key, dist, generation)),
            ),
            Ok(Err(e)) => (Err(e), None),
            Err(payload) => {
                // Force a fresh scratch: the unwound query abandoned it
                // mid-superstep.
                scratch_generation = u64::MAX;
                (
                    Err(QueryError::Panicked(panic_message(payload.as_ref()))),
                    None,
                )
            }
        };
        finish(shared, ticket, outcome, cache_insert);
    }
}
