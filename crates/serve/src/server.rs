//! The query scheduler: a FIFO of submitted [`QuerySpec`]s drained by a
//! pool of `max_inflight` worker threads, each owning one resident
//! [`EngineScratch`].
//!
//! Locking discipline (mirrored by the static concurrency model in
//! `sssp-lint` and its committed goldens): exactly **one** mutex —
//! `queue` — guards every piece of shared state (job FIFO, finished
//! results, the graph handle, the distance cache, lifecycle flags), and
//! the two condvars `work_ready` / `done_ready` park workers and waiting
//! clients against it. No code path acquires a second lock while holding
//! the first, so the lock-order graph has no edges and cannot deadlock;
//! queries themselves execute strictly outside the critical section.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sssp_comm::cost::MachineModel;
use sssp_core::bfs::run_bfs;
use sssp_core::cc::run_cc;
use sssp_core::closeness::harmonic_closeness_sampled;
use sssp_core::pagerank::run_pagerank;
use sssp_core::{canonical_seeds, threaded_sssp_query, EngineScratch, SsspConfig};
use sssp_dist::DistGraph;

use crate::cache::{DistanceCache, SeedKey};
use crate::{QueryOutput, QueryResult, QuerySpec};

/// Handle to a submitted query; redeem it with [`SsspServer::wait`] or
/// [`SsspServer::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

/// Serving parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads, i.e. the number of queries in flight at once.
    /// Each worker owns one [`EngineScratch`]; every query still spawns
    /// its own rank threads inside the engine.
    pub max_inflight: usize,
    /// Distance-cache capacity in full fields (0 disables the cache).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 4,
            cache_capacity: 32,
        }
    }
}

/// Everything the queue mutex guards.
struct QueueState {
    /// FIFO of submitted, not-yet-claimed queries.
    jobs: VecDeque<(Ticket, QuerySpec)>,
    /// Finished queries awaiting pickup, by ticket.
    results: BTreeMap<u64, QueryResult>,
    /// The resident graph every new query runs against.
    graph: Arc<DistGraph>,
    /// Bumped by [`SsspServer::rebuild`]; stale cache inserts are dropped.
    generation: u64,
    /// The landmark / repeat-root distance cache.
    cache: DistanceCache,
    /// Next ticket id.
    next_ticket: u64,
    /// Set once by the server's `Drop`; workers drain the FIFO then exit.
    shutdown: bool,
    /// Queries currently claimed by a worker.
    running: usize,
    /// High-water mark of `running` over the server's lifetime.
    peak_running: usize,
}

/// The shared half of the server: one mutex, two condvars (see the
/// module docs for the locking discipline).
struct Shared {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    done_ready: Condvar,
}

/// A query-serving engine over one resident graph. Dropping the server
/// finishes every queued query, then joins the workers.
pub struct SsspServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    max_inflight: usize,
}

/// What a worker claimed from the queue in one critical section: either
/// a cache hit (already a finished result) or a query to execute.
enum Claim {
    Hit(QueryResult),
    Run {
        ticket: Ticket,
        spec: QuerySpec,
        graph: Arc<DistGraph>,
        generation: u64,
    },
    Exit,
}

impl SsspServer {
    /// Spin up a server over `graph`: `serve.max_inflight` workers, each
    /// with an empty [`EngineScratch`] warmed by its first query. `cfg`
    /// and `model` apply to every SSSP-family query (analytics endpoints
    /// take only what they need from them).
    pub fn new(
        graph: Arc<DistGraph>,
        cfg: SsspConfig,
        model: MachineModel,
        serve: ServeConfig,
    ) -> SsspServer {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                results: BTreeMap::new(),
                graph,
                generation: 0,
                cache: DistanceCache::new(serve.cache_capacity),
                next_ticket: 0,
                shutdown: false,
                running: 0,
                peak_running: 0,
            }),
            work_ready: Condvar::new(),
            done_ready: Condvar::new(),
        });
        let max_inflight = serve.max_inflight.max(1);
        let workers = (0..max_inflight)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                std::thread::spawn(move || worker_loop(&shared, &cfg, &model))
            })
            .collect();
        SsspServer {
            shared,
            workers,
            max_inflight,
        }
    }

    /// The worker-pool size (= maximum concurrently running queries).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Enqueue a query and return its ticket. Panics if the spec names a
    /// vertex outside the resident graph (checked here so the failure
    /// surfaces in the submitting thread, not inside a worker).
    pub fn submit(&self, spec: QuerySpec) -> Ticket {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        let n = q.graph.num_vertices();
        for v in spec.vertices() {
            assert!((v as usize) < n, "query vertex {v} out of range (n = {n})");
        }
        if let QuerySpec::Closeness { sources } = &spec {
            assert!(!sources.is_empty(), "closeness needs at least one source");
        }
        let ticket = Ticket(q.next_ticket);
        q.next_ticket += 1;
        q.jobs.push_back((ticket, spec));
        self.shared.work_ready.notify_one();
        ticket
    }

    /// Block until `ticket`'s query finishes and take its result. Each
    /// ticket can be redeemed exactly once.
    pub fn wait(&self, ticket: Ticket) -> QueryResult {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        loop {
            if let Some(res) = q.results.remove(&ticket.0) {
                return res;
            }
            // sssp-lint: allow(concurrency-blocking-hold): a condvar wait
            // atomically releases the queue lock while parked; workers
            // publishing results can always acquire it.
            q = self.shared.done_ready.wait(q).expect("queue poisoned");
        }
    }

    /// Take `ticket`'s result if the query already finished.
    pub fn poll(&self, ticket: Ticket) -> Option<QueryResult> {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        q.results.remove(&ticket.0)
    }

    /// Submit-and-wait convenience for sequential callers.
    pub fn run(&self, spec: QuerySpec) -> QueryResult {
        let ticket = self.submit(spec);
        self.wait(ticket)
    }

    /// Swap in a new resident graph: bumps the generation and clears the
    /// distance cache. Queries already claimed by a worker finish against
    /// the graph they started with (their results report the old
    /// generation, and their cache inserts are discarded); queries still
    /// queued run against the new graph.
    pub fn rebuild(&self, graph: Arc<DistGraph>) {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        q.graph = graph;
        q.generation += 1;
        q.cache.clear();
    }

    /// The current graph generation (0 until the first [`rebuild`]).
    ///
    /// [`rebuild`]: SsspServer::rebuild
    pub fn generation(&self) -> u64 {
        let q = self.shared.queue.lock().expect("queue poisoned");
        q.generation
    }

    /// Distance-cache `(hits, misses)` over the server's lifetime.
    pub fn cache_stats(&self) -> (u64, u64) {
        let q = self.shared.queue.lock().expect("queue poisoned");
        q.cache.stats()
    }

    /// The most queries ever observed running at the same instant —
    /// the serving benchmark's concurrency gate.
    pub fn peak_inflight(&self) -> usize {
        let q = self.shared.queue.lock().expect("queue poisoned");
        q.peak_running
    }
}

impl Drop for SsspServer {
    fn drop(&mut self) {
        {
            // A panic inside `submit` (out-of-range spec) poisons the
            // mutex; shutdown must still go through — a drop may not
            // panic, and the parked workers need the wake-up.
            let mut q = match self.shared.queue.lock() {
                Ok(q) => q,
                Err(poisoned) => poisoned.into_inner(),
            };
            q.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker that panicked already surfaced its message on
            // stderr; the server's drop must not double-panic.
            let _ = h.join();
        }
    }
}

/// Claim the next job (answering straight from the cache when possible)
/// or decide to exit — one critical section on the queue mutex.
fn claim(shared: &Shared) -> Claim {
    let mut q = shared.queue.lock().expect("queue poisoned");
    loop {
        if let Some((ticket, spec)) = q.jobs.pop_front() {
            q.running += 1;
            q.peak_running = q.peak_running.max(q.running);
            let n = q.graph.num_vertices();
            if let Some(seeds) = spec.seeds() {
                let key = canonical_seeds(&seeds, n);
                if let Some(dist) = q.cache.get(&key) {
                    let output = match &spec {
                        QuerySpec::PointToPoint { target, .. } => {
                            QueryOutput::TargetDistance(dist[*target as usize])
                        }
                        _ => QueryOutput::Distances(dist),
                    };
                    return Claim::Hit(QueryResult {
                        ticket,
                        output,
                        epochs: 0,
                        cache_hit: true,
                        generation: q.generation,
                    });
                }
            }
            return Claim::Run {
                ticket,
                spec,
                graph: Arc::clone(&q.graph),
                generation: q.generation,
            };
        }
        if q.shutdown {
            return Claim::Exit;
        }
        // sssp-lint: allow(concurrency-blocking-hold): a condvar wait
        // atomically releases the queue lock while parked; submitters can
        // always acquire it to hand over work.
        q = shared.work_ready.wait(q).expect("queue poisoned");
    }
}

/// Publish a finished query and (for full distance runs) feed the cache —
/// one critical section on the queue mutex.
fn finish(shared: &Shared, result: QueryResult, cache_insert: Option<(SeedKey, Arc<Vec<u64>>)>) {
    let mut q = shared.queue.lock().expect("queue poisoned");
    if let Some((key, dist)) = cache_insert {
        // A rebuild may have raced this query; a stale field must not
        // poison the new graph's cache.
        if q.generation == result.generation {
            q.cache.insert(key, dist);
        }
    }
    q.running -= 1;
    q.results.insert(result.ticket.0, result);
    shared.done_ready.notify_all();
}

/// One worker: claim, execute outside the lock, publish, repeat. The
/// worker's [`EngineScratch`] stays resident across queries and is
/// discarded only when the graph generation changes.
fn worker_loop(shared: &Shared, cfg: &SsspConfig, model: &MachineModel) {
    let mut scratch = EngineScratch::new(0);
    let mut scratch_generation = u64::MAX;
    loop {
        let (ticket, spec, graph, generation) = match claim(shared) {
            Claim::Hit(result) => {
                finish(shared, result, None);
                continue;
            }
            Claim::Run {
                ticket,
                spec,
                graph,
                generation,
            } => (ticket, spec, graph, generation),
            Claim::Exit => return,
        };
        if generation != scratch_generation {
            scratch = EngineScratch::new(graph.num_ranks());
            scratch_generation = generation;
        }
        let n = graph.num_vertices();
        let mut cache_insert: Option<(SeedKey, Arc<Vec<u64>>)> = None;
        let (output, epochs) = match &spec {
            QuerySpec::SingleSource { .. } | QuerySpec::MultiSeed { .. } => {
                let seeds = spec.seeds().unwrap_or_default();
                let out = threaded_sssp_query(&graph, &seeds, None, cfg, model, &mut scratch);
                let dist = Arc::new(out.distances);
                cache_insert = Some((canonical_seeds(&seeds, n), Arc::clone(&dist)));
                (QueryOutput::Distances(dist), out.epochs)
            }
            QuerySpec::PointToPoint { root, target } => {
                let out = threaded_sssp_query(
                    &graph,
                    &[(*root, 0)],
                    Some(*target),
                    cfg,
                    model,
                    &mut scratch,
                );
                // The early-terminated field is partially tentative, so it
                // never enters the cache; only the target entry is final.
                (
                    QueryOutput::TargetDistance(out.distances[*target as usize]),
                    out.epochs,
                )
            }
            QuerySpec::Bfs { root } => {
                let out = run_bfs(&graph, *root, model);
                let rounds = out.stats.levels.len() as u64;
                (QueryOutput::BfsDepths(Arc::new(out.depth)), rounds)
            }
            QuerySpec::Components => {
                let out = run_cc(&graph, model);
                (
                    QueryOutput::ComponentLabels(Arc::new(out.labels)),
                    out.rounds,
                )
            }
            QuerySpec::PageRank { config } => {
                let out = run_pagerank(&graph, config, model);
                (
                    QueryOutput::PageRankScores(Arc::new(out.scores)),
                    out.iterations as u64,
                )
            }
            QuerySpec::Closeness { sources } => {
                let c = harmonic_closeness_sampled(&graph, sources, cfg, model);
                (QueryOutput::Closeness(Arc::new(c)), 0)
            }
        };
        finish(
            shared,
            QueryResult {
                ticket,
                output,
                epochs,
                cache_hit: false,
                generation,
            },
            cache_insert,
        );
    }
}
