//! The landmark / repeat-root distance cache.
//!
//! Full distance fields are cached under their **canonicalized seed set**
//! (sorted, deduplicated, minimum distance per vertex — see
//! [`sssp_core::canonical_seeds`]), so `SingleSource { root: 7 }`, a
//! `MultiSeed` spelling of the same root and a repeated submission all
//! share one entry. Point-to-point queries consult the cache too: a
//! cached full field for their root answers `dist[target]` directly —
//! the landmark pattern — but their own (partially tentative) output is
//! never inserted.
//!
//! Eviction is least-recently-used over a fixed capacity; the server
//! clears the whole cache on graph rebuild (entries are only valid for
//! one graph generation, and the generation is checked again at insert
//! time so a query that raced a rebuild cannot poison the new graph's
//! cache).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use sssp_graph::VertexId;

/// Cache key: a canonicalized seed set.
pub type SeedKey = Vec<(VertexId, u64)>;

/// An LRU map from canonical seed sets to shared full distance fields.
#[derive(Debug, Default)]
pub struct DistanceCache {
    capacity: usize,
    entries: BTreeMap<SeedKey, Arc<Vec<u64>>>,
    /// LRU order: front = coldest, back = hottest.
    order: VecDeque<SeedKey>,
    hits: u64,
    misses: u64,
}

impl DistanceCache {
    /// An empty cache holding at most `capacity` distance fields
    /// (`capacity == 0` disables caching entirely).
    pub fn new(capacity: usize) -> DistanceCache {
        DistanceCache {
            capacity,
            ..DistanceCache::default()
        }
    }

    /// Number of cached fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since creation (survives `clear`).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Look up a canonical seed set, counting a hit or miss and touching
    /// the entry's LRU position.
    pub fn get(&mut self, key: &SeedKey) -> Option<Arc<Vec<u64>>> {
        match self.entries.get(key) {
            Some(dist) => {
                self.hits += 1;
                let dist = Arc::clone(dist);
                if let Some(at) = self.order.iter().position(|k| k == key) {
                    self.order.remove(at);
                    self.order.push_back(key.clone());
                }
                Some(dist)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a full distance field, evicting the least-recently-used
    /// entry if the cache is at capacity.
    pub fn insert(&mut self, key: SeedKey, dist: Arc<Vec<u64>>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key.clone(), dist).is_none() {
            self.order.push_back(key);
            while self.entries.len() > self.capacity {
                if let Some(cold) = self.order.pop_front() {
                    self.entries.remove(&cold);
                }
            }
        } else if let Some(at) = self.order.iter().position(|k| k == &key) {
            self.order.remove(at);
            self.order.push_back(key);
        }
    }

    /// Drop every entry (hit/miss counters are preserved — they describe
    /// the server's lifetime, not one graph's).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: VertexId) -> SeedKey {
        vec![(v, 0)]
    }

    fn field(seed: u64) -> Arc<Vec<u64>> {
        Arc::new(vec![seed; 4])
    }

    #[test]
    fn get_insert_roundtrip_counts_hits_and_misses() {
        let mut c = DistanceCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), field(10));
        assert_eq!(c.get(&key(1)).as_deref(), Some(&vec![10; 4]));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = DistanceCache::new(2);
        c.insert(key(1), field(1));
        c.insert(key(2), field(2));
        // Touch 1 so 2 becomes the coldest.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), field(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "coldest entry should be evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order() {
        let mut c = DistanceCache::new(2);
        c.insert(key(1), field(1));
        c.insert(key(2), field(2));
        c.insert(key(1), field(11)); // refresh: 2 is now coldest
        c.insert(key(3), field(3));
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.get(&key(1)).as_deref(), Some(&vec![11; 4]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = DistanceCache::new(0);
        c.insert(key(1), field(1));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut c = DistanceCache::new(4);
        c.insert(key(1), field(1));
        let _ = c.get(&key(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats(), (1, 1));
    }
}
