//! The serving differential: N queries of mixed kinds pushed through the
//! concurrent scheduler must agree **bit-identically** with fresh
//! one-shot engine runs, under all three stepping policies. This pins the
//! whole resident-state story — reused `RankState`, warmed pools, the
//! distance cache, the point-to-point cutoff — to the engine's one-shot
//! semantics.

use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::bfs::run_bfs;
use sssp_core::{threaded_sssp_seeded, SsspConfig};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder, VertexId};
use sssp_serve::{QueryOutput, QuerySpec, ServeConfig, SsspServer};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (3usize..50, 0usize..200, 1u32..50, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// One configuration per stepping policy (finite Δ with the hybrid tail,
/// ρ-stepping, radius-stepping).
fn policy_matrix() -> Vec<SsspConfig> {
    vec![
        SsspConfig::opt(20),
        SsspConfig::rho(64),
        SsspConfig::radius(64),
    ]
}

/// The fresh one-shot oracle for a seed set.
fn fresh(dg: &Arc<DistGraph>, seeds: &[(VertexId, u64)], cfg: &SsspConfig) -> Vec<u64> {
    threaded_sssp_seeded(dg, seeds, cfg, &MachineModel::bgq_like()).distances
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn concurrent_scheduler_matches_fresh_one_shot_runs(
        g in arb_graph(),
        p in 1usize..4,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 4..5),
    ) {
        let n = g.num_vertices();
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        let a = picks[0].index(n) as u32;
        let b = picks[1].index(n) as u32;
        let c = picks[2].index(n) as u32;
        let d = picks[3].index(n) as u32;
        let multi = vec![(b, 5u64), (c, 0u64), (b, 9u64)];

        for cfg in policy_matrix() {
            let server = SsspServer::new(
                Arc::clone(&dg),
                cfg.clone(),
                model,
                ServeConfig { max_inflight: 3, cache_capacity: 8, deadline: None },
            );
            // Mixed kinds, all in flight at once. The repeated root `a`
            // may race its first run (cache miss) or follow it (cache
            // hit) — both must be bit-identical to the fresh oracle.
            let tickets = vec![
                server.submit(QuerySpec::SingleSource { root: a }).unwrap(),
                server.submit(QuerySpec::MultiSeed { seeds: multi.clone() }).unwrap(),
                server.submit(QuerySpec::PointToPoint { root: a, target: d }).unwrap(),
                server.submit(QuerySpec::SingleSource { root: a }).unwrap(),
                server.submit(QuerySpec::Bfs { root: c }).unwrap(),
            ];
            let results: Vec<_> = tickets
                .into_iter()
                .map(|t| server.wait(t).expect("valid query must succeed"))
                .collect();

            let oracle_a = fresh(&dg, &[(a, 0)], &cfg);
            let oracle_multi = fresh(&dg, &multi, &cfg);
            let oracle_bfs = run_bfs(&dg, c, &model).depth;

            for (i, res) in results.iter().enumerate() {
                match (i, &res.output) {
                    (0 | 3, QueryOutput::Distances(dist)) => {
                        prop_assert_eq!(dist.as_ref(), &oracle_a, "query {} cfg {:?}", i, &cfg);
                    }
                    (1, QueryOutput::Distances(dist)) => {
                        prop_assert_eq!(dist.as_ref(), &oracle_multi, "cfg {:?}", &cfg);
                    }
                    (2, QueryOutput::TargetDistance(td)) => {
                        prop_assert_eq!(*td, oracle_a[d as usize], "cfg {:?}", &cfg);
                    }
                    (4, QueryOutput::BfsDepths(depth)) => {
                        prop_assert_eq!(depth.as_ref(), &oracle_bfs);
                    }
                    other => prop_assert!(false, "unexpected output shape: {:?}", other),
                }
            }
        }
    }
}
