//! Endpoint semantics of the serving layer: the landmark cache (hit
//! behavior, rebuild invalidation, point-to-point answered from a cached
//! field), the point-to-point epoch savings surfaced through
//! [`sssp_serve::QueryResult::epochs`], and the analytics endpoints'
//! agreement with their underlying kernels.

use std::sync::Arc;
use std::time::Duration;

use sssp_comm::cost::MachineModel;
use sssp_core::bfs::run_bfs;
use sssp_core::cc::run_cc;
use sssp_core::closeness::harmonic_closeness_sampled;
use sssp_core::pagerank::{run_pagerank, PageRankConfig};
use sssp_core::{threaded_sssp_seeded, SsspConfig};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder};
use sssp_serve::{QueryError, QueryOutput, QuerySpec, ServeConfig, SsspServer};

fn model() -> MachineModel {
    MachineModel::bgq_like()
}

/// A weighted path with random shortcut noise — enough structure that a
/// full run takes many epochs while a near target settles immediately.
fn noisy_path(n: usize, w: u32, noise: usize, seed: u64) -> Csr {
    let mut el = gen::path(n, w);
    for e in gen::uniform(n, noise, 30, seed).edges {
        el.push(e.u, e.v, e.w);
    }
    CsrBuilder::new().build(&el)
}

fn one_worker(dg: &Arc<DistGraph>, cfg: SsspConfig) -> SsspServer {
    SsspServer::new(
        Arc::clone(dg),
        cfg,
        model(),
        ServeConfig {
            max_inflight: 1,
            cache_capacity: 8,
            deadline: None,
        },
    )
}

/// Submit-and-wait for specs the test knows are valid.
fn run_ok(server: &SsspServer, spec: QuerySpec) -> sssp_serve::QueryResult {
    server.run(spec).expect("valid query must succeed")
}

#[test]
fn repeat_root_hits_the_cache_with_identical_distances() {
    let g = noisy_path(300, 7, 600, 11);
    let dg = Arc::new(DistGraph::build(&g, 2, 2));
    let server = one_worker(&dg, SsspConfig::opt(20));

    // One worker serializes the queue, so the second query observes the
    // first one's cache insert deterministically.
    let first = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    let second = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    assert!(!first.cache_hit);
    assert!(second.cache_hit);
    assert_eq!(second.epochs, 0, "a cache hit runs no epochs");
    let d1 = first.output.distances().expect("distances").clone();
    let d2 = second.output.distances().expect("distances").clone();
    assert_eq!(d1, d2);
    assert!(Arc::ptr_eq(&d1, &d2), "hits share the cached allocation");

    // Landmark pattern: a point-to-point query whose root has a cached
    // full field is answered from it without running the engine.
    let p2p = run_ok(
        &server,
        QuerySpec::PointToPoint {
            root: 0,
            target: 299,
        },
    );
    assert!(p2p.cache_hit);
    assert_eq!(p2p.output.target_distance(), Some(d1[299]));

    let (hits, misses) = server.cache_stats();
    assert_eq!((hits, misses), (2, 1));
}

#[test]
fn multi_seed_canonicalization_shares_one_cache_entry() {
    let g = noisy_path(120, 5, 200, 3);
    let dg = Arc::new(DistGraph::build(&g, 2, 2));
    let server = one_worker(&dg, SsspConfig::opt(20));

    // Same seed set spelled three ways: duplicates keep the minimum
    // distance, order is irrelevant.
    let a = run_ok(
        &server,
        QuerySpec::MultiSeed {
            seeds: vec![(7, 4), (30, 0), (7, 9)],
        },
    );
    let b = run_ok(
        &server,
        QuerySpec::MultiSeed {
            seeds: vec![(30, 0), (7, 4)],
        },
    );
    assert!(!a.cache_hit);
    assert!(b.cache_hit, "canonicalized seed sets must share the entry");
    assert_eq!(
        a.output.distances().expect("distances"),
        b.output.distances().expect("distances")
    );
}

#[test]
fn rebuild_invalidates_the_cache_and_serves_the_new_graph() {
    let light = CsrBuilder::new().build(&gen::path(50, 3));
    let heavy = CsrBuilder::new().build(&gen::path(50, 5));
    let dg_light = Arc::new(DistGraph::build(&light, 2, 2));
    let dg_heavy = Arc::new(DistGraph::build(&heavy, 2, 2));
    let server = one_worker(&dg_light, SsspConfig::opt(20));

    let before = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    assert_eq!(before.generation, 0);
    assert_eq!(before.output.distances().expect("distances")[49], 49 * 3);

    server.rebuild(Arc::clone(&dg_heavy));
    assert_eq!(server.generation(), 1);

    let after = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    assert!(!after.cache_hit, "rebuild must clear the cache");
    assert_eq!(after.generation, 1);
    assert_eq!(after.output.distances().expect("distances")[49], 49 * 5);
}

#[test]
fn point_to_point_saves_epochs_and_reports_the_exact_distance() {
    let g = noisy_path(400, 9, 1200, 5);
    let dg = Arc::new(DistGraph::build(&g, 3, 2));
    // Non-hybrid finite Δ: the τ-tail would finish a small graph in a
    // couple of epochs and leave the cutoff nothing to save.
    let server = one_worker(&dg, SsspConfig::del(10));

    let full = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    let near = run_ok(&server, QuerySpec::PointToPoint { root: 0, target: 2 });
    // The full field for root 0 is cached, so force the engine to run the
    // p2p query by using a root with no cached entry.
    assert!(near.cache_hit, "cached landmark answers the near target");
    let fresh_near = run_ok(&server, QuerySpec::PointToPoint { root: 1, target: 2 });
    assert!(!fresh_near.cache_hit);

    let oracle = threaded_sssp_seeded(&dg, &[(1, 0)], &SsspConfig::del(10), &model());
    assert_eq!(
        fresh_near.output.target_distance(),
        Some(oracle.distances[2])
    );
    assert!(
        fresh_near.epochs < full.epochs,
        "p2p cutoff saved no epochs ({} vs {})",
        fresh_near.epochs,
        full.epochs
    );
}

#[test]
fn analytics_endpoints_match_their_kernels() {
    let g = noisy_path(80, 4, 160, 9);
    let dg = Arc::new(DistGraph::build(&g, 2, 2));
    let cfg = SsspConfig::opt(20);
    let server = one_worker(&dg, cfg.clone());

    let bfs = run_ok(&server, QuerySpec::Bfs { root: 3 });
    match bfs.output {
        QueryOutput::BfsDepths(depth) => {
            assert_eq!(depth.as_ref(), &run_bfs(&dg, 3, &model()).depth);
        }
        other => panic!("expected BFS depths, got {other:?}"),
    }

    let cc = run_ok(&server, QuerySpec::Components);
    match cc.output {
        QueryOutput::ComponentLabels(labels) => {
            assert_eq!(labels.as_ref(), &run_cc(&dg, &model()).labels);
        }
        other => panic!("expected component labels, got {other:?}"),
    }

    let pr_cfg = PageRankConfig::default();
    let pr = run_ok(&server, QuerySpec::PageRank { config: pr_cfg });
    match pr.output {
        QueryOutput::PageRankScores(scores) => {
            assert_eq!(
                scores.as_ref(),
                &run_pagerank(&dg, &pr_cfg, &model()).scores
            );
        }
        other => panic!("expected PageRank scores, got {other:?}"),
    }

    let sources = vec![0, 17, 42];
    let cl = run_ok(
        &server,
        QuerySpec::Closeness {
            sources: sources.clone(),
        },
    );
    match cl.output {
        QueryOutput::Closeness(c) => {
            assert_eq!(
                c.as_ref(),
                &harmonic_closeness_sampled(&dg, &sources, &cfg, &model())
            );
        }
        other => panic!("expected closeness, got {other:?}"),
    }
}

#[test]
fn concurrent_workers_stay_within_the_inflight_bound() {
    let g = noisy_path(500, 6, 1500, 21);
    let dg = Arc::new(DistGraph::build(&g, 2, 2));
    let server = SsspServer::new(
        Arc::clone(&dg),
        SsspConfig::opt(20),
        model(),
        ServeConfig {
            max_inflight: 4,
            cache_capacity: 0, // every query runs the engine
            deadline: None,
        },
    );
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            server
                .submit(QuerySpec::SingleSource { root: i * 17 })
                .expect("valid root")
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let res = server.wait(t).expect("valid query must succeed");
        let root = (i as u32) * 17;
        let oracle = threaded_sssp_seeded(&dg, &[(root, 0)], &SsspConfig::opt(20), &model());
        assert_eq!(
            res.output.distances().expect("distances").as_ref(),
            &oracle.distances,
            "root {root}"
        );
    }
    let peak = server.peak_inflight();
    assert!(
        (1..=4).contains(&peak),
        "peak inflight {peak} out of bounds"
    );
}

#[test]
fn poll_returns_none_until_the_query_finishes() {
    let g = CsrBuilder::new().build(&gen::path(20, 2));
    let dg = Arc::new(DistGraph::build(&g, 1, 1));
    let server = one_worker(&dg, SsspConfig::opt(10));
    let t = server
        .submit(QuerySpec::SingleSource { root: 0 })
        .expect("valid root");
    let res = server.wait(t).expect("valid query must succeed");
    assert_eq!(res.output.distances().expect("distances")[19], 38);
    assert!(
        server.poll(t).is_none(),
        "a ticket is redeemable exactly once"
    );
}

#[test]
fn out_of_range_submit_is_rejected_and_leaves_the_server_serviceable() {
    let g = CsrBuilder::new().build(&gen::path(10, 2));
    let dg = Arc::new(DistGraph::build(&g, 1, 1));
    let server = one_worker(&dg, SsspConfig::opt(10));

    // The historical repro: this submit used to assert inside the
    // submitter *while holding the queue lock*, poisoning the mutex and
    // wedging every later client. It must now be a plain error return,
    // decided before any lock is taken.
    let err = server
        .submit(QuerySpec::PointToPoint {
            root: 0,
            target: 10,
        })
        .expect_err("out-of-range target must be rejected");
    match &err {
        QueryError::InvalidSpec(why) => assert!(
            why.contains("out of range"),
            "unexpected rejection reason: {why}"
        ),
        other => panic!("expected InvalidSpec, got {other:?}"),
    }

    // A sourceless closeness query is malformed too.
    let err = server
        .submit(QuerySpec::Closeness { sources: vec![] })
        .expect_err("sourceless closeness must be rejected");
    assert!(matches!(err, QueryError::InvalidSpec(_)));

    // The server is still fully serviceable after the bad submits.
    let res = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    assert_eq!(res.output.distances().expect("distances")[9], 18);
    assert_eq!(
        server.failure_stats(),
        (0, 0),
        "rejected submits never reach a worker"
    );
}

#[test]
fn deadline_in_the_past_times_out_without_running_the_engine() {
    let g = noisy_path(200, 6, 400, 13);
    let dg = Arc::new(DistGraph::build(&g, 2, 2));
    let server = one_worker(&dg, SsspConfig::opt(20));

    // A zero deadline has always expired by the time a worker claims the
    // job, so the ticket fails with TimedOut before any engine work.
    let t = server
        .submit_with_deadline(
            QuerySpec::SingleSource { root: 0 },
            Some(Duration::from_secs(0)),
        )
        .expect("valid root");
    assert!(matches!(server.wait(t), Err(QueryError::TimedOut)));
    assert_eq!(server.failure_stats(), (0, 1), "timeout must be counted");

    // The same query without a deadline still succeeds afterwards.
    let res = run_ok(&server, QuerySpec::SingleSource { root: 0 });
    assert!(!res.cache_hit, "a timed-out run must not seed the cache");
}

#[test]
fn panic_probe_fails_its_own_ticket_only() {
    let g = noisy_path(150, 5, 300, 17);
    let dg = Arc::new(DistGraph::build(&g, 2, 2));
    let server = one_worker(&dg, SsspConfig::opt(20));

    let before = run_ok(&server, QuerySpec::SingleSource { root: 1 });
    let probe = server.submit_panic_probe();
    match server.wait(probe) {
        Err(QueryError::Panicked(msg)) => {
            assert!(msg.contains("deliberate panic probe"), "got: {msg}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert_eq!(server.failure_stats(), (1, 0), "panic must be counted");

    // The worker that caught the unwind keeps serving, bit-identically.
    let after = run_ok(&server, QuerySpec::SingleSource { root: 1 });
    assert_eq!(
        before.output.distances().expect("distances").as_ref(),
        after.output.distances().expect("distances").as_ref()
    );
}
