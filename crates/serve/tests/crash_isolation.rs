//! Crash isolation under concurrency: panic probes detonated in the
//! middle of a mixed concurrent batch must fail **only their own
//! tickets**. Every real query in the batch must come back bit-identical
//! to a fresh one-shot engine run, the failure counters must account for
//! exactly the probes, and the server must stay fully serviceable
//! afterwards — the runtime half of the contract the static
//! panic-reachability pass (`sssp-lint --panics`) pins at lint time.

use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::{threaded_sssp_seeded, SsspConfig};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder};
use sssp_serve::{QueryError, QueryOutput, QuerySpec, ServeConfig, SsspServer};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (3usize..40, 0usize..160, 1u32..50, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// One slot of the interleaved batch: a real query or a chaos probe.
enum Slot {
    Query(QuerySpec),
    Probe,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn panicking_queries_fail_alone_in_a_concurrent_batch(
        g in arb_graph(),
        p in 1usize..4,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 3usize..4),
        // Bitmask over the 6 batch slots; 1..=62 guarantees at least one
        // probe and at least one real query.
        probe_mask in 1usize..63,
    ) {
        let n = g.num_vertices();
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        let cfg = SsspConfig::opt(20);
        let roots: Vec<u32> = picks.iter().map(|ix| ix.index(n) as u32).collect();

        let server = SsspServer::new(
            Arc::clone(&dg),
            cfg.clone(),
            model,
            ServeConfig { max_inflight: 3, cache_capacity: 4, deadline: None },
        );

        // Interleave real queries with panic probes at arbitrary slots, all
        // in flight at once across 3 workers — probes detonate while real
        // queries run on sibling workers.
        let specs = vec![
            QuerySpec::SingleSource { root: roots[0] },
            QuerySpec::MultiSeed { seeds: vec![(roots[1], 3), (roots[2], 0)] },
            QuerySpec::SingleSource { root: roots[1] },
            QuerySpec::PointToPoint { root: roots[0], target: roots[2] },
            QuerySpec::SingleSource { root: roots[0] },
            QuerySpec::SingleSource { root: roots[2] },
        ];
        let batch: Vec<Slot> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                if (probe_mask >> i) & 1 == 1 {
                    Slot::Probe
                } else {
                    Slot::Query(spec)
                }
            })
            .collect();
        let tickets: Vec<_> = batch
            .iter()
            .map(|slot| match slot {
                Slot::Query(spec) => server.submit(spec.clone()).unwrap(),
                Slot::Probe => server.submit_panic_probe(),
            })
            .collect();
        let outcomes: Vec<_> = tickets.into_iter().map(|t| server.wait(t)).collect();

        let mut probes_seen = 0u64;
        for (slot, outcome) in batch.iter().zip(&outcomes) {
            match slot {
                Slot::Probe => {
                    probes_seen += 1;
                    prop_assert!(
                        matches!(outcome, Err(QueryError::Panicked(_))),
                        "probe must fail with Panicked, got {:?}",
                        outcome
                    );
                }
                Slot::Query(spec) => {
                    // Every real query succeeds, bit-identical to a fresh
                    // one-shot run — a sibling's panic never leaks.
                    let res = outcome.as_ref().expect("real query must succeed");
                    let seeds = match spec.clone() {
                        QuerySpec::SingleSource { root } => vec![(root, 0)],
                        QuerySpec::MultiSeed { seeds } => seeds,
                        QuerySpec::PointToPoint { root, .. } => vec![(root, 0)],
                        other => panic!("unexpected spec in batch: {other:?}"),
                    };
                    let oracle = threaded_sssp_seeded(&dg, &seeds, &cfg, &model).distances;
                    match (&res.output, spec.clone()) {
                        (QueryOutput::Distances(dist), _) => {
                            prop_assert_eq!(dist.as_ref(), &oracle);
                        }
                        (QueryOutput::TargetDistance(td), QuerySpec::PointToPoint { target, .. }) => {
                            prop_assert_eq!(*td, oracle[target as usize]);
                        }
                        other => prop_assert!(false, "unexpected output shape: {:?}", other),
                    }
                }
            }
        }

        // The counters account for exactly the probes, nothing timed out,
        // and the worker invariants survived the unwinding.
        prop_assert_eq!(server.failure_stats(), (probes_seen, 0));
        let peak = server.peak_inflight();
        prop_assert!(
            (1..=3).contains(&peak),
            "peak inflight {} out of bounds after panics",
            peak
        );

        // The server stays serviceable: a post-crash query on each root is
        // still bit-identical to the oracle (workers discarded any scratch
        // a panicking query abandoned).
        for &root in &roots {
            let res = server
                .run(QuerySpec::SingleSource { root })
                .expect("post-crash query must succeed");
            let oracle = threaded_sssp_seeded(&dg, &[(root, 0)], &cfg, &model).distances;
            match &res.output {
                QueryOutput::Distances(dist) => prop_assert_eq!(dist.as_ref(), &oracle),
                other => prop_assert!(false, "unexpected output shape: {:?}", other),
            }
        }
    }
}
