//! Micro-benchmarks of the substrate kernels: graph generation, CSR
//! construction, the sequential references, message exchange and the bucket
//! relax operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sssp_bench::{build_family, Family};
use sssp_comm::exchange::{exchange, Outbox};
use sssp_core::config::DeltaParam;
use sssp_core::seq;
use sssp_core::state::RankState;
use sssp_graph::rmat::{RmatGenerator, RmatParams};
use sssp_graph::CsrBuilder;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.bench_function("rmat1_scale12_tuples", |b| {
        let gen = RmatGenerator::new(RmatParams::RMAT1, 12, 16).seed(1);
        b.iter(|| black_box(gen.generate_tuples()))
    });
    g.bench_function("rmat1_scale12_weighted", |b| {
        let gen = RmatGenerator::new(RmatParams::RMAT1, 12, 16).seed(1);
        b.iter(|| black_box(gen.generate_weighted(255)))
    });
    g.bench_function("csr_build_scale12", |b| {
        let el = RmatGenerator::new(RmatParams::RMAT1, 12, 16)
            .seed(1)
            .generate_weighted(255);
        b.iter(|| black_box(CsrBuilder::new().build(&el)))
    });
    g.finish();
}

fn bench_seq(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential");
    g.sample_size(10);
    let csr = build_family(Family::Rmat1, 12, 1);
    g.bench_function("dijkstra_scale12", |b| {
        b.iter(|| black_box(seq::dijkstra(&csr, 0)))
    });
    g.bench_function("delta_stepping25_scale12", |b| {
        b.iter(|| black_box(seq::delta_stepping(&csr, 0, 25)))
    });
    g.finish();
}

fn bench_relax(c: &mut Criterion) {
    let mut g = c.benchmark_group("relax_kernel");
    let delta = DeltaParam::Finite(25);
    g.bench_function("relax_100k_improving", |b| {
        b.iter(|| {
            let mut st = RankState::new(0, 100_000, 4);
            st.begin_phase();
            for i in 0..100_000u32 {
                st.relax(i, (i as u64).wrapping_mul(37) % 10_000, &delta);
            }
            black_box(st.changed.len())
        })
    });
    g.bench_function("relax_100k_rejected", |b| {
        let mut st = RankState::new(0, 100_000, 4);
        st.begin_phase();
        for i in 0..100_000u32 {
            st.relax(i, 10, &delta);
        }
        b.iter(|| {
            st.begin_phase();
            for i in 0..100_000u32 {
                st.relax(i, 500, &delta); // all rejected
            }
            black_box(st.changed.len())
        })
    });
    g.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange");
    g.bench_function("exchange_16ranks_64k_msgs", |b| {
        b.iter(|| {
            let p = 16;
            let mut obs: Vec<Outbox<(u32, u64)>> = (0..p).map(|_| Outbox::new(p)).collect();
            for (src, ob) in obs.iter_mut().enumerate() {
                for i in 0..4096u32 {
                    ob.send((src + i as usize) % p, (i, i as u64));
                }
            }
            black_box(exchange(obs, 16))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_seq,
    bench_relax,
    bench_exchange
);
criterion_main!(benches);
