//! Full-run benchmarks of every algorithm preset on both graph families —
//! the wall-clock companions to the simulated-machine figures (Figs. 3 and
//! 9–11 at micro scale).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sssp_bench::{build_family, pick_roots, Family};
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::run_sssp;
use sssp_dist::DistGraph;

fn presets() -> Vec<(&'static str, SsspConfig)> {
    vec![
        ("dijkstra", SsspConfig::dijkstra()),
        ("bellman_ford", SsspConfig::bellman_ford()),
        ("del25", SsspConfig::del(25)),
        ("prune25", SsspConfig::prune(25)),
        ("opt25", SsspConfig::opt(25)),
        ("lb_opt25", SsspConfig::lb_opt(25)),
    ]
}

fn bench_family(c: &mut Criterion, family: Family) {
    let scale = 11;
    let csr = build_family(family, scale, 1);
    let dg = DistGraph::build(&csr, 8, 4);
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();

    let mut g = c.benchmark_group(format!("{}_scale{scale}", family.name()));
    g.sample_size(10);
    for (name, cfg) in presets() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_sssp(&dg, root, cfg, &model)))
        });
    }
    g.finish();
}

fn bench_rmat1(c: &mut Criterion) {
    bench_family(c, Family::Rmat1);
}

fn bench_rmat2(c: &mut Criterion) {
    bench_family(c, Family::Rmat2);
}

fn bench_rank_counts(c: &mut Criterion) {
    // Strong-scaling flavor: fixed graph, growing simulated rank count.
    let csr = build_family(Family::Rmat1, 12, 1);
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();
    let mut g = c.benchmark_group("opt25_rank_count");
    g.sample_size(10);
    for p in [1usize, 4, 16, 64] {
        let dg = DistGraph::build(&csr, p, 4);
        g.bench_with_input(BenchmarkId::from_parameter(p), &dg, |b, dg| {
            b.iter(|| black_box(run_sssp(dg, root, &SsspConfig::opt(25), &model)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rmat1, bench_rmat2, bench_rank_counts);
criterion_main!(benches);
