//! Ablation benchmarks for the design choices DESIGN.md calls out: each
//! optimization toggled independently, the hybrid threshold swept, both
//! pull-volume estimators, and the load balancers exercised on a
//! deliberately hub-dominated graph where their effect is extreme.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sssp_bench::{build_family, pick_roots, Family};
use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, IntraBalance, PullEstimator, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_dist::{split_heavy_vertices, DistGraph};
use sssp_graph::{gen, CsrBuilder};

fn bench_ios(c: &mut Criterion) {
    let csr = build_family(Family::Rmat1, 11, 1);
    let dg = DistGraph::build(&csr, 8, 4);
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();
    let mut g = c.benchmark_group("ablation_ios");
    g.sample_size(10);
    for (name, ios) in [("off", false), ("on", true)] {
        let cfg = SsspConfig::del(25).with_ios(ios);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_sssp(&dg, root, cfg, &model)))
        });
    }
    g.finish();
}

fn bench_direction_policy(c: &mut Criterion) {
    let csr = build_family(Family::Rmat1, 11, 1);
    let dg = DistGraph::build(&csr, 8, 4);
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();
    let mut g = c.benchmark_group("ablation_direction");
    g.sample_size(10);
    for (name, dir) in [
        ("always_push", DirectionPolicy::AlwaysPush),
        ("always_pull", DirectionPolicy::AlwaysPull),
        ("heuristic", DirectionPolicy::Heuristic),
    ] {
        let cfg = SsspConfig::prune(25).with_direction(dir);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_sssp(&dg, root, cfg, &model)))
        });
    }
    g.finish();
}

fn bench_hybrid_tau(c: &mut Criterion) {
    let csr = build_family(Family::Rmat2, 11, 1);
    let dg = DistGraph::build(&csr, 8, 4);
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();
    let mut g = c.benchmark_group("ablation_hybrid_tau");
    g.sample_size(10);
    for tau in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let cfg = SsspConfig::prune(25).with_hybrid(Some(tau));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("tau{tau}")),
            &cfg,
            |b, cfg| b.iter(|| black_box(run_sssp(&dg, root, cfg, &model))),
        );
    }
    g.finish();
}

fn bench_pull_estimator(c: &mut Criterion) {
    let csr = build_family(Family::Rmat1, 11, 1);
    let dg = DistGraph::build(&csr, 8, 4);
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();
    let mut g = c.benchmark_group("ablation_pull_estimator");
    g.sample_size(10);
    for (name, est) in [
        ("exact", PullEstimator::Exact),
        ("expectation", PullEstimator::Expectation),
    ] {
        let cfg = SsspConfig::opt(25).with_pull_estimator(est);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_sssp(&dg, root, cfg, &model)))
        });
    }
    g.finish();
}

/// A hub-dominated graph (a handful of stars over a sparse background)
/// where thread balancing and vertex splitting show their full effect.
fn hub_graph() -> sssp_graph::Csr {
    let n = 8192;
    let mut el = gen::uniform(n, 4 * n, 255, 5);
    // Five hubs, each wired to 2000 distinct vertices.
    for h in 0..5u32 {
        for i in 0..2000u32 {
            let v = (h + 5 + i * 4) % n as u32;
            el.push(h, v, 1 + ((h + i) % 255));
        }
    }
    CsrBuilder::new().build(&el)
}

fn bench_load_balancing(c: &mut Criterion) {
    let csr = hub_graph();
    let root = pick_roots(&csr, 1, 3)[0];
    let model = MachineModel::bgq_like();
    let p = 8;
    let mut g = c.benchmark_group("ablation_load_balancing");
    g.sample_size(10);

    let dg = DistGraph::build(&csr, p, 64);
    for (name, bal) in [
        ("none", IntraBalance::Off),
        ("intra_auto", IntraBalance::Auto),
        ("intra_pi128", IntraBalance::Threshold(128)),
    ] {
        let cfg = SsspConfig::opt(25).with_intra_balance(bal);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_sssp(&dg, root, cfg, &model)))
        });
    }

    let (split_csr, part, _) = split_heavy_vertices(&csr, p, 256);
    let dg_split =
        DistGraph::build_with_partition(&split_csr, part, 64, csr.num_undirected_edges() as u64);
    g.bench_function("intra_plus_split", |b| {
        b.iter(|| black_box(run_sssp(&dg_split, root, &SsspConfig::lb_opt(25), &model)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ios,
    bench_direction_policy,
    bench_hybrid_tau,
    bench_pull_estimator,
    bench_load_balancing
);
criterion_main!(benches);
