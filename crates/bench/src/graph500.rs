//! Graph 500-style evaluation protocol.
//!
//! The benchmark the paper targets evaluates kernels over a batch of random
//! search keys (64 in the official spec) and reports the **harmonic mean**
//! TEPS — the statistic its submission tables (and our Fig. 1) are built
//! from. This module packages that protocol for both the SSSP engine and
//! the BFS comparison kernel.

use sssp_comm::cost::MachineModel;
use sssp_core::bfs::run_bfs;
use sssp_core::config::SsspConfig;
use sssp_core::engine::run_sssp;
use sssp_core::validate;
use sssp_dist::DistGraph;
use sssp_graph::{Csr, VertexId};

/// Result of a multi-root evaluation.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Which kernel the timings cover ("bfs" or "sssp").
    pub kernel: &'static str,
    /// The sampled search roots, in run order.
    pub roots: Vec<VertexId>,
    /// Simulated seconds per root.
    pub times_s: Vec<f64>,
    /// Input edge count used for TEPS.
    pub m_edges: u64,
}

impl KernelResult {
    /// Harmonic mean TEPS over the roots (the Graph 500 statistic).
    pub fn harmonic_mean_teps(&self) -> f64 {
        let inv_sum: f64 = self.times_s.iter().map(|&t| t / self.m_edges as f64).sum();
        if inv_sum == 0.0 {
            return 0.0;
        }
        self.times_s.len() as f64 / inv_sum
    }

    /// Mean wall-clock-model seconds per root.
    pub fn mean_time_s(&self) -> f64 {
        self.times_s.iter().sum::<f64>() / self.times_s.len().max(1) as f64
    }
}

/// Run the SSSP kernel over `roots`, optionally validating each run against
/// sequential Dijkstra (the spec's result check).
pub fn evaluate_sssp(
    csr: &Csr,
    dg: &DistGraph,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
    validate_runs: bool,
) -> KernelResult {
    let times_s = roots
        .iter()
        .map(|&root| {
            let out = run_sssp(dg, root, cfg, model);
            if validate_runs {
                validate::assert_matches_dijkstra(csr, root, &out);
            }
            out.stats.ledger.total_s()
        })
        .collect();
    KernelResult {
        kernel: "sssp",
        roots: roots.to_vec(),
        times_s,
        m_edges: dg.m_input_undirected,
    }
}

/// Run the BFS kernel over `roots`, optionally validating hop distances.
pub fn evaluate_bfs(
    csr: &Csr,
    dg: &DistGraph,
    roots: &[VertexId],
    model: &MachineModel,
    validate_runs: bool,
) -> KernelResult {
    let times_s = roots
        .iter()
        .map(|&root| {
            let out = run_bfs(dg, root, model);
            if validate_runs {
                assert_eq!(
                    out.depth,
                    sssp_core::bfs::seq_bfs(csr, root),
                    "BFS mismatch from root {root}"
                );
            }
            out.stats.ledger.total_s()
        })
        .collect();
    KernelResult {
        kernel: "bfs",
        roots: roots.to_vec(),
        times_s,
        m_edges: dg.m_input_undirected,
    }
}

/// Full validation of one SSSP output per the Graph 500 SSSP proposal's
/// checks: (1) the tree distances match the claimed distances, (2) every
/// edge satisfies the triangle inequality, (3) every reachable non-root
/// vertex has a tight predecessor, (4) the root's distance is zero, and
/// (5) unreachable ⇔ infinite distance is consistent with BFS reachability.
pub fn spec_validate(csr: &Csr, root: VertexId, distances: &[u64]) -> Result<(), String> {
    if distances[root as usize] != 0 {
        return Err("root distance non-zero".into());
    }
    for (u, v, w) in csr.undirected_edges() {
        let du = distances[u as usize];
        let dv = distances[v as usize];
        if du != u64::MAX && dv > du.saturating_add(w as u64) {
            return Err(format!("edge ({u},{v},{w}) violates triangle inequality"));
        }
        if dv != u64::MAX && du > dv.saturating_add(w as u64) {
            return Err(format!("edge ({v},{u},{w}) violates triangle inequality"));
        }
        if (du == u64::MAX) != (dv == u64::MAX) {
            return Err(format!("edge ({u},{v}) spans the reachability boundary"));
        }
    }
    for v in csr.vertices() {
        let dv = distances[v as usize];
        if v != root && dv != u64::MAX && dv > 0 {
            let tight = csr
                .row(v)
                .any(|(u, w)| distances[u as usize].saturating_add(w as u64) == dv);
            if !tight {
                return Err(format!("vertex {v} has no tight predecessor"));
            }
        }
    }
    // Reachability must agree with (unweighted) BFS from the root.
    let depth = sssp_core::bfs::seq_bfs(csr, root);
    for v in csr.vertices() {
        let bfs_reach = depth[v as usize] != u32::MAX;
        let sssp_reach = distances[v as usize] != u64::MAX;
        if bfs_reach != sssp_reach {
            return Err(format!("vertex {v}: reachability disagrees with BFS"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_family, pick_roots, Family};
    use sssp_core::seq;

    #[test]
    fn harmonic_mean_of_equal_times() {
        let r = KernelResult {
            kernel: "sssp",
            roots: vec![0, 1],
            times_s: vec![2.0, 2.0],
            m_edges: 100,
        };
        assert!((r.harmonic_mean_teps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_depends_only_on_total_time() {
        // HM(TEPS) = n·m / Σtᵢ, so redistributing the same total time across
        // roots changes nothing — the Graph 500 statistic deliberately
        // counts wall-clock, not per-run rates.
        let even = KernelResult {
            kernel: "sssp",
            roots: vec![0, 1],
            times_s: vec![1.0, 1.0],
            m_edges: 100,
        };
        let skewed = KernelResult {
            kernel: "sssp",
            roots: vec![0, 1],
            times_s: vec![0.1, 1.9],
            m_edges: 100,
        };
        assert!((even.harmonic_mean_teps() - skewed.harmonic_mean_teps()).abs() < 1e-9);
        // And it is bounded above by the arithmetic mean of per-run TEPS.
        let arith: f64 =
            skewed.times_s.iter().map(|&t| 100.0 / t).sum::<f64>() / skewed.times_s.len() as f64;
        assert!(skewed.harmonic_mean_teps() <= arith);
    }

    #[test]
    fn evaluate_both_kernels_with_validation() {
        let csr = build_family(Family::Rmat2, 9, 4);
        let dg = DistGraph::build(&csr, 4, 2);
        let roots = pick_roots(&csr, 3, 8);
        let model = MachineModel::bgq_like();
        let s = evaluate_sssp(&csr, &dg, &roots, &SsspConfig::opt(25), &model, true);
        let b = evaluate_bfs(&csr, &dg, &roots, &model, true);
        assert!(s.harmonic_mean_teps() > 0.0);
        assert!(b.harmonic_mean_teps() > 0.0);
        // BFS must be faster than SSSP on the same machine (the paper's
        // point is that SSSP gets within a small factor).
        assert!(b.harmonic_mean_teps() > s.harmonic_mean_teps());
    }

    #[test]
    fn spec_validation_passes_on_correct_output() {
        let csr = build_family(Family::Rmat2, 8, 5);
        let root = pick_roots(&csr, 1, 9)[0];
        let dist = seq::dijkstra(&csr, root);
        spec_validate(&csr, root, &dist).unwrap();
    }

    #[test]
    fn spec_validation_catches_corruption() {
        let csr = build_family(Family::Rmat2, 8, 5);
        let root = pick_roots(&csr, 1, 9)[0];
        let mut dist = seq::dijkstra(&csr, root);
        // Corrupt one reachable vertex.
        let v = csr
            .vertices()
            .find(|&v| v != root && dist[v as usize] != u64::MAX && dist[v as usize] > 0)
            .unwrap();
        dist[v as usize] += 1;
        assert!(spec_validate(&csr, root, &dist).is_err());
    }
}
