//! Fig. 12 — performance of the final algorithms on the largest systems:
//! GTEPS for both families across the full weak-scaling sweep, with the
//! two-tier load balancing (including inter-node vertex splitting) active
//! for RMAT-1.
//!
//! Paper shape to reproduce: near-linear weak scaling for both families,
//! RMAT-1 (Δ=25, LB + splitting) roughly 2× RMAT-2 (Δ=40) thanks to the
//! stronger pruning on the more skewed family.

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::{split_heavy_vertices, DistGraph};

fn main() {
    let spr = scale_per_rank();
    let threads = 4;
    let model = MachineModel::bgq_like();

    let mut rows = Vec::new();
    for p in weak_scaling_ranks() {
        let scale = spr + (p as f64).log2() as u32;

        // RMAT-1: LB-OPT-25 over the split graph (two-tier balancing).
        let g1 = build_family(Family::Rmat1, scale, 1);
        let threshold = sssp_dist::split::auto_threshold(&g1, p);
        let (split_csr, part, rep) = split_heavy_vertices(&g1, p, threshold);
        let dg1 = DistGraph::build_with_partition(
            &split_csr,
            part,
            threads,
            g1.num_undirected_edges() as u64,
        );
        let roots1 = pick_roots(&g1, 2, 31);
        let a1 = run_aggregate(&dg1, &roots1, &SsspConfig::lb_opt(25), &model);

        // RMAT-2: OPT-40, no balancing needed (§IV-F).
        let g2 = build_family(Family::Rmat2, scale, 1);
        let dg2 = DistGraph::build(&g2, p, threads);
        let roots2 = pick_roots(&g2, 2, 31);
        let a2 = run_aggregate(&dg2, &roots2, &SsspConfig::opt(40), &model);

        rows.push(vec![
            p.to_string(),
            scale.to_string(),
            format!("{:.3}", a1.gteps),
            format!("{:.3}", a2.gteps),
            rep.proxies_created.to_string(),
        ]);
    }
    print_table(
        &format!("Fig 12 — final algorithms, weak scaling (2^{spr} vertices/rank)"),
        &[
            "ranks",
            "scale",
            "RMAT-1 (LB-OPT-25+split)",
            "RMAT-2 (OPT-40)",
            "proxies",
        ],
        &rows,
    );
    println!("\nPaper expectation: near-linear scaling; RMAT-1 ≈ 2× RMAT-2.");
}
