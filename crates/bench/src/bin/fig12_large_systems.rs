//! Fig. 12 — the final algorithms on the largest systems: both families
//! across the full weak-scaling sweep, with the two-tier load balancing
//! (including inter-node vertex splitting) active for RMAT-1.
//!
//! Paper shape to reproduce: per-root work (phases, relaxations) grows
//! slowly with the rank count on both families — the near-linear weak
//! scaling — while RMAT-1's stronger pruning keeps its relaxations-per-
//! edge below RMAT-2's; the proxies column tracks how many hub vertices
//! the second balancing tier split.
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! every column is trace-derived or structural, so the table is
//! identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::{split_heavy_vertices, DistGraph};
use sssp_graph::VertexId;

/// Mean `(phases, relaxations)` over the roots of one configuration.
fn means(
    dg: &Arc<DistGraph>,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
    backend: Backend,
) -> (f64, f64) {
    let (mut phases, mut relax) = (0u64, 0u64);
    for &root in roots {
        let (_, trace) = run_trace(dg, root, cfg, model, backend);
        phases += trace.phases.len() as u64;
        relax += trace.phases.iter().map(|r| r.relaxations).sum::<u64>();
    }
    let k = roots.len() as f64;
    (phases as f64 / k, relax as f64 / k)
}

fn main() {
    let backend = backend_from_args();
    let spr = scale_per_rank();
    let threads = 4;
    let model = MachineModel::bgq_like();

    let mut rows = Vec::new();
    for p in weak_scaling_ranks() {
        let scale = spr + (p as f64).log2() as u32;

        // RMAT-1: LB-OPT-25 over the split graph (two-tier balancing).
        let g1 = build_family(Family::Rmat1, scale, 1);
        let threshold = sssp_dist::split::auto_threshold(&g1, p);
        let (split_csr, part, rep) = split_heavy_vertices(&g1, p, threshold);
        let dg1 = Arc::new(DistGraph::build_with_partition(
            &split_csr,
            part,
            threads,
            g1.num_undirected_edges() as u64,
        ));
        let roots1 = pick_roots(&g1, 2, 31);
        let (ph1, rx1) = means(&dg1, &roots1, &SsspConfig::lb_opt(25), &model, backend);

        // RMAT-2: OPT-40, no balancing needed (§IV-F).
        let g2 = build_family(Family::Rmat2, scale, 1);
        let dg2 = Arc::new(DistGraph::build(&g2, p, threads));
        let roots2 = pick_roots(&g2, 2, 31);
        let (ph2, rx2) = means(&dg2, &roots2, &SsspConfig::opt(40), &model, backend);

        rows.push(vec![
            p.to_string(),
            scale.to_string(),
            format!("{ph1:.1}"),
            human(rx1),
            format!("{ph2:.1}"),
            human(rx2),
            rep.proxies_created.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Fig 12 — final algorithms, weak scaling (2^{spr} vertices/rank), {} backend",
            backend.name()
        ),
        &[
            "ranks",
            "scale",
            "RMAT-1 phases",
            "RMAT-1 relax",
            "RMAT-2 phases",
            "RMAT-2 relax",
            "proxies",
        ],
        &rows,
    );
    println!("\nPaper expectation: per-root work grows slowly with ranks (near-linear");
    println!("weak scaling); RMAT-1's pruning keeps its relaxations below RMAT-2's.");
}
