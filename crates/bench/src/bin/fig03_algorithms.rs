//! Fig. 3 — comparison of the basic and proposed algorithms on both graph
//! families: (a) number of phases, (b) number of relaxations.
//!
//! Paper shape to reproduce: Bellman-Ford fewest phases, Dijkstra most;
//! Δ-stepping in between, trending toward Dijkstra as Δ shrinks. For
//! relaxations the order reverses, and `Prune` beats even Dijkstra by a
//! large factor (≈5× on RMAT-1).

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::DistGraph;

fn main() {
    let scale = scale_per_rank() + 4;
    let ranks = 16;
    let model = MachineModel::bgq_like();

    for family in [Family::Rmat1, Family::Rmat2] {
        let g = build_family(family, scale, 1);
        let dg = DistGraph::build(&g, ranks, 4);
        let roots = pick_roots(&g, 4, 11);

        let algos: Vec<(&str, SsspConfig)> = vec![
            ("Bellman-Ford", SsspConfig::bellman_ford()),
            ("Dijkstra", SsspConfig::dijkstra()),
            ("Del-10", SsspConfig::del(10)),
            ("Del-25", SsspConfig::del(25)),
            ("Del-40", SsspConfig::del(40)),
            ("Hybrid-25", SsspConfig::del(25).with_hybrid(Some(0.4))),
            ("Prune-25", SsspConfig::prune(25)),
            ("OPT-25", SsspConfig::opt(25)),
        ];

        let mut rows = Vec::new();
        for (name, cfg) in &algos {
            let agg = run_aggregate(&dg, &roots, cfg, &model);
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", agg.phases),
                format!("{:.1}", agg.buckets),
                human(agg.relaxations),
            ]);
        }
        print_table(
            &format!(
                "Fig 3 — {} scale {scale}, {ranks} ranks, {} roots",
                family.name(),
                roots.len()
            ),
            &["algorithm", "phases (3a)", "buckets", "relaxations (3b)"],
            &rows,
        );
    }
}
