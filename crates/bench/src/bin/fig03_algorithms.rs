//! Fig. 3 — comparison of the basic and proposed algorithms on both graph
//! families: (a) number of phases, (b) number of relaxations.
//!
//! Paper shape to reproduce: Bellman-Ford fewest phases, Dijkstra most;
//! Δ-stepping in between, trending toward Dijkstra as Δ shrinks. For
//! relaxations the order reverses, and `Prune` beats even Dijkstra by a
//! large factor (≈5× on RMAT-1).
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! the unified telemetry layer makes the figure identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::RunTrace;
use sssp_dist::DistGraph;

/// The figure's three series, read off one run's telemetry trace:
/// relaxation supersteps, processed buckets (hybrid tail included), and
/// total relaxation messages.
fn series(trace: &RunTrace) -> (u64, u64, u64) {
    let phases = trace.phases.len() as u64;
    let buckets = trace.buckets.len() as u64 + u64::from(trace.tail.is_some());
    let relaxations = trace.phases.iter().map(|r| r.relaxations).sum();
    (phases, buckets, relaxations)
}

fn main() {
    let backend = backend_from_args();
    let scale = scale_per_rank() + 4;
    let ranks = 16;
    let model = MachineModel::bgq_like();

    for family in [Family::Rmat1, Family::Rmat2] {
        let g = build_family(family, scale, 1);
        let dg = Arc::new(DistGraph::build(&g, ranks, 4));
        let roots = pick_roots(&g, 4, 11);

        let algos: Vec<(&str, SsspConfig)> = vec![
            ("Bellman-Ford", SsspConfig::bellman_ford()),
            ("Dijkstra", SsspConfig::dijkstra()),
            ("Del-10", SsspConfig::del(10)),
            ("Del-25", SsspConfig::del(25)),
            ("Del-40", SsspConfig::del(40)),
            ("Hybrid-25", SsspConfig::del(25).with_hybrid(Some(0.4))),
            ("Prune-25", SsspConfig::prune(25)),
            ("OPT-25", SsspConfig::opt(25)),
            ("Rho-2k", SsspConfig::rho(2048)),
            ("Radius-8", SsspConfig::radius(8)),
        ];

        let mut rows = Vec::new();
        for (name, cfg) in &algos {
            let (mut phases, mut buckets, mut relaxations) = (0.0f64, 0.0f64, 0u64);
            for &root in &roots {
                let (_, trace) = run_trace(&dg, root, cfg, &model, backend);
                let (p, b, r) = series(&trace);
                phases += p as f64;
                buckets += b as f64;
                relaxations += r;
            }
            let k = roots.len() as f64;
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", phases / k),
                format!("{:.1}", buckets / k),
                human(relaxations as f64 / k),
            ]);
        }
        print_table(
            &format!(
                "Fig 3 — {} scale {scale}, {ranks} ranks, {} roots, {} backend",
                family.name(),
                roots.len(),
                backend.name()
            ),
            &["algorithm", "phases (3a)", "buckets", "relaxations (3b)"],
            &rows,
        );
    }
}
