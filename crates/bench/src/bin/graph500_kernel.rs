//! Graph 500-style multi-root evaluation of both kernels, reporting the
//! harmonic-mean GTEPS and the BFS : SSSP ratio the paper's Fig. 1 frames
//! its contribution with ("SSSP is only two to five times slower than BFS
//! on the same machine configuration").

use sssp_bench::graph500::{evaluate_bfs, evaluate_sssp};
use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::DistGraph;

fn main() {
    let scale = scale_per_rank() + 4;
    let ranks = 16;
    let nroots: usize = std::env::var("SSSP_BENCH_NROOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8); // official spec: 64
    let model = MachineModel::bgq_like();

    let mut rows = Vec::new();
    for family in [Family::Rmat1, Family::Rmat2] {
        let csr = build_family(family, scale, 1);
        let dg = DistGraph::build(&csr, ranks, 64);
        let roots = pick_roots(&csr, nroots, 77);
        let delta = if family == Family::Rmat1 { 25 } else { 40 };

        let bfs = evaluate_bfs(&csr, &dg, &roots, &model, false);
        let sssp = evaluate_sssp(&csr, &dg, &roots, &SsspConfig::lb_opt(delta), &model, false);
        let bfs_gteps = bfs.harmonic_mean_teps() / 1e9;
        let sssp_gteps = sssp.harmonic_mean_teps() / 1e9;
        rows.push(vec![
            family.name().into(),
            format!("2^{scale}"),
            nroots.to_string(),
            format!("{bfs_gteps:.3}"),
            format!("{sssp_gteps:.3}"),
            format!("{:.1}x", bfs_gteps / sssp_gteps.max(1e-12)),
        ]);
    }
    print_table(
        &format!("Graph 500-style kernel comparison ({ranks} ranks, harmonic-mean GTEPS)"),
        &[
            "family",
            "scale",
            "roots",
            "BFS",
            "SSSP (LB-OPT)",
            "BFS/SSSP",
        ],
        &rows,
    );
    println!("\nPaper expectation (Fig 1): SSSP within 2–5x of same-machine BFS.");
}
