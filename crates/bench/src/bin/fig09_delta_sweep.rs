//! Fig. 9 — weak-scaling performance of the baseline Δ-stepping algorithm
//! (with short/long classification) for Δ from 1 (Dijkstra) to ∞
//! (Bellman-Ford) on RMAT-1.
//!
//! Paper shape to reproduce: both extremes perform poorly (Dijkstra drowns
//! in buckets, Bellman-Ford in redundant relaxations); Δ between 10 and 50
//! is the sweet spot.

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::DistGraph;

fn main() {
    let spr = scale_per_rank();
    let model = MachineModel::bgq_like();
    let deltas: Vec<(&str, SsspConfig)> = vec![
        ("Δ=1 (Dijkstra)", SsspConfig::dijkstra()),
        ("Δ=5", SsspConfig::del(5)),
        ("Δ=10", SsspConfig::del(10)),
        ("Δ=25", SsspConfig::del(25)),
        ("Δ=50", SsspConfig::del(50)),
        ("Δ=100", SsspConfig::del(100)),
        ("Δ=∞ (B-Ford)", SsspConfig::bellman_ford()),
    ];

    let mut rows = Vec::new();
    for p in weak_scaling_ranks() {
        let scale = spr + (p as f64).log2() as u32;
        let g = build_family(Family::Rmat1, scale, 1);
        let dg = DistGraph::build(&g, p, 4);
        let roots = pick_roots(&g, 2, 17);
        let mut row = vec![p.to_string(), scale.to_string()];
        for (_, cfg) in &deltas {
            let agg = run_aggregate(&dg, &roots, cfg, &model);
            row.push(format!("{:.3}", agg.gteps));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["ranks", "scale"];
    for (name, _) in &deltas {
        headers.push(name);
    }
    print_table(
        &format!("Fig 9 — RMAT-1 weak scaling GTEPS of Δ-stepping, 2^{spr} vertices/rank"),
        &headers,
        &rows,
    );
    println!("\nPaper expectation: Δ in [10, 50] best; Δ=1 and Δ=∞ markedly worse.");
}
