//! Fig. 9 — the stepping-parameter sweep on RMAT-1 weak scaling, from
//! Δ = 1 (Dijkstra) through the Δ sweet spot to Δ = ∞ (Bellman-Ford),
//! extended with the non-Δ stepping policies (ρ-stepping and radius
//! stepping) the policy engine supports.
//!
//! Paper shape to reproduce: both Δ extremes perform poorly (Dijkstra
//! drowns in buckets, Bellman-Ford in redundant relaxations); Δ between
//! 10 and 50 is the sweet spot. The policy rows land on the same
//! trade-off curve: a window policy buys fewer epochs at the price of
//! more speculative relaxations.
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! the unified telemetry layer makes the figure identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::RunTrace;
use sssp_dist::DistGraph;

/// The sweep's series, read off one run's telemetry trace: relaxation
/// phases, processed buckets/windows (hybrid tail included), and total
/// relaxation messages.
fn series(trace: &RunTrace) -> (u64, u64, u64) {
    let phases = trace.phases.len() as u64;
    let buckets = trace.buckets.len() as u64 + u64::from(trace.tail.is_some());
    let relaxations = trace.phases.iter().map(|r| r.relaxations).sum();
    (phases, buckets, relaxations)
}

fn main() {
    let backend = backend_from_args();
    let spr = scale_per_rank();
    let model = MachineModel::bgq_like();
    let sweep: Vec<(&str, SsspConfig)> = vec![
        ("Δ=1 (Dijkstra)", SsspConfig::dijkstra()),
        ("Δ=5", SsspConfig::del(5)),
        ("Δ=10", SsspConfig::del(10)),
        ("Δ=25", SsspConfig::del(25)),
        ("Δ=50", SsspConfig::del(50)),
        ("Δ=100", SsspConfig::del(100)),
        ("Δ=∞ (B-Ford)", SsspConfig::bellman_ford()),
        ("ρ=1k", SsspConfig::rho(1024)),
        ("ρ=4k", SsspConfig::rho(4096)),
        ("radius ρ=4", SsspConfig::radius(4)),
        ("radius ρ=8", SsspConfig::radius(8)),
    ];

    for p in weak_scaling_ranks() {
        let scale = spr + (p as f64).log2() as u32;
        let g = build_family(Family::Rmat1, scale, 1);
        let dg = Arc::new(DistGraph::build(&g, p, 4));
        let roots = pick_roots(&g, 2, 17);

        let mut rows = Vec::new();
        for (name, cfg) in &sweep {
            let (mut phases, mut buckets, mut relaxations) = (0.0f64, 0.0f64, 0u64);
            for &root in &roots {
                let (_, trace) = run_trace(&dg, root, cfg, &model, backend);
                let (ph, b, r) = series(&trace);
                phases += ph as f64;
                buckets += b as f64;
                relaxations += r;
            }
            let k = roots.len() as f64;
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", phases / k),
                format!("{:.1}", buckets / k),
                human(relaxations as f64 / k),
            ]);
        }
        print_table(
            &format!(
                "Fig 9 — RMAT-1 stepping sweep, scale {scale}, {p} ranks, {} roots, {} backend",
                roots.len(),
                backend.name()
            ),
            &["policy", "phases", "buckets", "relaxations"],
            &rows,
        );
    }
    println!("\nPaper expectation: Δ in [10, 50] best; Δ=1 and Δ=∞ markedly worse.");
    println!("Window policies (ρ, radius) trade more relaxations for fewer epochs.");
}
