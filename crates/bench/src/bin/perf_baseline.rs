//! Recorded performance baseline: wall time, allocations per superstep,
//! message traffic and simulated time of the engine — pooled vs
//! fresh-allocation buffers, plus the real-thread backend's wall time on
//! the same roots.
//!
//! Usage:
//!   cargo run -p sssp-bench --bin perf_baseline [--release] --
//!       [--scale N] [--ranks N] [--threads N] [--roots N]
//!       [--out PATH] [--check PATH]
//!
//! Writes a `BENCH_sssp.json` document (see `sssp_bench::baseline`) with
//! one `"scale_N"` block per measured scale, each holding one record per
//! engine mode; a run re-records only its own scale's block and preserves
//! the others. `--check PATH` additionally compares the freshly measured
//! pooled and threaded runs against the committed baseline's block for
//! the same scale and exits nonzero when wall time or allocations per
//! superstep regress by more than `SSSP_PERF_TOLERANCE` (default 0.25,
//! i.e. 25%).
//!
//! The binary installs a counting global allocator, so its allocation
//! numbers are exact (every heap allocation and reallocation on every
//! thread), not sampled.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering}; // sssp-lint: allow(no-shared-state): the counting allocator must observe every thread's allocations; the engine itself stays rank-sequential.
use std::sync::Arc;
use std::time::Instant;

use sssp_bench::baseline::{
    extract_number, scale_block, upsert_scale_block, PerfBaseline, PerfRecord, TelemetryRecord,
    ThreadedRecord,
};
use sssp_bench::{build_family, pick_roots, print_table, Family};
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::run_sssp;
use sssp_core::{threaded_delta_stepping, threaded_delta_stepping_traced, RunTrace};
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

static ALLOCS: AtomicU64 = AtomicU64::new(0); // sssp-lint: allow(no-shared-state): allocator counter, written from any thread by design.
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0); // sssp-lint: allow(no-shared-state): allocator counter, written from any thread by design.

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn measure(
    dg: &DistGraph,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> PerfRecord {
    // One warmup run outside the measured window: first-touch effects
    // (lazy page faults, branch history) hit both modes equally.
    let _ = run_sssp(dg, roots[0], cfg, model);

    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let mut supersteps = 0u64;
    let mut msgs = 0u64;
    let mut remote_msgs = 0u64;
    let mut coalesced_msgs = 0u64;
    let mut sim = 0.0;
    let mut gteps = 0.0;
    let t0 = Instant::now();
    for &root in roots {
        let out = run_sssp(dg, root, cfg, model);
        supersteps += out.stats.supersteps();
        msgs += out.stats.comm.total_msgs();
        remote_msgs += out.stats.comm.total_remote_msgs();
        coalesced_msgs += out.stats.comm.total_coalesced_msgs();
        sim += out.stats.ledger.total_s();
        gteps += out.stats.gteps(dg.m_input_undirected);
    }
    let mut wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - b0;

    // Wall time is the one noisy metric (allocation counts are exact and
    // deterministic): take the minimum over a few repetitions so a single
    // scheduler hiccup cannot trip the regression gate.
    for _ in 0..2 {
        let t = Instant::now();
        for &root in roots {
            let _ = run_sssp(dg, root, cfg, model);
        }
        wall_ms = wall_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let k = roots.len() as f64;
    // Wall-clock GTEPS on the same traversed-edge denominator as the
    // simulated figure (and as the threaded backend's): undirected input
    // edges over measured wall seconds per root.
    let per_run_s = wall_ms / 1e3 / k;
    PerfRecord {
        wall_ms,
        allocs,
        alloc_bytes,
        supersteps,
        msgs,
        remote_msgs,
        coalesced_msgs,
        simulated_s: sim / k,
        gteps: gteps / k,
        gteps_wall: sssp_comm::cost::teps(dg.m_input_undirected, per_run_s) / 1e9,
    }
}

/// Time the real-thread backend on the same roots. Its GTEPS are
/// wall-clock (there is no cost-model ledger on this backend) over the
/// same traversed-edge denominator as the simulated records, so the
/// comparable simulated figure is `gteps_wall`, never the simulated
/// `gteps`.
fn measure_threaded(
    dg: &Arc<DistGraph>,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
    pooled_wall_ms: f64,
) -> ThreadedRecord {
    let _ = threaded_delta_stepping(dg, roots[0], cfg, model);

    let mut relax_local_msgs = 0u64;
    let mut relax_remote_msgs = 0u64;
    let mut coalesced_msgs = 0u64;
    let t0 = Instant::now();
    for &root in roots {
        let out = threaded_delta_stepping(dg, root, cfg, model);
        relax_local_msgs += out.relax_local_msgs;
        relax_remote_msgs += out.relax_remote_msgs;
        coalesced_msgs += out.coalesced_msgs;
    }
    let mut wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for _ in 0..2 {
        let t = Instant::now();
        for &root in roots {
            let _ = threaded_delta_stepping(dg, root, cfg, model);
        }
        wall_ms = wall_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let per_run_s = wall_ms / 1e3 / roots.len() as f64;
    ThreadedRecord {
        wall_ms,
        gteps: sssp_comm::cost::teps(dg.m_input_undirected, per_run_s) / 1e9,
        speedup_vs_pooled: pooled_wall_ms / wall_ms.max(f64::MIN_POSITIVE),
        relax_local_msgs,
        relax_remote_msgs,
        coalesced_msgs,
    }
}

/// Trace the first root on both backends, diff the traces, and fold the
/// threaded trace's headline counters into the telemetry block. A trace
/// divergence is reported (and recorded as `backends_agree: 0`) but does
/// not abort the measurement — the `--check` gate fails on it instead.
fn measure_telemetry(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> TelemetryRecord {
    let simulated = run_sssp(dg, root, cfg, model);
    let trace_sim = RunTrace::from_run_stats(&simulated.stats, "simulated");
    let t0 = Instant::now();
    let (_, trace_thr) = threaded_delta_stepping_traced(dg, root, cfg, model);
    let wall_measured_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let diffs = trace_sim.diff(&trace_thr);
    if !diffs.is_empty() {
        eprintln!(
            "telemetry: simulated and threaded traces diverged:\n{}",
            diffs.join("\n")
        );
    }
    TelemetryRecord {
        backends_agree: u8::from(diffs.is_empty()),
        buckets: trace_thr.buckets.len() as u64,
        supersteps: trace_thr.supersteps,
        local_msgs: trace_thr.local_msgs,
        remote_msgs: trace_thr.remote_msgs,
        coalesced_msgs: trace_thr.coalesced_msgs,
        wall_short_ns: trace_thr.timings.short_ns,
        wall_long_push_ns: trace_thr.timings.long_push_ns,
        wall_long_pull_ns: trace_thr.timings.long_pull_ns,
        wall_bf_ns: trace_thr.timings.bf_ns,
        wall_measured_ns,
    }
}

/// Gate the freshly measured `current` document against one scale's block
/// of the committed baseline (slice the committed document with
/// [`scale_block`] first — the extractors here find first matches).
fn check_against(committed: &str, current: &PerfBaseline) -> Result<(), String> {
    let tol: f64 = std::env::var("SSSP_PERF_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let mut problems = Vec::new();
    let mut gate = |name: &str, base: Option<f64>, now: f64| match base {
        Some(b) if b > 0.0 && now > b * (1.0 + tol) => {
            problems.push(format!(
                "{name} regressed: {now:.3} vs baseline {b:.3} (+{:.0}% > {:.0}% tolerance)",
                100.0 * (now / b - 1.0),
                100.0 * tol
            ));
        }
        Some(_) => {}
        None => problems.push(format!("committed baseline is missing {name}")),
    };
    gate(
        "pooled.wall_ms",
        extract_number(committed, "pooled", "wall_ms"),
        current.pooled.wall_ms,
    );
    gate(
        "pooled.allocs_per_superstep",
        extract_number(committed, "pooled", "allocs_per_superstep"),
        current.pooled.allocs_per_superstep(),
    );
    gate(
        "threaded.wall_ms",
        extract_number(committed, "threaded", "wall_ms"),
        current.threaded.wall_ms,
    );
    // Remote-message drift gate: wire traffic is deterministic for a fixed
    // workload, so it may not drift in *either* direction past the
    // tolerance — fewer messages than the baseline is as suspicious as
    // more (it means the accounting changed, not the machine).
    let mut drift = |name: &str, base: Option<f64>, now: f64| match base {
        Some(b) if b > 0.0 && (now / b - 1.0).abs() > tol => {
            problems.push(format!(
                "{name} drifted: {now:.0} vs baseline {b:.0} ({:+.1}%, tolerance {:.0}%)",
                100.0 * (now / b - 1.0),
                100.0 * tol
            ));
        }
        Some(_) => {}
        None => problems.push(format!("committed baseline is missing {name}")),
    };
    drift(
        "pooled.remote_msgs",
        extract_number(committed, "pooled", "remote_msgs"),
        current.pooled.remote_msgs as f64,
    );
    drift(
        "telemetry.remote_msgs",
        extract_number(committed, "telemetry", "remote_msgs"),
        current.telemetry.remote_msgs as f64,
    );
    match extract_number(committed, "telemetry", "backends_agree") {
        Some(b) => {
            if b != 1.0 {
                problems.push(format!(
                    "committed baseline records backends_agree = {b} (expected 1)"
                ));
            }
        }
        None => problems.push("committed baseline is missing telemetry.backends_agree".to_string()),
    }
    if current.telemetry.backends_agree != 1 {
        problems.push("simulated and threaded traces diverged in this run".to_string());
    }
    // Wall-clock telemetry sanity: gates on the CURRENT run only (the
    // committed baseline's wall numbers are machine-dependent and not
    // comparable, but a freshly measured run must be self-consistent).
    problems.extend(current.telemetry.wall_problems());
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn main() {
    // Pin the worker count unless the caller chose one: the allocation
    // numbers in a recorded baseline must not depend on the machine's
    // core count.
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }

    let mut scale = 10u32;
    let mut ranks = 4usize;
    let mut threads = 4usize;
    let mut nroots = 3usize;
    let mut out_path = "BENCH_sssp.json".to_string();
    let mut check_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{what} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--scale" => scale = take("--scale").parse().unwrap_or(scale),
            "--ranks" => ranks = take("--ranks").parse().unwrap_or(ranks),
            "--threads" => threads = take("--threads").parse().unwrap_or(threads),
            "--roots" => nroots = take("--roots").parse().unwrap_or(nroots),
            "--out" => out_path = take("--out"),
            "--check" => check_path = Some(take("--check")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let family = Family::Rmat2;
    let model = MachineModel::bgq_like();
    let g = build_family(family, scale, 1);
    let dg = Arc::new(DistGraph::build(&g, ranks, threads));
    let roots = pick_roots(&g, nroots, 23);
    let cfg = SsspConfig::opt(25);

    let fresh = measure(&dg, &roots, &cfg.clone().with_pooled_buffers(false), &model);
    let pooled = measure(&dg, &roots, &cfg, &model);
    let threaded = measure_threaded(&dg, &roots, &cfg, &model, pooled.wall_ms);
    let telemetry = measure_telemetry(&dg, roots[0], &cfg, &model);

    let doc = PerfBaseline {
        family: family.name().to_string(),
        scale,
        ranks,
        threads,
        roots: roots.len(),
        gteps_edges: dg.m_input_undirected,
        pooled,
        fresh,
        threaded,
        telemetry,
    };

    let mut rows: Vec<Vec<String>> = [("pooled", &doc.pooled), ("fresh", &doc.fresh)]
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                format!("{:.2}", r.wall_ms),
                r.allocs.to_string(),
                format!("{:.1}", r.allocs_per_superstep()),
                r.alloc_bytes.to_string(),
                r.supersteps.to_string(),
                format!("{:.3e}", r.simulated_s),
                format!("{:.4}", r.gteps),
                format!("{:.4}", r.gteps_wall),
            ]
        })
        .collect();
    rows.push(vec![
        "threaded".to_string(),
        format!("{:.2}", doc.threaded.wall_ms),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.4}", doc.threaded.gteps),
    ]);
    print_table(
        &format!(
            "perf baseline — {} scale {scale}, p={ranks}×{threads}",
            family.name()
        ),
        &[
            "mode",
            "wall ms",
            "allocs",
            "allocs/superstep",
            "alloc bytes",
            "supersteps",
            "sim s",
            "GTEPS (sim)",
            "GTEPS (wall)",
        ],
        &rows,
    );
    if doc.pooled.allocs > 0 {
        println!(
            "allocation reduction: {:.1}x fewer allocations, {:.1}x fewer bytes (pooled vs fresh)",
            doc.fresh.allocs as f64 / doc.pooled.allocs as f64,
            doc.fresh.alloc_bytes as f64 / doc.pooled.alloc_bytes.max(1) as f64,
        );
    }
    println!(
        "threaded speedup vs pooled simulated: {:.2}x wall",
        doc.threaded.speedup_vs_pooled
    );
    println!(
        "coalescing savings: {} of {} relax msgs removed ({:.1}%) on the threaded backend",
        doc.threaded.coalesced_msgs,
        doc.threaded.relax_msgs_total() + doc.threaded.coalesced_msgs,
        100.0 * doc.threaded.coalesced_fraction(),
    );
    println!(
        "telemetry: backends {} — {} buckets, {} supersteps, {} local + {} remote msgs traced",
        if doc.telemetry.backends_agree == 1 {
            "agree"
        } else {
            "DIVERGED"
        },
        doc.telemetry.buckets,
        doc.telemetry.supersteps,
        doc.telemetry.local_msgs,
        doc.telemetry.remote_msgs,
    );
    let wall = &doc.telemetry;
    println!(
        "telemetry wall clock (threaded, slowest-rank critical path): \
         {:.2} ms short, {:.2} ms long-push, {:.2} ms long-pull, {:.2} ms BF tail",
        wall.wall_short_ns as f64 / 1e6,
        wall.wall_long_push_ns as f64 / 1e6,
        wall.wall_long_pull_ns as f64 / 1e6,
        wall.wall_bf_ns as f64 / 1e6,
    );

    // Re-record only this scale's block; other scales' blocks in an
    // existing document survive verbatim.
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let json = upsert_scale_block(&existing, scale, &doc.to_json());
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} (scale_{scale} block)");

    if let Some(path) = check_path {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read committed baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let Some(block) = scale_block(&committed, scale) else {
            eprintln!("committed baseline {path} has no scale_{scale} block");
            std::process::exit(1);
        };
        match check_against(&block, &doc) {
            Ok(()) => println!("perf check against {path} (scale_{scale}): OK"),
            Err(msg) => {
                eprintln!("perf check against {path} (scale_{scale}) FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}
