//! Compare two run-telemetry traces bucket-by-bucket, or prove to CI that
//! both backends emit the same trace on the bench workload.
//!
//! Usage:
//!   cargo run -p sssp-bench --bin trace_diff -- A.json B.json
//!       Diff two exported trace files (see `RunTrace::to_json`). Exits
//!       nonzero and lists every differing field when the traces disagree
//!       (timing fields and backend names are ignored by design).
//!
//!   cargo run -p sssp-bench --bin trace_diff -- --self-check
//!       Run the simulated and threaded engines over the bench graph
//!       across a config sweep (heuristic, both Always policies, a Forced
//!       sequence, the hybrid tail), push each trace through the JSON
//!       exporter and back, and diff the pair. This is the CI smoke for
//!       the unified telemetry layer.

use std::sync::Arc;

use sssp_bench::{build_family, pick_roots, Family};
use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_core::{threaded_delta_stepping_traced, RunTrace};
use sssp_dist::DistGraph;

fn load(path: &str) -> RunTrace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    RunTrace::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a run trace: {e}");
        std::process::exit(2);
    })
}

fn self_check() -> i32 {
    let scale = 10;
    let ranks = 4;
    let g = build_family(Family::Rmat2, scale, 1);
    let dg = Arc::new(DistGraph::build(&g, ranks, 4));
    let root = pick_roots(&g, 1, 23)[0];
    let model = MachineModel::bgq_like();

    let sweep: Vec<(&str, SsspConfig)> = vec![
        ("OPT-25 (heuristic)", SsspConfig::opt(25)),
        (
            "Del-15 push",
            SsspConfig::del(15).with_direction(DirectionPolicy::AlwaysPush),
        ),
        (
            "Prune-15 pull",
            SsspConfig::prune(15).with_direction(DirectionPolicy::AlwaysPull),
        ),
        (
            "Prune-20 forced",
            SsspConfig::prune(20).with_direction(DirectionPolicy::Forced(vec![
                LongPhaseMode::Push,
                LongPhaseMode::Pull,
                LongPhaseMode::Push,
            ])),
        ),
        ("Bellman-Ford tail", SsspConfig::bellman_ford()),
    ];

    let mut failures = 0;
    for (name, cfg) in &sweep {
        let simulated = run_sssp(&dg, root, cfg, &model);
        let (threaded, trace_thr) = threaded_delta_stepping_traced(&dg, root, cfg, &model);
        if threaded.distances != simulated.distances {
            eprintln!("{name}: DISTANCES diverged between backends");
            failures += 1;
            continue;
        }
        let trace_sim = RunTrace::from_run_stats(&simulated.stats, "simulated");
        // Round both traces through the JSON exporter so the smoke also
        // covers the export/import path CI consumers rely on.
        let sim = RunTrace::from_json(&trace_sim.to_json()).expect("simulated trace JSON");
        let thr = RunTrace::from_json(&trace_thr.to_json()).expect("threaded trace JSON");
        let diffs = sim.diff(&thr);
        if diffs.is_empty() {
            println!(
                "{name}: OK ({} buckets, {} supersteps, {} remote msgs)",
                thr.buckets.len(),
                thr.supersteps,
                thr.remote_msgs
            );
        } else {
            eprintln!("{name}: traces diverged:");
            for d in &diffs {
                eprintln!("  {d}");
            }
            failures += 1;
        }
    }
    if failures == 0 {
        println!("trace self-check: all {} configs agree", sweep.len());
        0
    } else {
        eprintln!(
            "trace self-check: {failures} of {} configs diverged",
            sweep.len()
        );
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.as_slice() {
        [flag] if flag == "--self-check" => self_check(),
        [a, b] => {
            let ta = load(a);
            let tb = load(b);
            let diffs = ta.diff(&tb);
            if diffs.is_empty() {
                println!("traces agree ({} vs {})", ta.backend, tb.backend);
                0
            } else {
                eprintln!("traces differ ({} vs {}):", ta.backend, tb.backend);
                for d in &diffs {
                    eprintln!("  {d}");
                }
                1
            }
        }
        _ => {
            eprintln!("usage: trace_diff A.json B.json | trace_diff --self-check");
            2
        }
    };
    std::process::exit(code);
}
