//! Fig. 10 — the full RMAT-1 analysis: (a) GTEPS of Del-25 / Prune-25 /
//! OPT-25 under weak scaling, (b) time breakdown (BktTime vs OthrTime),
//! (c) relaxations per thread, (d) bucket counts, (e) OPT without load
//! balancing for several Δ, (f) LB-OPT restoring scaling.
//!
//! Paper shapes to reproduce: pruning ≈ 5× on relaxations and relaxation
//! time; hybridization collapses the bucket count to ≤ 5 and erases BktTime;
//! OPT without LB scales poorly on this skewed family while LB-OPT scales
//! nearly perfectly (2–8× gain).

fn main() {
    sssp_bench::family_analysis(sssp_bench::Family::Rmat1, 25, 64);
}
