//! Fig. 10 — the full RMAT-1 analysis: (a) relaxations of Del-25 /
//! Prune-25 / OPT-25 under weak scaling, (b)–(d) phase/superstep/bucket
//! breakdown and relaxations per thread at the largest configuration,
//! (e) OPT's Δ sensitivity, (f) the per-thread load imbalance the §III-E
//! balancer removes.
//!
//! Paper shapes to reproduce: pruning ≈ 5× on relaxations; hybridization
//! collapses the bucket count to ≤ 5 and erases the bucket-scan
//! supersteps; the skewed degree profile leaves a large max/mean thread
//! imbalance without load balancing, which the auto-π balancer flattens.
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! every column is trace-derived or structural, so the tables are
//! identical on both.

fn main() {
    sssp_bench::family_analysis(
        sssp_bench::Family::Rmat1,
        25,
        64,
        sssp_bench::backend_from_args(),
    );
}
