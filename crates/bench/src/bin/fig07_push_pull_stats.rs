//! Fig. 7 — per-bucket push vs pull statistics: the receiver-side
//! classification of long-edge push messages (self / backward / forward)
//! against the request volume the pull model would move instead.
//!
//! Because push and pull produce identical post-epoch states, running the
//! same configuration once forced-push and once forced-pull yields the two
//! columns of the paper's figure for every bucket.
//!
//! Paper shape to reproduce: early dense buckets favor push (requests dwarf
//! the push volume); later sparse buckets favor pull (most push messages
//! are self/backward, i.e. redundant).
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! the unified telemetry layer makes the figure identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, SsspConfig};
use sssp_dist::DistGraph;

fn main() {
    let backend = backend_from_args();
    let scale = scale_per_rank() + 4;
    let ranks = 16;
    let model = MachineModel::bgq_like();
    let g = build_family(Family::Rmat1, scale, 1);
    let dg = Arc::new(DistGraph::build(&g, ranks, 4));
    let root = pick_roots(&g, 1, 3)[0];

    let base = SsspConfig::prune(25).with_hybrid(None);
    let (push_dist, push) = run_trace(
        &dg,
        root,
        &base.clone().with_direction(DirectionPolicy::AlwaysPush),
        &model,
        backend,
    );
    let (pull_dist, pull) = run_trace(
        &dg,
        root,
        &base.clone().with_direction(DirectionPolicy::AlwaysPull),
        &model,
        backend,
    );
    let (_, heur) = run_trace(&dg, root, &base, &model, backend);
    assert_eq!(push_dist, pull_dist);

    let mut rows = Vec::new();
    for (i, pr) in push.buckets.iter().enumerate() {
        let pl = &pull.buckets[i];
        assert_eq!(pr.bucket, pl.bucket);
        let push_vol = pr.self_edges + pr.backward_edges + pr.forward_edges;
        let pull_vol = pl.requests + pl.responses;
        let chosen = heur
            .buckets
            .get(i)
            .map(|r| format!("{:?}", r.mode))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            pr.bucket.to_string(),
            human(pr.self_edges as f64),
            human(pr.backward_edges as f64),
            human(pr.forward_edges as f64),
            human(push_vol as f64),
            human(pl.requests as f64),
            human(pull_vol as f64),
            if pull_vol < push_vol { "pull" } else { "push" }.into(),
            chosen,
        ]);
    }
    print_table(
        &format!(
            "Fig 7 — push vs pull per bucket, RMAT-1 scale {scale}, Δ=25 ({} backend)",
            backend.name()
        ),
        &[
            "bucket",
            "self",
            "backward",
            "forward",
            "push msgs",
            "requests",
            "pull msgs",
            "cheaper",
            "heuristic chose",
        ],
        &rows,
    );
}
