//! §IV-G — validation of the push/pull decision heuristic.
//!
//! For each configuration the exhaustive routine enumerates every possible
//! push/pull decision sequence over the buckets the hybrid algorithm
//! processes (2^k sequences; hybridization keeps k ≤ ~5), measures the
//! simulated running time of each, and compares the heuristic-driven run
//! against the best sequence.
//!
//! Paper result to reproduce: the heuristic picks the best (or within noise
//! of best) sequence on every configuration tested.

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_dist::DistGraph;

fn main() {
    let model = MachineModel::bgq_like();
    let scale = scale_per_rank() + 2;
    let num_roots = 4;
    let mut total_cases = 0;
    let mut optimal_cases = 0;
    let mut rows = Vec::new();

    for family in [Family::Rmat1, Family::Rmat2] {
        for p in [4usize, 8] {
            let g = build_family(family, scale, 1);
            let dg = DistGraph::build(&g, p, 4);
            for root in pick_roots(&g, num_roots, 41) {
                let base = SsspConfig::opt(25);
                let heur = run_sssp(&dg, root, &base, &model);
                let k = heur.stats.bucket_records.len();
                assert!(k <= 16, "too many buckets ({k}) for exhaustive search");

                // Enumerate all 2^k forced sequences.
                let mut best_time = f64::INFINITY;
                let mut best_seq = 0usize;
                for mask in 0..(1usize << k) {
                    let seq: Vec<LongPhaseMode> = (0..k)
                        .map(|i| {
                            if mask >> i & 1 == 1 {
                                LongPhaseMode::Pull
                            } else {
                                LongPhaseMode::Push
                            }
                        })
                        .collect();
                    let cfg = base.clone().with_direction(DirectionPolicy::Forced(seq));
                    let out = run_sssp(&dg, root, &cfg, &model);
                    assert_eq!(out.distances, heur.distances, "forced run changed results");
                    let t = out.stats.ledger.total_s();
                    if t < best_time {
                        best_time = t;
                        best_seq = mask;
                    }
                }
                let heur_time = heur.stats.ledger.total_s();
                let heur_mask: usize = heur
                    .stats
                    .bucket_records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| usize::from(r.mode == LongPhaseMode::Pull) << i)
                    .sum();
                let gap = (heur_time - best_time) / best_time * 100.0;
                let optimal = heur_mask == best_seq || gap <= 1.0;
                total_cases += 1;
                optimal_cases += usize::from(optimal);
                rows.push(vec![
                    family.name().into(),
                    p.to_string(),
                    root.to_string(),
                    k.to_string(),
                    format!("{heur_mask:0k$b}", k = k),
                    format!("{best_seq:0k$b}", k = k),
                    format!("{gap:.2}%"),
                    if optimal { "yes" } else { "NO" }.into(),
                ]);
            }
        }
    }
    print_table(
        &format!("§IV-G — heuristic vs exhaustive 2^k decision sequences (scale {scale})"),
        &[
            "family",
            "ranks",
            "root",
            "buckets",
            "heuristic (1=pull)",
            "best",
            "time gap vs best",
            "near-optimal",
        ],
        &rows,
    );
    println!("\n{optimal_cases}/{total_cases} configurations near-optimal (paper: all optimal).");
}
