//! Figs. 5–6 — the worked example of the pull mechanism: a root joined to a
//! clique whose members each own leaf vertices. With Δ = 5 the epoch that
//! settles the clique is far cheaper under pull (leaves request along their
//! single edge) than under push (every clique vertex re-relaxes its whole
//! neighborhood).
//!
//! Paper shape to reproduce: per-iteration relaxation-message counts where
//! the middle iteration drops sharply when switched from push to pull
//! (30 → 10 in the paper's instance).
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! the unified telemetry layer makes the figure identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use sssp_core::RunTrace;
use sssp_dist::DistGraph;
use sssp_graph::gen::PullExample;
use sssp_graph::CsrBuilder;

fn main() {
    let backend = backend_from_args();
    let ex = PullExample::default();
    let g = CsrBuilder::new().build(&ex.build());
    let dg = Arc::new(DistGraph::build(&g, 4, 1));
    let model = MachineModel::bgq_like();

    let run = |decisions: Vec<LongPhaseMode>| {
        let cfg = SsspConfig::del(5)
            .with_ios(false)
            .with_direction(DirectionPolicy::Forced(decisions));
        run_trace(&dg, 0, &cfg, &model, backend)
    };

    use LongPhaseMode::*;
    let (push_dist, push) = run(vec![Push, Push, Push]);
    let (pull_dist, pull_mid) = run(vec![Push, Pull, Push]);
    assert_eq!(push_dist, pull_dist, "modes must agree");

    let total = |t: &RunTrace| -> u64 { t.phases.iter().map(|r| r.relaxations).sum() };
    for (name, trace) in [("all-push", &push), ("pull at clique bucket", &pull_mid)] {
        let rows: Vec<Vec<String>> = trace
            .phases
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    i.to_string(),
                    r.bucket.to_string(),
                    format!("{:?}", r.kind),
                    r.relaxations.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig 6 — {name} (total {} relaxations, {} backend)",
                total(trace),
                backend.name()
            ),
            &["iter", "bucket", "kind", "relax msgs"],
            &rows,
        );
    }
    println!(
        "\nPush total {} vs push+pull total {} — pull wins the clique epoch.",
        total(&push),
        total(&pull_mid)
    );
}
