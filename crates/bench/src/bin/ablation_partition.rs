//! Ablation: vertex distribution strategy vs id–degree correlation.
//!
//! The Graph 500 generator scrambles vertex ids precisely so that block
//! distribution stays balanced; without scrambling, R-MAT piles every hub
//! onto rank 0. This harness quantifies that interaction on the simulated
//! machine: block/cyclic × scrambled/raw ids, plus the π-threshold sweep of
//! the intra-node balancer (the paper's "robust heuristics to determine the
//! thresholds π and π′" whose details it omits).

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::{IntraBalance, SsspConfig};
use sssp_dist::DistGraph;
use sssp_graph::rmat::RmatGenerator;
use sssp_graph::CsrBuilder;

fn main() {
    let scale = scale_per_rank() + 3;
    let ranks = 16;
    let model = MachineModel::bgq_like();

    // Part 1: distribution strategy.
    let mut rows = Vec::new();
    for (ids, permute) in [("scrambled", true), ("raw", false)] {
        let el = RmatGenerator::new(Family::Rmat1.params(), scale, EDGE_FACTOR)
            .seed(1)
            .permute(permute)
            .generate_weighted(W_MAX);
        let csr = CsrBuilder::new().build(&el);
        let roots = pick_roots(&csr, 2, 7);
        for (layout, dg) in [
            ("block", DistGraph::build(&csr, ranks, 64)),
            ("cyclic", DistGraph::build_cyclic(&csr, ranks, 64)),
        ] {
            let agg = run_aggregate(&dg, &roots, &SsspConfig::opt(25), &model);
            // Edge-ownership imbalance: max rank edges / mean rank edges.
            let per_rank: Vec<usize> = dg.locals.iter().map(|l| l.num_directed_edges()).collect();
            let max = *per_rank.iter().max().unwrap() as f64;
            let mean = per_rank.iter().sum::<usize>() as f64 / ranks as f64;
            rows.push(vec![
                ids.into(),
                layout.into(),
                format!("{:.2}", max / mean),
                format!("{:.3}", agg.gteps),
            ]);
        }
    }
    print_table(
        &format!("Partition ablation — RMAT-1 scale {scale}, {ranks} ranks, OPT-25"),
        &["vertex ids", "layout", "edge imbalance", "GTEPS"],
        &rows,
    );
    println!("Expectation: raw ids + block layout concentrate hub edges and lose GTEPS.");

    // Part 2: π-threshold sweep for the intra-node balancer.
    let csr = build_family(Family::Rmat1, scale, 1);
    let dg = DistGraph::build(&csr, ranks, 64);
    let roots = pick_roots(&csr, 2, 7);
    let mut rows = Vec::new();
    for pi in [0u32, 32, 64, 128, 512, 4096, u32::MAX] {
        let cfg = SsspConfig::opt(25).with_intra_balance(if pi == u32::MAX {
            IntraBalance::Off
        } else {
            IntraBalance::Threshold(pi)
        });
        let agg = run_aggregate(&dg, &roots, &cfg, &model);
        rows.push(vec![
            if pi == u32::MAX {
                "off".into()
            } else {
                pi.to_string()
            },
            format!("{:.3}", agg.gteps),
        ]);
    }
    print_table(
        &format!("π-threshold sweep — RMAT-1 scale {scale}, {ranks} ranks, 64 threads"),
        &["π (heavy-vertex threshold)", "GTEPS"],
        &rows,
    );
    println!("Expectation: a broad plateau of good π values (the paper calls its choice robust).");
}
