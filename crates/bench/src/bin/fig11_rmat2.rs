//! Fig. 11 — the RMAT-2 analysis mirroring Fig. 10.
//!
//! Paper shapes to reproduce: pruning only halves the relaxations (the
//! degree distribution is milder, so push/pull differ less); hybridization
//! is the bigger win (≈ 20× fewer buckets); the flat degree profile keeps
//! the per-thread imbalance small even without the §III-E balancer, so
//! load balancing barely matters on this family.
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! every column is trace-derived or structural, so the tables are
//! identical on both.

fn main() {
    sssp_bench::family_analysis(
        sssp_bench::Family::Rmat2,
        40,
        64,
        sssp_bench::backend_from_args(),
    );
}
