//! Fig. 11 — the RMAT-2 analysis mirroring Fig. 10.
//!
//! Paper shapes to reproduce: pruning only halves the relaxations (the
//! degree distribution is milder, so push/pull differ less); hybridization
//! is the bigger win (≈ 20× fewer buckets, ≈ 3× overall); load balancing
//! barely matters, and OPT-40 edges out OPT-25.

fn main() {
    sssp_bench::family_analysis(sssp_bench::Family::Rmat2, 40, 64);
}
