//! Ablation: the IOS (inner/outer short edge) heuristic of §III-A.
//!
//! The paper reports that IOS "decreases the number of short edge
//! relaxations by about 10% on the benchmark graphs". This harness
//! measures exactly that quantity, per family and Δ, plus where the
//! deferred outer shorts end up.

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::DistGraph;

fn main() {
    let scale = scale_per_rank() + 4;
    let ranks = 16;
    let model = MachineModel::bgq_like();

    let mut rows = Vec::new();
    for family in [Family::Rmat1, Family::Rmat2] {
        let csr = build_family(family, scale, 1);
        let dg = DistGraph::build(&csr, ranks, 4);
        let roots = pick_roots(&csr, 2, 19);
        for delta in [10u32, 25, 40] {
            let base = run_aggregate(&dg, &roots, &SsspConfig::del(delta), &model);
            let ios = run_aggregate(&dg, &roots, &SsspConfig::del(delta).with_ios(true), &model);
            let short_base = base.last.stats.short_relaxations as f64;
            let short_ios = ios.last.stats.short_relaxations as f64;
            let outer = ios.last.stats.outer_short_relaxations as f64;
            rows.push(vec![
                family.name().into(),
                delta.to_string(),
                human(short_base),
                human(short_ios),
                format!("{:.1}%", (1.0 - short_ios / short_base) * 100.0),
                human(outer),
                format!("{:.1}%", (1.0 - (short_ios + outer) / short_base) * 100.0),
            ]);
        }
    }
    print_table(
        &format!("IOS ablation — scale {scale}, {ranks} ranks (last-root counts)"),
        &[
            "family",
            "Δ",
            "short relax (base)",
            "short relax (IOS)",
            "short saved",
            "deferred outer",
            "net saved",
        ],
        &rows,
    );
    println!("\nPaper (§III-A): short-edge relaxations decrease by about 10%.");
}
