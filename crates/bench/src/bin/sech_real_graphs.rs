//! §IV-H — the real-life social graph study.
//!
//! The SNAP graphs themselves (Friendster, Orkut, LiveJournal) are not
//! available offline, so scaled-down Chung–Lu stand-ins with matched
//! (n, m, power-law exponent) degree profiles are used instead — see
//! DESIGN.md's substitution table. `SSSP_BENCH_SOCIAL_SHRINK` (default
//! 1024) divides the published sizes.
//!
//! Paper shape to reproduce: OPT-40 ≈ 2× Del-40 on all three graphs.

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::DistGraph;
use sssp_graph::social::social_preset;
use sssp_graph::CsrBuilder;

fn main() {
    let shrink: usize = std::env::var("SSSP_BENCH_SOCIAL_SHRINK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let ranks = 16;
    let model = MachineModel::bgq_like();

    let mut rows = Vec::new();
    for name in ["friendster", "orkut", "livejournal"] {
        let gen = social_preset(name, shrink).expect("preset exists");
        let g = CsrBuilder::new().build(&gen.generate());
        let dg = DistGraph::build(&g, ranks, 4);
        let roots = pick_roots(&g, 4, 53);
        let del = run_aggregate(&dg, &roots, &SsspConfig::del(40), &model);
        let opt = run_aggregate(&dg, &roots, &SsspConfig::lb_opt(40), &model);
        rows.push(vec![
            name.to_string(),
            human(g.num_vertices() as f64),
            human(g.num_undirected_edges() as f64),
            format!("{:.3}", del.gteps),
            format!("{:.3}", opt.gteps),
            format!("{:.2}x", opt.gteps / del.gteps.max(1e-12)),
        ]);
    }
    print_table(
        &format!("§IV-H — social graphs (Chung–Lu stand-ins, 1/{shrink} scale), {ranks} ranks"),
        &[
            "graph",
            "vertices",
            "edges",
            "Del-40 GTEPS",
            "Opt-40 GTEPS",
            "speedup",
        ],
        &rows,
    );
    println!("\nPaper expectation: OPT ≈ 2× Del on every graph.");
}
