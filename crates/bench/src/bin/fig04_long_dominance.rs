//! Fig. 4 — phase-wise distribution of relaxations for Δ-stepping,
//! demonstrating that long-edge phases dominate short-edge phases.
//!
//! Paper shape to reproduce: within each epoch the single long phase
//! carries far more relaxations than the short phases combined, which is
//! what motivates pointing the pruning heuristic at long edges.
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! the unified telemetry layer makes the figure identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::instrument::PhaseKind;
use sssp_dist::DistGraph;

fn main() {
    let backend = backend_from_args();
    let scale = scale_per_rank() + 4;
    let ranks = 16;
    let g = build_family(Family::Rmat1, scale, 1);
    let dg = Arc::new(DistGraph::build(&g, ranks, 4));
    let root = pick_roots(&g, 1, 3)[0];
    let (_, trace) = run_trace(
        &dg,
        root,
        &SsspConfig::del(25),
        &MachineModel::bgq_like(),
        backend,
    );

    let mut rows = Vec::new();
    for (i, r) in trace.phases.iter().enumerate() {
        rows.push(vec![
            i.to_string(),
            r.bucket.to_string(),
            format!("{:?}", r.kind),
            r.relaxations.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Fig 4 — phase-wise relaxations, Del-25, RMAT-1 scale {scale} ({} backend)",
            backend.name()
        ),
        &["phase", "bucket", "kind", "relaxations"],
        &rows,
    );

    let short: u64 = trace
        .phases
        .iter()
        .filter(|r| r.kind == PhaseKind::Short)
        .map(|r| r.relaxations)
        .sum();
    let long: u64 = trace
        .phases
        .iter()
        .filter(|r| r.kind == PhaseKind::LongPush || r.kind == PhaseKind::LongPull)
        .map(|r| r.relaxations)
        .sum();
    println!(
        "\nTotals: short phases {} | long phases {} | long/short ratio {:.2}",
        human(short as f64),
        human(long as f64),
        long as f64 / short.max(1) as f64
    );
    println!("Paper expectation: long phases dominate (ratio > 1).");
}
