//! Fig. 8 — maximum degree vs graph scale for the two R-MAT families.
//!
//! Paper shape to reproduce: both families keep average degree 32 while the
//! maximum degree grows with scale, RMAT-1's orders of magnitude faster than
//! RMAT-2's (2.4M vs 31K at scale 28). The gap drives all the load-balancing
//! machinery of §III-E.

use sssp_bench::*;
use sssp_graph::stats::degree_stats;

fn main() {
    let lo = scale_per_rank();
    let hi = lo + 6;
    let mut rows = Vec::new();
    for scale in lo..=hi {
        let s1 = degree_stats(&build_family(Family::Rmat1, scale, 1));
        let s2 = degree_stats(&build_family(Family::Rmat2, scale, 1));
        rows.push(vec![
            scale.to_string(),
            human(s1.max_degree as f64),
            human(s2.max_degree as f64),
            format!("{:.1}", s1.avg_degree),
            format!("{:.1}", s2.avg_degree),
            format!("{:.2}", s1.top1pct_edge_share),
            format!("{:.2}", s2.top1pct_edge_share),
        ]);
    }
    print_table(
        "Fig 8 — maximum degree vs scale (avg degree fixed at 32 directed edges)",
        &[
            "scale",
            "RMAT-1 max deg",
            "RMAT-2 max deg",
            "RMAT-1 avg",
            "RMAT-2 avg",
            "RMAT-1 top1% share",
            "RMAT-2 top1% share",
        ],
        &rows,
    );
    println!("\nPaper expectation: RMAT-1 max degree ≫ RMAT-2, gap widening with scale.");
}
