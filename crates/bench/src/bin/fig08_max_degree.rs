//! Fig. 8 — maximum degree vs graph scale for the two R-MAT families.
//!
//! Paper shape to reproduce: both families keep average degree 32 while the
//! maximum degree grows with scale, RMAT-1's orders of magnitude faster than
//! RMAT-2's (2.4M vs 31K at scale 28). The gap drives all the load-balancing
//! machinery of §III-E.
//!
//! Besides the degree statistics, each scale also runs Δ-stepping from one
//! root on both families and reads the largest single-superstep send
//! volume off the telemetry trace — the per-superstep traffic burst the
//! degree skew ultimately turns into hot spots at scale.
//!
//! `--backend simulated|threaded` picks the engine for those runs
//! (default simulated); the trace-derived columns are identical on both.

use std::sync::Arc;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::DistGraph;
use sssp_graph::stats::degree_stats;

fn main() {
    let backend = backend_from_args();
    let lo = scale_per_rank();
    let hi = lo + 6;
    let ranks = 4;
    let model = MachineModel::bgq_like();
    let cfg = SsspConfig::del(25);
    let mut rows = Vec::new();
    for scale in lo..=hi {
        let g1 = build_family(Family::Rmat1, scale, 1);
        let g2 = build_family(Family::Rmat2, scale, 1);
        let s1 = degree_stats(&g1);
        let s2 = degree_stats(&g2);

        // One traced Δ-stepping run per family: the max per-superstep send
        // volume tracks the hub concentration the degree columns predict.
        let burst = |g: &sssp_graph::Csr| {
            let dg = Arc::new(DistGraph::build(g, ranks, 4));
            let root = pick_roots(g, 1, 61)[0];
            let (_, trace) = run_trace(&dg, root, &cfg, &model, backend);
            trace.max_step_send_bytes
        };
        let (b1, b2) = (burst(&g1), burst(&g2));

        rows.push(vec![
            scale.to_string(),
            human(s1.max_degree as f64),
            human(s2.max_degree as f64),
            format!("{:.1}", s1.avg_degree),
            format!("{:.1}", s2.avg_degree),
            format!("{:.2}", s1.top1pct_edge_share),
            format!("{:.2}", s2.top1pct_edge_share),
            human(b1 as f64),
            human(b2 as f64),
        ]);
    }
    print_table(
        &format!(
            "Fig 8 — maximum degree vs scale (avg degree 32 directed edges), {} backend",
            backend.name()
        ),
        &[
            "scale",
            "RMAT-1 max deg",
            "RMAT-2 max deg",
            "RMAT-1 avg",
            "RMAT-2 avg",
            "RMAT-1 top1% share",
            "RMAT-2 top1% share",
            "RMAT-1 burst B",
            "RMAT-2 burst B",
        ],
        &rows,
    );
    println!("\nPaper expectation: RMAT-1 max degree ≫ RMAT-2, gap widening with scale.");
    println!("The burst columns show each family's largest single-superstep send volume.");
}
