//! Serving-layer baseline: queries/sec of the concurrent scheduler over a
//! resident graph, plus the structural gates the serving story depends on
//! — bit-identical distances under concurrency, a saturated admission
//! bound, and a point-to-point cutoff that actually terminates early.
//!
//! Usage:
//!   cargo run -p sssp-bench --bin serve_bench [--release] --
//!       [--scale N] [--ranks N] [--threads N] [--inflight N]
//!       [--batch-roots N] [--out PATH] [--check PATH]
//!
//! Writes the `"serving"` block of `BENCH_sssp.json` (preserving every
//! `"scale_N"` block verbatim — see `sssp_bench::baseline`). `--check
//! PATH` additionally gates the committed serving block's structural
//! fields and this run's own record — including the crash-isolation
//! counters: `panicked` and `timed_out` must be present and zero in a
//! clean run. Wall-clock throughput is recorded but never gated, it
//! varies with the machine.
//!
//! The batch is three queries per root — a fresh single-source, a
//! point-to-point to the root's nearest vertex, and a repeat of the
//! single-source — all submitted before the first completion, so the
//! scheduler runs at its admission bound and the cache sees both
//! landmark and repeat-root traffic.

use std::sync::Arc;
use std::time::Instant;

use sssp_bench::baseline::{extract_number, serving_block, upsert_serving_block, ServingRecord};
use sssp_bench::{build_family, pick_roots, print_table, Family};
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::threaded_sssp_seeded;
use sssp_dist::DistGraph;
use sssp_graph::VertexId;
use sssp_serve::{QueryOutput, QuerySpec, ServeConfig, SsspServer};

/// The vertex nearest to `root` (smallest nonzero finite distance): the
/// point-to-point probe target, chosen so the cutoff has the most epochs
/// to save.
fn nearest_vertex(distances: &[u64], root: VertexId) -> VertexId {
    distances
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != 0 && d != u64::MAX)
        .min_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(root)
}

/// Measure the point-to-point epoch savings on a cache-less single-worker
/// server: the full field's epoch count vs the early-terminated count for
/// the nearest target.
fn measure_epoch_savings(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> (u64, u64) {
    let probe = SsspServer::new(
        Arc::clone(dg),
        cfg.clone(),
        *model,
        ServeConfig {
            max_inflight: 1,
            cache_capacity: 0,
            deadline: None,
        },
    );
    let full = probe
        .run(QuerySpec::SingleSource { root })
        .expect("probe single-source");
    let target = nearest_vertex(full.output.distances().expect("distances"), root);
    let p2p = probe
        .run(QuerySpec::PointToPoint { root, target })
        .expect("probe point-to-point");
    assert!(!p2p.cache_hit, "cache-less probe must run the engine");
    (p2p.epochs, full.epochs)
}

/// Gate the committed serving block and the freshly measured record.
fn check_against(committed_block: &str, current: &ServingRecord) -> Result<(), String> {
    let mut problems = current.problems();
    let mut missing: Vec<String> = Vec::new();
    let mut field = |name: &str| -> f64 {
        match extract_number(committed_block, "", name) {
            Some(v) => v,
            None => {
                missing.push(format!("committed serving block is missing {name}"));
                f64::NAN
            }
        }
    };
    // Config drift: a committed baseline recorded at other parameters
    // gates nothing — fail loudly instead of comparing unlike runs.
    for (name, now) in [
        ("scale", current.scale as f64),
        ("ranks", current.ranks as f64),
        ("threads", current.threads as f64),
        ("max_inflight", current.max_inflight as f64),
        ("queries", current.queries as f64),
    ] {
        let base = field(name);
        if !base.is_nan() && base != now {
            problems.push(format!(
                "committed serving block was recorded with {name} = {base}, \
                 this run uses {now} — re-record the baseline"
            ));
        }
    }
    // Structural gates on the committed block itself: the committed
    // baseline must describe a healthy serving layer.
    let committed_match = field("distances_match");
    if committed_match == 0.0 {
        problems.push("committed serving block records diverging distances".to_string());
    }
    let (peak, bound) = (field("peak_inflight"), field("max_inflight"));
    if peak < bound {
        problems.push(format!(
            "committed serving block never saturated its admission bound \
             ({peak} < {bound})"
        ));
    }
    let (p2p, full) = (field("p2p_epochs"), field("full_epochs"));
    if p2p >= full {
        problems.push(format!(
            "committed serving block records no point-to-point epoch \
             savings ({p2p} vs {full})"
        ));
    }
    // Crash-isolation gate: the failure counters must be present in the
    // committed block (a block without them predates the unwind-safety
    // work) and must both be zero — a clean benchmark run neither
    // panics nor times out.
    for name in ["panicked", "timed_out"] {
        let v = field(name);
        if !v.is_nan() && v != 0.0 {
            problems.push(format!(
                "committed serving block records {name} = {v} — the clean \
                 benchmark run must not trip the failure paths"
            ));
        }
    }
    problems.extend(missing);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn main() {
    // Pin the worker count unless the caller chose one, matching
    // perf_baseline: recorded numbers must not depend on the machine.
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }

    let mut scale = 10u32;
    let mut ranks = 4usize;
    let mut threads = 4usize;
    let mut max_inflight = 4usize;
    let mut batch_roots = 8usize;
    let mut out_path = "BENCH_sssp.json".to_string();
    let mut check_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{what} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--scale" => scale = take("--scale").parse().unwrap_or(scale),
            "--ranks" => ranks = take("--ranks").parse().unwrap_or(ranks),
            "--threads" => threads = take("--threads").parse().unwrap_or(threads),
            "--inflight" => max_inflight = take("--inflight").parse().unwrap_or(max_inflight),
            "--batch-roots" => batch_roots = take("--batch-roots").parse().unwrap_or(batch_roots),
            "--out" => out_path = take("--out"),
            "--check" => check_path = Some(take("--check")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let family = Family::Rmat2;
    let model = MachineModel::bgq_like();
    let g = build_family(family, scale, 1);
    let dg = Arc::new(DistGraph::build(&g, ranks, threads));
    let roots = pick_roots(&g, batch_roots, 23);
    // Non-hybrid finite Δ: the hybrid τ-tail can finish small graphs in a
    // couple of epochs, leaving the point-to-point cutoff nothing to save
    // and the epoch gate nothing to measure.
    let cfg = SsspConfig::del(25);

    let (p2p_epochs, full_epochs) = measure_epoch_savings(&dg, roots[0], &cfg, &model);

    // Fresh one-shot oracles, one per distinct root, computed before the
    // batch so oracle time never pollutes the throughput window.
    let oracles: Vec<Vec<u64>> = roots
        .iter()
        .map(|&r| threaded_sssp_seeded(&dg, &[(r, 0)], &cfg, &model).distances)
        .collect();
    let targets: Vec<VertexId> = roots
        .iter()
        .zip(&oracles)
        .map(|(&r, o)| nearest_vertex(o, r))
        .collect();

    let server = SsspServer::new(
        Arc::clone(&dg),
        cfg.clone(),
        model,
        ServeConfig {
            max_inflight,
            cache_capacity: 2 * batch_roots,
            deadline: None,
        },
    );

    // Submit the whole batch before waiting on anything: fresh roots
    // first (engine work that saturates the workers), then the landmark
    // point-to-points and the repeat roots (cache traffic).
    let t0 = Instant::now();
    let submit = |spec: QuerySpec| server.submit(spec).expect("benchmark spec is valid");
    let mut tickets = Vec::new();
    for &r in &roots {
        tickets.push((submit(QuerySpec::SingleSource { root: r }), r, None));
    }
    for (&r, &t) in roots.iter().zip(&targets) {
        tickets.push((
            submit(QuerySpec::PointToPoint { root: r, target: t }),
            r,
            Some(t),
        ));
    }
    for &r in &roots {
        tickets.push((submit(QuerySpec::SingleSource { root: r }), r, None));
    }
    let queries = tickets.len();

    let mut distances_match = true;
    for (ticket, root, target) in tickets {
        let res = server.wait(ticket).expect("benchmark query outcome");
        let oracle = &oracles[roots.iter().position(|&r| r == root).expect("batch root")];
        let ok = match (&res.output, target) {
            (QueryOutput::Distances(d), None) => d.as_ref() == oracle,
            (QueryOutput::TargetDistance(td), Some(t)) => *td == oracle[t as usize],
            _ => false,
        };
        if !ok {
            eprintln!("served query for root {root} diverged from the fresh oracle");
            distances_match = false;
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (cache_hits, cache_misses) = server.cache_stats();
    let peak_inflight = server.peak_inflight();
    let (panicked, timed_out) = server.failure_stats();

    let record = ServingRecord {
        family: family.name().to_string(),
        scale,
        ranks,
        threads,
        max_inflight,
        queries,
        peak_inflight,
        distances_match: u8::from(distances_match),
        cache_hits,
        cache_misses,
        p2p_epochs,
        full_epochs,
        panicked,
        timed_out,
        wall_ms,
        queries_per_sec: queries as f64 / (wall_ms / 1e3).max(f64::MIN_POSITIVE),
    };

    print_table(
        &format!(
            "serving baseline — {} scale {scale}, p={ranks}×{threads}, {max_inflight} workers",
            family.name()
        ),
        &[
            "queries",
            "peak inflight",
            "wall ms",
            "queries/s",
            "cache hit/miss",
            "p2p epochs",
            "full epochs",
            "panic/timeout",
            "distances",
        ],
        &[vec![
            record.queries.to_string(),
            record.peak_inflight.to_string(),
            format!("{:.2}", record.wall_ms),
            format!("{:.1}", record.queries_per_sec),
            format!("{}/{}", record.cache_hits, record.cache_misses),
            record.p2p_epochs.to_string(),
            record.full_epochs.to_string(),
            format!("{}/{}", record.panicked, record.timed_out),
            if distances_match { "match" } else { "DIVERGED" }.to_string(),
        ]],
    );
    println!(
        "point-to-point cutoff: {} of {} epochs ({:.0}% saved)",
        record.p2p_epochs,
        record.full_epochs,
        100.0 * (1.0 - record.p2p_epochs as f64 / record.full_epochs.max(1) as f64),
    );

    // Re-record only the serving block; every scale block in an existing
    // document survives verbatim.
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let json = upsert_serving_block(&existing, &record.to_json());
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} (serving block)");

    if let Some(path) = check_path {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read committed baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let Some(block) = serving_block(&committed) else {
            eprintln!("committed baseline {path} has no serving block");
            std::process::exit(1);
        };
        match check_against(&block, &record) {
            Ok(()) => println!("serving check against {path}: OK"),
            Err(msg) => {
                eprintln!("serving check against {path} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}
