//! Communication profiles of every kernel on the same graph and machine —
//! a substrate showcase comparing what each algorithm asks of the network.
//!
//! SSSP (OPT), BFS, Crauser Dijkstra, PageRank and connected components all
//! run on the identical simulated cluster; the table contrasts supersteps,
//! message counts, bytes and simulated time. The expected shape: BFS is the
//! cheapest (each edge at most once per direction, early-exit bottom-up),
//! OPT-SSSP lands within a small factor of it (the paper's Fig 1 framing),
//! Crauser pays many more synchronized phases, PageRank moves every edge
//! every iteration, and CC sits near BFS.

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::bfs::run_bfs;
use sssp_core::cc::run_cc;
use sssp_core::config::SsspConfig;
use sssp_core::crauser::run_crauser;
use sssp_core::engine::run_sssp;
use sssp_core::pagerank::{run_pagerank, PageRankConfig};
use sssp_dist::DistGraph;

fn main() {
    let scale = scale_per_rank() + 3;
    let ranks = 16;
    let model = MachineModel::bgq_like();
    let csr = build_family(Family::Rmat1, scale, 1);
    let dg = DistGraph::build(&csr, ranks, 64);
    let root = pick_roots(&csr, 1, 5)[0];
    let m = csr.num_undirected_edges() as u64;

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, steps: usize, msgs: u64, bytes: u64, secs: f64| {
        rows.push(vec![
            name.into(),
            steps.to_string(),
            human(msgs as f64),
            human(bytes as f64),
            format!("{secs:.2e}"),
            format!("{:.3}", sssp_comm::cost::teps(m, secs) / 1e9),
        ]);
    };

    let sssp = run_sssp(&dg, root, &SsspConfig::lb_opt(25), &model);
    push(
        "SSSP (LB-OPT-25)",
        sssp.stats.comm.num_supersteps(),
        sssp.stats.comm.total_msgs(),
        sssp.stats.comm.total_remote_bytes(),
        sssp.stats.ledger.total_s(),
    );

    let bfs = run_bfs(&dg, root, &model);
    push(
        "BFS (dir-opt)",
        bfs.stats.comm.num_supersteps(),
        bfs.stats.comm.total_msgs(),
        bfs.stats.comm.total_remote_bytes(),
        bfs.stats.ledger.total_s(),
    );

    let crs = run_crauser(&dg, root, &model);
    push(
        "Dijkstra (Crauser)",
        crs.stats.comm.num_supersteps(),
        crs.stats.comm.total_msgs(),
        crs.stats.comm.total_remote_bytes(),
        crs.stats.ledger.total_s(),
    );

    let pr = run_pagerank(
        &dg,
        &PageRankConfig {
            tolerance: 1e-6,
            ..Default::default()
        },
        &model,
    );
    push(
        "PageRank (to 1e-6)",
        pr.comm.num_supersteps(),
        pr.comm.total_msgs(),
        pr.comm.total_remote_bytes(),
        pr.ledger.total_s(),
    );

    let cc = run_cc(&dg, &model);
    push(
        "Connected comps",
        cc.comm.num_supersteps(),
        cc.comm.total_msgs(),
        cc.comm.total_remote_bytes(),
        cc.ledger.total_s(),
    );

    print_table(
        &format!("Kernel profiles — RMAT-1 scale {scale}, {ranks} ranks"),
        &[
            "kernel",
            "supersteps",
            "messages",
            "wire bytes",
            "sim time (s)",
            "GTEPS-equiv",
        ],
        &rows,
    );
    println!(
        "\nPageRank ran {} iterations{}; CC {} rounds; SSSP/BFS time ratio {:.1}x.",
        pr.iterations,
        if pr.converged { " (converged)" } else { "" },
        cc.rounds,
        sssp.stats.ledger.total_s() / bfs.stats.ledger.total_s()
    );
}
