//! Fig. 1 — the headline performance table.
//!
//! The paper's table compares published BFS/SSSP rates; this reproduction
//! prints the analogous rows for our largest simulated configuration: the
//! baseline Δ-stepping against the final optimized algorithm on both
//! families, read off the unified telemetry trace.
//!
//! Shape to reproduce: OPT beats the Del baseline on phases and
//! relaxations on RMAT-1 and RMAT-2 alike, and the wall-clock rate
//! follows — fewer relaxations means a faster traversal on either
//! backend.
//!
//! `--backend simulated|threaded` picks the engine (default simulated);
//! the trace-derived columns (phases, relaxations) are bit-identical on
//! both. The GTEPS column is wall-clock — undirected input edges over
//! measured seconds per root, the same denominator `perf_baseline`
//! records as `gteps_wall` — so it is comparable across backends but NOT
//! with the cost model's simulated-machine rates.

use std::sync::Arc;
use std::time::Instant;

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::{split_heavy_vertices, DistGraph};

fn main() {
    let backend = backend_from_args();
    let p = max_ranks();
    let scale = scale_per_rank() + (p as f64).log2() as u32;
    let threads = 4;
    let model = MachineModel::bgq_like();
    let mut rows = Vec::new();

    for family in [Family::Rmat1, Family::Rmat2] {
        let g = build_family(family, scale, 1);
        let roots = pick_roots(&g, 2, 61);
        let dg = Arc::new(DistGraph::build(&g, p, threads));

        let (opt_dg, delta) = match family {
            Family::Rmat1 => {
                let thr = sssp_dist::split::auto_threshold(&g, p);
                let (split_csr, part, _) = split_heavy_vertices(&g, p, thr);
                (
                    Arc::new(DistGraph::build_with_partition(
                        &split_csr,
                        part,
                        threads,
                        g.num_undirected_edges() as u64,
                    )),
                    25,
                )
            }
            Family::Rmat2 => (Arc::clone(&dg), 40),
        };

        let algos: Vec<(&str, &Arc<DistGraph>, SsspConfig)> = vec![
            ("Del-25 (baseline)", &dg, SsspConfig::del(25)),
            ("LB-OPT (this paper)", &opt_dg, SsspConfig::lb_opt(delta)),
        ];
        for (algo, adg, cfg) in algos {
            let mut phases = 0u64;
            let mut relaxations = 0u64;
            let t0 = Instant::now();
            for &root in &roots {
                let (_, trace) = run_trace(adg, root, &cfg, &model, backend);
                phases += trace.phases.len() as u64;
                relaxations += trace.phases.iter().map(|r| r.relaxations).sum::<u64>();
            }
            let k = roots.len() as f64;
            let per_run_s = t0.elapsed().as_secs_f64() / k;
            let gteps_wall = sssp_comm::cost::teps(adg.m_input_undirected, per_run_s) / 1e9;
            rows.push(vec![
                family.name().into(),
                algo.to_string(),
                format!("2^{scale}"),
                human(g.num_undirected_edges() as f64),
                p.to_string(),
                format!("{:.1}", phases as f64 / k),
                human(relaxations as f64 / k),
                format!("{:.4}", gteps_wall),
            ]);
        }
    }
    print_table(
        &format!("Fig 1 — headline performance ({} backend)", backend.name()),
        &[
            "graph",
            "algorithm",
            "vertices",
            "edges",
            "ranks",
            "phases",
            "relaxations",
            "GTEPS (wall)",
        ],
        &rows,
    );
    println!("\nPaper: 650 GTEPS @4096 nodes and 3100 GTEPS @32768 nodes (scale 38–39 RMAT-1).");
}
