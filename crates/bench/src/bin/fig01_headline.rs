//! Fig. 1 — the headline performance table.
//!
//! The paper's table compares published BFS/SSSP rates; this reproduction
//! prints the analogous rows for our largest simulated configuration: the
//! baseline Δ-stepping against the final optimized algorithm on both
//! families, with the simulated-machine GTEPS produced by the α–β–γ model.
//!
//! Shape to reproduce: OPT beats the Del baseline by ≈ 5–8× on RMAT-1 and
//! ≈ 3× on RMAT-2, and SSSP lands within a small factor of what a
//! same-machine BFS would achieve (the paper: 2–5×).

use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_dist::{split_heavy_vertices, DistGraph};

fn main() {
    let p = max_ranks();
    let scale = scale_per_rank() + (p as f64).log2() as u32;
    let threads = 4;
    let model = MachineModel::bgq_like();
    let mut rows = Vec::new();

    for family in [Family::Rmat1, Family::Rmat2] {
        let g = build_family(family, scale, 1);
        let roots = pick_roots(&g, 2, 61);
        let dg = DistGraph::build(&g, p, threads);
        let del = run_aggregate(&dg, &roots, &SsspConfig::del(25), &model);

        let (opt_dg, delta) = match family {
            Family::Rmat1 => {
                let thr = sssp_dist::split::auto_threshold(&g, p);
                let (split_csr, part, _) = split_heavy_vertices(&g, p, thr);
                (
                    DistGraph::build_with_partition(
                        &split_csr,
                        part,
                        threads,
                        g.num_undirected_edges() as u64,
                    ),
                    25,
                )
            }
            Family::Rmat2 => (dg.clone(), 40),
        };
        let opt = run_aggregate(&opt_dg, &roots, &SsspConfig::lb_opt(delta), &model);

        for (algo, agg) in [("Del-25 (baseline)", &del), ("LB-OPT (this paper)", &opt)] {
            rows.push(vec![
                family.name().into(),
                algo.to_string(),
                format!("2^{scale}"),
                human(g.num_undirected_edges() as f64),
                p.to_string(),
                format!("{:.3}", agg.gteps),
            ]);
        }
    }
    print_table(
        "Fig 1 — headline performance (simulated machine)",
        &["graph", "algorithm", "vertices", "edges", "ranks", "GTEPS"],
        &rows,
    );
    println!("\nPaper: 650 GTEPS @4096 nodes and 3100 GTEPS @32768 nodes (scale 38–39 RMAT-1).");
}
