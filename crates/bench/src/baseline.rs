//! Machine-readable perf-baseline records (`BENCH_sssp.json`).
//!
//! `perf_baseline` measures the engine twice — pooled superstep buffers and
//! the historical fresh-allocation mode — and records wall time, allocation
//! counts and simulated time here. The JSON is hand-rolled: the document is
//! a flat two-level object, so rendering and extraction are a few lines
//! each and the harness stays dependency-free.

/// Metrics of one measured configuration (pooled or fresh buffers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfRecord {
    /// Wall-clock milliseconds over all measured roots.
    pub wall_ms: f64,
    /// Heap allocations performed during the measured runs.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Data-exchange supersteps accumulated over the measured runs.
    pub supersteps: u64,
    /// Mean simulated seconds per run (the cost-model clock).
    pub simulated_s: f64,
    /// Mean simulated GTEPS per run.
    pub gteps: f64,
}

impl PerfRecord {
    /// Allocations per superstep — the pooling work's headline metric.
    pub fn allocs_per_superstep(&self) -> f64 {
        if self.supersteps == 0 {
            0.0
        } else {
            self.allocs as f64 / self.supersteps as f64
        }
    }

    /// Render as a JSON object literal.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"wall_ms\": {:.3}, \"allocs\": {}, \"alloc_bytes\": {}, ",
                "\"supersteps\": {}, \"allocs_per_superstep\": {:.3}, ",
                "\"simulated_s\": {:.6}, \"gteps\": {:.6}}}"
            ),
            self.wall_ms,
            self.allocs,
            self.alloc_bytes,
            self.supersteps,
            self.allocs_per_superstep(),
            self.simulated_s,
            self.gteps,
        )
    }
}

/// A full baseline document: the workload parameters plus one record per
/// allocation mode.
#[derive(Debug, Clone)]
pub struct PerfBaseline {
    /// Graph family name (e.g. "RMAT-2").
    pub family: String,
    /// R-MAT scale (log2 of the vertex count).
    pub scale: u32,
    /// Simulated rank count.
    pub ranks: usize,
    /// Logical threads per rank.
    pub threads: usize,
    /// Number of measured roots.
    pub roots: usize,
    /// Metrics with buffer pooling on (the default engine).
    pub pooled: PerfRecord,
    /// Metrics with fresh per-superstep allocation (the pre-pool engine).
    pub fresh: PerfRecord,
}

impl PerfBaseline {
    /// Render the whole document as pretty-enough JSON.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n  \"bench\": \"perf_baseline\",\n  \"family\": \"{}\",\n",
                "  \"scale\": {},\n  \"ranks\": {},\n  \"threads\": {},\n",
                "  \"roots\": {},\n  \"pooled\": {},\n  \"fresh\": {}\n}}\n"
            ),
            self.family,
            self.scale,
            self.ranks,
            self.threads,
            self.roots,
            self.pooled.to_json(),
            self.fresh.to_json(),
        )
    }
}

/// Extract the number stored at `"key"` inside the object named `object`
/// (pass `""` to search from the top of the document). Returns `None` when
/// the object or key is absent or the value does not parse as a number.
pub fn extract_number(json: &str, object: &str, key: &str) -> Option<f64> {
    let start = if object.is_empty() {
        0
    } else {
        json.find(&format!("\"{object}\""))?
    };
    let tail = &json[start..];
    let kpos = tail.find(&format!("\"{key}\""))?;
    let after = &tail[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfBaseline {
        PerfBaseline {
            family: "RMAT-2".to_string(),
            scale: 10,
            ranks: 4,
            threads: 4,
            roots: 3,
            pooled: PerfRecord {
                wall_ms: 12.5,
                allocs: 480,
                alloc_bytes: 65536,
                supersteps: 120,
                simulated_s: 0.25,
                gteps: 0.0125,
            },
            fresh: PerfRecord {
                wall_ms: 15.0,
                allocs: 9600,
                alloc_bytes: 1048576,
                supersteps: 120,
                simulated_s: 0.25,
                gteps: 0.0125,
            },
        }
    }

    #[test]
    fn json_roundtrips_through_extract() {
        let json = sample().to_json();
        assert_eq!(extract_number(&json, "", "scale"), Some(10.0));
        assert_eq!(extract_number(&json, "", "ranks"), Some(4.0));
        assert_eq!(extract_number(&json, "pooled", "wall_ms"), Some(12.5));
        assert_eq!(extract_number(&json, "pooled", "allocs"), Some(480.0));
        assert_eq!(extract_number(&json, "fresh", "allocs"), Some(9600.0));
        assert_eq!(
            extract_number(&json, "fresh", "allocs_per_superstep"),
            Some(80.0)
        );
    }

    #[test]
    fn extract_missing_returns_none() {
        let json = sample().to_json();
        assert_eq!(extract_number(&json, "pooled", "no_such_key"), None);
        assert_eq!(extract_number(&json, "no_such_object", "wall_ms"), None);
        assert_eq!(extract_number("not json at all", "", "wall_ms"), None);
    }

    #[test]
    fn allocs_per_superstep_handles_zero() {
        let mut r = sample().pooled;
        r.supersteps = 0;
        assert_eq!(r.allocs_per_superstep(), 0.0);
        r.supersteps = 120;
        assert_eq!(r.allocs_per_superstep(), 4.0);
    }
}
