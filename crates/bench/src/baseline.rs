//! Machine-readable perf-baseline records (`BENCH_sssp.json`).
//!
//! `perf_baseline` measures the engine three ways — pooled superstep
//! buffers, the historical fresh-allocation mode, and the real-thread
//! backend — and records wall time, allocation counts, message traffic
//! and simulated time here. The JSON is hand-rolled: the document is a
//! shallow object tree, so rendering and extraction are a few lines
//! each and the harness stays dependency-free.
//!
//! The document holds one block per measured R-MAT scale, keyed
//! `"scale_N"`, plus an optional `"serving"` block recorded by
//! `serve_bench` (concurrent multi-root query throughput over a resident
//! graph). Each binary regenerates only its own block and preserves the
//! others verbatim ([`upsert_scale_block`], [`upsert_serving_block`]), so
//! the per-scale baselines and the serving baseline coexist in one
//! committed file.
//!
//! GTEPS conventions: every GTEPS figure in a block divides the same
//! traversed-edge count (`gteps_edges`, the undirected input edge count)
//! by a time. `gteps` on the simulated records uses the cost-model clock;
//! `gteps_wall` (and the threaded backend's `gteps`) use measured wall
//! time. Compare wall to wall and simulated to simulated — the two clocks
//! measure different machines.

/// Metrics of one measured simulated configuration (pooled or fresh
/// buffers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfRecord {
    /// Wall-clock milliseconds over all measured roots.
    pub wall_ms: f64,
    /// Heap allocations performed during the measured runs.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Data-exchange supersteps accumulated over the measured runs.
    pub supersteps: u64,
    /// Messages delivered over the measured runs (post-coalescing).
    pub msgs: u64,
    /// The subset of `msgs` that crossed rank boundaries — the wire
    /// traffic the drift gate watches.
    pub remote_msgs: u64,
    /// Messages removed by sender-side coalescing before the exchanges.
    pub coalesced_msgs: u64,
    /// Mean simulated seconds per run (the cost-model clock).
    pub simulated_s: f64,
    /// Mean simulated GTEPS per run: the block's `gteps_edges` denominator
    /// over `simulated_s`. Comparable only with other simulated figures.
    pub gteps: f64,
    /// Mean wall-clock GTEPS per run: the same `gteps_edges` denominator
    /// over measured wall time per root. This is the figure comparable
    /// with the threaded backend's (wall-clock) `gteps`.
    pub gteps_wall: f64,
}

impl PerfRecord {
    /// Allocations per superstep — the pooling work's headline metric.
    pub fn allocs_per_superstep(&self) -> f64 {
        if self.supersteps == 0 {
            0.0
        } else {
            self.allocs as f64 / self.supersteps as f64
        }
    }

    /// Fraction of would-be messages the coalescer removed — the
    /// coalescing work's headline metric.
    pub fn coalesced_fraction(&self) -> f64 {
        let would_be = self.msgs + self.coalesced_msgs;
        if would_be == 0 {
            0.0
        } else {
            self.coalesced_msgs as f64 / would_be as f64
        }
    }

    /// Render as a JSON object literal.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"wall_ms\": {:.3}, \"allocs\": {}, \"alloc_bytes\": {}, ",
                "\"supersteps\": {}, \"allocs_per_superstep\": {:.3}, ",
                "\"msgs\": {}, \"remote_msgs\": {}, \"coalesced_msgs\": {}, ",
                "\"coalesced_fraction\": {:.4}, ",
                "\"simulated_s\": {:.6}, \"gteps\": {:.6}, ",
                "\"gteps_wall\": {:.6}}}"
            ),
            self.wall_ms,
            self.allocs,
            self.alloc_bytes,
            self.supersteps,
            self.allocs_per_superstep(),
            self.msgs,
            self.remote_msgs,
            self.coalesced_msgs,
            self.coalesced_fraction(),
            self.simulated_s,
            self.gteps,
            self.gteps_wall,
        )
    }
}

/// Metrics of the real-thread backend run (one OS thread per rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedRecord {
    /// Wall-clock milliseconds over all measured roots.
    pub wall_ms: f64,
    /// Wall-clock GTEPS over the measured runs: the block's `gteps_edges`
    /// denominator over measured wall time per root. There is no
    /// cost-model ledger on this backend, so the figure comparable here is
    /// the simulated records' `gteps_wall`, never their simulated `gteps`.
    pub gteps: f64,
    /// Wall-time speedup over the pooled simulated engine on the same
    /// workload (pooled wall_ms / threaded wall_ms).
    pub speedup_vs_pooled: f64,
    /// Relax messages that stayed on the sender's own rank
    /// (post-coalescing; never touch the channels' wire).
    pub relax_local_msgs: u64,
    /// Relax messages that crossed rank boundaries (post-coalescing).
    pub relax_remote_msgs: u64,
    /// Relax messages removed by sender-side coalescing.
    pub coalesced_msgs: u64,
}

impl ThreadedRecord {
    /// All relax messages that entered an exchange, local and remote.
    pub fn relax_msgs_total(&self) -> u64 {
        self.relax_local_msgs + self.relax_remote_msgs
    }

    /// Fraction of would-be relax messages the coalescer removed.
    pub fn coalesced_fraction(&self) -> f64 {
        let would_be = self.relax_msgs_total() + self.coalesced_msgs;
        if would_be == 0 {
            0.0
        } else {
            self.coalesced_msgs as f64 / would_be as f64
        }
    }

    /// Render as a JSON object literal.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"wall_ms\": {:.3}, \"gteps\": {:.6}, ",
                "\"speedup_vs_pooled\": {:.3}, \"relax_local_msgs\": {}, ",
                "\"relax_remote_msgs\": {}, ",
                "\"coalesced_msgs\": {}, \"coalesced_fraction\": {:.4}}}"
            ),
            self.wall_ms,
            self.gteps,
            self.speedup_vs_pooled,
            self.relax_local_msgs,
            self.relax_remote_msgs,
            self.coalesced_msgs,
            self.coalesced_fraction(),
        )
    }
}

/// The unified-telemetry block: a simulated and a threaded trace of the
/// same workload compared bucket-by-bucket, plus the threaded trace's
/// headline counters (which the `--check` gate watches for drift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryRecord {
    /// 1 when the simulated and threaded traces diffed clean, else 0
    /// (numeric so `extract_number` reads it like every other field).
    pub backends_agree: u8,
    /// Buckets processed before the hybrid tail (per traced run).
    pub buckets: u64,
    /// Data-exchange supersteps of the traced run.
    pub supersteps: u64,
    /// Rank-local messages of the traced run (relax + requests).
    pub local_msgs: u64,
    /// Wire messages of the traced run (relax + requests).
    pub remote_msgs: u64,
    /// Messages removed by sender-side coalescing in the traced run.
    pub coalesced_msgs: u64,
    /// Wall-clock nanoseconds the threaded trace spent in short-edge
    /// phases. The wall fields track the slowest rank's critical path and
    /// vary with machine load, so the `--check` gate never compares them
    /// against the committed baseline — it only sanity-checks the current
    /// run's numbers against each other ([`TelemetryRecord::wall_problems`]).
    pub wall_short_ns: u64,
    /// Wall-clock nanoseconds in long push phases.
    pub wall_long_push_ns: u64,
    /// Wall-clock nanoseconds in long pull phases.
    pub wall_long_pull_ns: u64,
    /// Wall-clock nanoseconds in Bellman-Ford tail rounds.
    pub wall_bf_ns: u64,
    /// End-to-end measured wall time of the traced threaded run (timed
    /// around the whole run, unlike the per-phase accumulators above,
    /// which only cover phase bodies). The `--check` gate cross-validates
    /// the phase accumulators against this: their sum may not exceed it,
    /// and neither may be zero on a run that performed supersteps.
    pub wall_measured_ns: u64,
}

impl TelemetryRecord {
    /// Sum of the per-phase wall-clock accumulators (NOT the measured
    /// end-to-end wall time — that is [`TelemetryRecord::wall_measured_ns`];
    /// this sum excludes setup, collectives and inter-phase gaps).
    pub fn wall_total_ns(&self) -> u64 {
        self.wall_short_ns + self.wall_long_push_ns + self.wall_long_pull_ns + self.wall_bf_ns
    }

    /// Sanity problems in the wall-clock telemetry of *this* run: the
    /// phase-time sum exceeding the measured end-to-end wall time (the
    /// accumulators cover disjoint sub-intervals of the run, so their sum
    /// is bounded by it), or zero wall time on a run that demonstrably
    /// performed supersteps. Empty on healthy telemetry.
    pub fn wall_problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.wall_total_ns() > self.wall_measured_ns {
            problems.push(format!(
                "telemetry wall-clock phase sum {} ns exceeds the measured \
                 run wall time {} ns — the phase accumulators overlap or \
                 the total was not measured around the whole run",
                self.wall_total_ns(),
                self.wall_measured_ns
            ));
        }
        if self.supersteps > 0 {
            if self.wall_total_ns() == 0 {
                problems.push(format!(
                    "telemetry recorded {} supersteps but zero wall-clock \
                     phase time — the threaded recorder dropped its timings",
                    self.supersteps
                ));
            }
            if self.wall_measured_ns == 0 {
                problems.push(format!(
                    "telemetry recorded {} supersteps but zero measured \
                     wall time — the traced run was not timed",
                    self.supersteps
                ));
            }
        }
        problems
    }

    /// Render as a JSON object literal.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"backends_agree\": {}, \"buckets\": {}, ",
                "\"supersteps\": {}, \"local_msgs\": {}, ",
                "\"remote_msgs\": {}, \"coalesced_msgs\": {}, ",
                "\"wall_short_ns\": {}, \"wall_long_push_ns\": {}, ",
                "\"wall_long_pull_ns\": {}, \"wall_bf_ns\": {}, ",
                "\"wall_measured_ns\": {}}}"
            ),
            self.backends_agree,
            self.buckets,
            self.supersteps,
            self.local_msgs,
            self.remote_msgs,
            self.coalesced_msgs,
            self.wall_short_ns,
            self.wall_long_push_ns,
            self.wall_long_pull_ns,
            self.wall_bf_ns,
            self.wall_measured_ns,
        )
    }
}

/// A full baseline document: the workload parameters plus one record per
/// measured engine mode.
#[derive(Debug, Clone)]
pub struct PerfBaseline {
    /// Graph family name (e.g. "RMAT-2").
    pub family: String,
    /// R-MAT scale (log2 of the vertex count).
    pub scale: u32,
    /// Simulated rank count.
    pub ranks: usize,
    /// Logical threads per rank.
    pub threads: usize,
    /// Number of measured roots.
    pub roots: usize,
    /// The traversed-edge denominator shared by every GTEPS figure in this
    /// block: the undirected input edge count of the benchmark graph.
    pub gteps_edges: u64,
    /// Metrics with buffer pooling on (the default engine).
    pub pooled: PerfRecord,
    /// Metrics with fresh per-superstep allocation (the pre-pool engine).
    pub fresh: PerfRecord,
    /// Metrics of the real-thread backend on the same workload.
    pub threaded: ThreadedRecord,
    /// The unified-telemetry block (simulated vs threaded trace compare).
    pub telemetry: TelemetryRecord,
}

impl PerfBaseline {
    /// Render this scale's block as pretty-enough JSON (an object literal;
    /// the enclosing multi-scale document is assembled by
    /// [`upsert_scale_block`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n    \"family\": \"{}\",\n",
                "    \"scale\": {},\n    \"ranks\": {},\n    \"threads\": {},\n",
                "    \"roots\": {},\n    \"gteps_edges\": {},\n",
                "    \"pooled\": {},\n    \"fresh\": {},\n",
                "    \"threaded\": {},\n    \"telemetry\": {}\n  }}"
            ),
            self.family,
            self.scale,
            self.ranks,
            self.threads,
            self.roots,
            self.gteps_edges,
            self.pooled.to_json(),
            self.fresh.to_json(),
            self.threaded.to_json(),
            self.telemetry.to_json(),
        )
    }
}

/// Metrics of the query-serving layer under concurrent load, recorded by
/// `serve_bench`: one resident graph, `max_inflight` worker threads, a
/// mixed batch of single-source / multi-seed / point-to-point / repeat
/// queries pushed through the scheduler at once.
#[derive(Debug, Clone)]
pub struct ServingRecord {
    /// Graph family name (e.g. "RMAT-2").
    pub family: String,
    /// R-MAT scale (log2 of the vertex count).
    pub scale: u32,
    /// Rank count of the resident partition.
    pub ranks: usize,
    /// Logical threads per rank.
    pub threads: usize,
    /// Scheduler admission bound (= worker thread count).
    pub max_inflight: usize,
    /// Queries submitted over the measured batch.
    pub queries: usize,
    /// High-water mark of simultaneously running queries. The `--check`
    /// gate requires this to reach `max_inflight` — a serving layer that
    /// serializes its workers is not serving concurrently.
    pub peak_inflight: usize,
    /// 1 when every served distance field was bit-identical to a fresh
    /// one-shot engine run, else 0 (numeric for `extract_number`).
    pub distances_match: u8,
    /// Distance-cache hits over the batch (repeat roots + landmarks).
    pub cache_hits: u64,
    /// Distance-cache misses over the batch.
    pub cache_misses: u64,
    /// Epoch-select rounds of one engine-run point-to-point query.
    pub p2p_epochs: u64,
    /// Epoch-select rounds of the matching full single-source query. The
    /// gate requires `p2p_epochs < full_epochs`: the target cutoff must
    /// actually terminate early.
    pub full_epochs: u64,
    /// Queries that panicked and were absorbed by the worker's
    /// `catch_unwind` (failing only their own ticket). The `--check` gate
    /// requires zero: the clean benchmark batch must not trip the crash
    /// isolation.
    pub panicked: u64,
    /// Queries that missed their deadline and failed with
    /// `QueryError::TimedOut`. The benchmark runs without a deadline, so
    /// the gate requires zero.
    pub timed_out: u64,
    /// Wall-clock milliseconds over the whole measured batch.
    pub wall_ms: f64,
    /// Queries completed per second of batch wall time. Wall-clock
    /// figures vary with machine load, so the `--check` gate never
    /// compares them against the committed baseline — it gates only the
    /// structural fields above.
    pub queries_per_sec: f64,
}

impl ServingRecord {
    /// Gate problems in *this* record: no queries measured, served
    /// distances diverging from the one-shot oracle, a scheduler that
    /// never reached its admission bound, or a point-to-point cutoff
    /// that saved no epochs. Empty on a healthy serving baseline.
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.queries == 0 {
            problems.push("serving baseline measured zero queries".to_string());
        }
        if self.distances_match != 1 {
            problems.push(
                "served distances diverged from fresh one-shot engine runs \
                 — resident state leaked across queries"
                    .to_string(),
            );
        }
        if self.peak_inflight < self.max_inflight {
            problems.push(format!(
                "peak inflight {} never reached the admission bound {} — \
                 the scheduler is not serving queries concurrently",
                self.peak_inflight, self.max_inflight
            ));
        }
        if self.p2p_epochs >= self.full_epochs {
            problems.push(format!(
                "point-to-point query ran {} epochs vs {} for the full \
                 field — the target cutoff saved nothing",
                self.p2p_epochs, self.full_epochs
            ));
        }
        if self.panicked != 0 {
            problems.push(format!(
                "{} quer{} panicked during the clean benchmark batch — \
                 crash isolation absorbed them, but a healthy baseline \
                 must not panic at all",
                self.panicked,
                if self.panicked == 1 { "y" } else { "ies" }
            ));
        }
        if self.timed_out != 0 {
            problems.push(format!(
                "{} quer{} timed out in a run with no deadline configured",
                self.timed_out,
                if self.timed_out == 1 { "y" } else { "ies" }
            ));
        }
        problems
    }

    /// Render as pretty-enough JSON (an object literal; the enclosing
    /// document is assembled by [`upsert_serving_block`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n    \"family\": \"{}\",\n",
                "    \"scale\": {},\n    \"ranks\": {},\n    \"threads\": {},\n",
                "    \"max_inflight\": {},\n    \"queries\": {},\n",
                "    \"peak_inflight\": {},\n    \"distances_match\": {},\n",
                "    \"cache_hits\": {},\n    \"cache_misses\": {},\n",
                "    \"p2p_epochs\": {},\n    \"full_epochs\": {},\n",
                "    \"panicked\": {},\n    \"timed_out\": {},\n",
                "    \"wall_ms\": {:.3},\n    \"queries_per_sec\": {:.3}\n  }}"
            ),
            self.family,
            self.scale,
            self.ranks,
            self.threads,
            self.max_inflight,
            self.queries,
            self.peak_inflight,
            self.distances_match,
            self.cache_hits,
            self.cache_misses,
            self.p2p_epochs,
            self.full_epochs,
            self.panicked,
            self.timed_out,
            self.wall_ms,
            self.queries_per_sec,
        )
    }
}

/// Extract the number stored at `"key"` inside the object named `object`
/// (pass `""` to search from the top of the document). Returns `None` when
/// the object or key is absent or the value does not parse as a number.
/// On a multi-scale document, slice out one scale's block with
/// [`scale_block`] first — this function finds the *first* matching
/// object name.
pub fn extract_number(json: &str, object: &str, key: &str) -> Option<f64> {
    let start = if object.is_empty() {
        0
    } else {
        json.find(&format!("\"{object}\""))?
    };
    let tail = &json[start..];
    let kpos = tail.find(&format!("\"{key}\""))?;
    let after = &tail[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// All `"scale_N"` blocks of a multi-scale baseline document, as
/// `(scale, raw object text)` pairs in document order. Brace counting is
/// exact for the documents this module renders (no string values contain
/// braces). A legacy single-scale document (no `"scale_N"` keys) yields
/// an empty list.
pub fn extract_scale_blocks(json: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(i) = json[pos..].find("\"scale_") {
        let digits_at = pos + i + "\"scale_".len();
        let digits: String = json[digits_at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        pos = digits_at + digits.len();
        let Ok(scale) = digits.parse::<u32>() else {
            continue;
        };
        let Some(open) = json[pos..].find('{') else {
            break;
        };
        let start = pos + open;
        let mut depth = 0usize;
        let mut end = None;
        for (j, c) in json[start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(start + j + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else {
            break;
        };
        out.push((scale, json[start..end].to_string()));
        pos = end;
    }
    out
}

/// The raw `"scale_N"` block for one scale, if the document has one.
/// `--check` slices the committed baseline with this before extracting
/// gate values, so same-named objects in other scales' blocks cannot
/// shadow the right ones.
pub fn scale_block(json: &str, scale: u32) -> Option<String> {
    extract_scale_blocks(json)
        .into_iter()
        .find(|(s, _)| *s == scale)
        .map(|(_, b)| b)
}

/// The raw `"serving"` block of a baseline document, if it has one.
/// Exact brace counting, same conventions as [`extract_scale_blocks`];
/// scans from the end of the last scale block so same-named keys inside
/// scale blocks (there are none today) can never shadow it.
pub fn serving_block(json: &str) -> Option<String> {
    let after_scales = extract_scale_blocks(json)
        .last()
        .and_then(|(_, b)| json.rfind(b.as_str()).map(|i| i + b.len()))
        .unwrap_or(0);
    let tail = &json[after_scales..];
    let kpos = tail.find("\"serving\"")?;
    let open = after_scales + kpos + tail[kpos..].find('{')?;
    let mut depth = 0usize;
    for (j, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..open + j + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Assemble the whole document from its blocks: scale blocks sorted by
/// scale, then the serving block (when present) last.
fn render_document(blocks: &[(u32, String)], serving: Option<&str>) -> String {
    let mut body: Vec<String> = blocks
        .iter()
        .map(|(s, b)| format!("  \"scale_{s}\": {b}"))
        .collect();
    if let Some(sv) = serving {
        body.push(format!("  \"serving\": {sv}"));
    }
    format!(
        "{{\n  \"bench\": \"perf_baseline\",\n{}\n}}\n",
        body.join(",\n")
    )
}

/// Replace (or insert) one scale's block in a baseline document and
/// render the result, blocks sorted by scale. Blocks for other scales
/// and the serving block in `existing` are preserved verbatim; a legacy
/// single-scale document contributes nothing and is superseded.
pub fn upsert_scale_block(existing: &str, scale: u32, block: &str) -> String {
    let mut blocks = extract_scale_blocks(existing);
    blocks.retain(|(s, _)| *s != scale);
    blocks.push((scale, block.to_string()));
    blocks.sort_by_key(|(s, _)| *s);
    let serving = serving_block(existing);
    render_document(&blocks, serving.as_deref())
}

/// Replace (or insert) the serving block in a baseline document and
/// render the result. Every scale block in `existing` is preserved
/// verbatim.
pub fn upsert_serving_block(existing: &str, block: &str) -> String {
    let blocks = extract_scale_blocks(existing);
    render_document(&blocks, Some(block))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfBaseline {
        PerfBaseline {
            family: "RMAT-2".to_string(),
            scale: 10,
            ranks: 4,
            threads: 4,
            roots: 3,
            gteps_edges: 16384,
            pooled: PerfRecord {
                wall_ms: 12.5,
                allocs: 480,
                alloc_bytes: 65536,
                supersteps: 120,
                msgs: 30000,
                remote_msgs: 22000,
                coalesced_msgs: 10000,
                simulated_s: 0.25,
                gteps: 0.0125,
                gteps_wall: 0.004,
            },
            fresh: PerfRecord {
                wall_ms: 15.0,
                allocs: 9600,
                alloc_bytes: 1048576,
                supersteps: 120,
                msgs: 30000,
                remote_msgs: 22000,
                coalesced_msgs: 10000,
                simulated_s: 0.25,
                gteps: 0.0125,
                gteps_wall: 0.0033,
            },
            threaded: ThreadedRecord {
                wall_ms: 5.0,
                gteps: 0.05,
                speedup_vs_pooled: 2.5,
                relax_local_msgs: 6000,
                relax_remote_msgs: 22000,
                coalesced_msgs: 10000,
            },
            telemetry: TelemetryRecord {
                backends_agree: 1,
                buckets: 40,
                supersteps: 120,
                local_msgs: 8000,
                remote_msgs: 22000,
                coalesced_msgs: 10000,
                wall_short_ns: 1_500_000,
                wall_long_push_ns: 400_000,
                wall_long_pull_ns: 250_000,
                wall_bf_ns: 100_000,
                wall_measured_ns: 3_000_000,
            },
        }
    }

    #[test]
    fn json_roundtrips_through_extract() {
        let json = sample().to_json();
        assert_eq!(extract_number(&json, "", "scale"), Some(10.0));
        assert_eq!(extract_number(&json, "", "ranks"), Some(4.0));
        assert_eq!(extract_number(&json, "", "gteps_edges"), Some(16384.0));
        assert_eq!(extract_number(&json, "pooled", "gteps_wall"), Some(0.004));
        assert_eq!(extract_number(&json, "pooled", "wall_ms"), Some(12.5));
        assert_eq!(extract_number(&json, "pooled", "allocs"), Some(480.0));
        assert_eq!(extract_number(&json, "pooled", "msgs"), Some(30000.0));
        assert_eq!(extract_number(&json, "fresh", "allocs"), Some(9600.0));
        assert_eq!(
            extract_number(&json, "fresh", "allocs_per_superstep"),
            Some(80.0)
        );
        assert_eq!(
            extract_number(&json, "pooled", "remote_msgs"),
            Some(22000.0)
        );
        assert_eq!(extract_number(&json, "threaded", "wall_ms"), Some(5.0));
        assert_eq!(
            extract_number(&json, "threaded", "speedup_vs_pooled"),
            Some(2.5)
        );
        assert_eq!(
            extract_number(&json, "threaded", "relax_local_msgs"),
            Some(6000.0)
        );
        assert_eq!(
            extract_number(&json, "threaded", "relax_remote_msgs"),
            Some(22000.0)
        );
        assert_eq!(
            extract_number(&json, "threaded", "coalesced_msgs"),
            Some(10000.0)
        );
        assert_eq!(
            extract_number(&json, "telemetry", "backends_agree"),
            Some(1.0)
        );
        assert_eq!(extract_number(&json, "telemetry", "buckets"), Some(40.0));
        assert_eq!(
            extract_number(&json, "telemetry", "remote_msgs"),
            Some(22000.0)
        );
        assert_eq!(
            extract_number(&json, "telemetry", "wall_short_ns"),
            Some(1_500_000.0)
        );
        assert_eq!(
            extract_number(&json, "telemetry", "wall_bf_ns"),
            Some(100_000.0)
        );
        assert_eq!(
            extract_number(&json, "telemetry", "wall_measured_ns"),
            Some(3_000_000.0)
        );
    }

    #[test]
    fn wall_total_sums_the_phase_accumulators() {
        let t = sample().telemetry;
        assert_eq!(t.wall_total_ns(), 2_250_000);
    }

    #[test]
    fn wall_problems_gate_phase_sum_and_zero_timings() {
        let healthy = sample().telemetry;
        assert!(healthy.wall_problems().is_empty());

        // Phase sum exceeding the measured run wall time is inconsistent.
        let mut t = healthy;
        t.wall_measured_ns = 1_000_000;
        let p = t.wall_problems();
        assert_eq!(p.len(), 1, "{p:?}");
        assert!(p[0].contains("exceeds"), "{p:?}");

        // A run with supersteps must have nonzero phase and measured time.
        let mut t = healthy;
        t.wall_short_ns = 0;
        t.wall_long_push_ns = 0;
        t.wall_long_pull_ns = 0;
        t.wall_bf_ns = 0;
        t.wall_measured_ns = 0;
        let p = t.wall_problems();
        assert_eq!(p.len(), 2, "{p:?}");

        // A degenerate run (no supersteps) may be all-zero.
        t.supersteps = 0;
        assert!(t.wall_problems().is_empty());
    }

    #[test]
    fn multi_scale_document_roundtrips() {
        let ten = sample();
        let mut twenty = sample();
        twenty.scale = 20;
        twenty.pooled.wall_ms = 400.0;

        let doc = upsert_scale_block("", 10, &ten.to_json());
        let doc = upsert_scale_block(&doc, 20, &twenty.to_json());

        let blocks = extract_scale_blocks(&doc);
        assert_eq!(
            blocks.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![10, 20]
        );
        let b10 = scale_block(&doc, 10).expect("scale 10 block");
        let b20 = scale_block(&doc, 20).expect("scale 20 block");
        assert_eq!(extract_number(&b10, "pooled", "wall_ms"), Some(12.5));
        assert_eq!(extract_number(&b20, "pooled", "wall_ms"), Some(400.0));
        assert_eq!(scale_block(&doc, 15), None);
    }

    #[test]
    fn upsert_replaces_only_its_own_scale() {
        let ten = sample();
        let mut twenty = sample();
        twenty.scale = 20;
        twenty.pooled.wall_ms = 400.0;
        let doc = upsert_scale_block("", 10, &ten.to_json());
        let doc = upsert_scale_block(&doc, 20, &twenty.to_json());

        // Re-record scale 10 with a different wall time: scale 20 must
        // survive byte-for-byte.
        let before_20 = scale_block(&doc, 20).expect("scale 20 block");
        let mut ten2 = sample();
        ten2.pooled.wall_ms = 9.0;
        let doc2 = upsert_scale_block(&doc, 10, &ten2.to_json());
        let b10 = scale_block(&doc2, 10).expect("scale 10 block");
        assert_eq!(extract_number(&b10, "pooled", "wall_ms"), Some(9.0));
        assert_eq!(scale_block(&doc2, 20).expect("scale 20 block"), before_20);
        assert_eq!(extract_scale_blocks(&doc2).len(), 2);
    }

    #[test]
    fn upsert_supersedes_legacy_single_scale_documents() {
        // A pre-multi-scale document has no "scale_N" keys: nothing to
        // preserve, the fresh block becomes the whole document.
        let legacy = "{\n  \"bench\": \"perf_baseline\",\n  \"scale\": 10,\n  \
                      \"pooled\": {\"wall_ms\": 26.897}\n}\n";
        assert!(extract_scale_blocks(legacy).is_empty());
        let doc = upsert_scale_block(legacy, 10, &sample().to_json());
        let b10 = scale_block(&doc, 10).expect("scale 10 block");
        assert_eq!(extract_number(&b10, "pooled", "wall_ms"), Some(12.5));
    }

    fn sample_serving() -> ServingRecord {
        ServingRecord {
            family: "RMAT-2".to_string(),
            scale: 10,
            ranks: 4,
            threads: 4,
            max_inflight: 4,
            queries: 24,
            peak_inflight: 4,
            distances_match: 1,
            cache_hits: 6,
            cache_misses: 18,
            p2p_epochs: 9,
            full_epochs: 31,
            panicked: 0,
            timed_out: 0,
            wall_ms: 180.0,
            queries_per_sec: 133.3,
        }
    }

    #[test]
    fn serving_json_roundtrips_through_extract() {
        let json = sample_serving().to_json();
        assert_eq!(extract_number(&json, "", "max_inflight"), Some(4.0));
        assert_eq!(extract_number(&json, "", "queries"), Some(24.0));
        assert_eq!(extract_number(&json, "", "peak_inflight"), Some(4.0));
        assert_eq!(extract_number(&json, "", "distances_match"), Some(1.0));
        assert_eq!(extract_number(&json, "", "cache_hits"), Some(6.0));
        assert_eq!(extract_number(&json, "", "p2p_epochs"), Some(9.0));
        assert_eq!(extract_number(&json, "", "full_epochs"), Some(31.0));
        assert_eq!(extract_number(&json, "", "panicked"), Some(0.0));
        assert_eq!(extract_number(&json, "", "timed_out"), Some(0.0));
        assert_eq!(extract_number(&json, "", "queries_per_sec"), Some(133.3));
    }

    #[test]
    fn serving_problems_gate_the_structural_invariants() {
        assert!(sample_serving().problems().is_empty());

        let mut r = sample_serving();
        r.distances_match = 0;
        assert_eq!(r.problems().len(), 1);

        let mut r = sample_serving();
        r.peak_inflight = 2;
        let p = r.problems();
        assert_eq!(p.len(), 1, "{p:?}");
        assert!(p[0].contains("admission bound"), "{p:?}");

        let mut r = sample_serving();
        r.p2p_epochs = r.full_epochs;
        let p = r.problems();
        assert_eq!(p.len(), 1, "{p:?}");
        assert!(p[0].contains("saved nothing"), "{p:?}");

        let mut r = sample_serving();
        r.queries = 0;
        assert!(!r.problems().is_empty());

        let mut r = sample_serving();
        r.panicked = 1;
        let p = r.problems();
        assert_eq!(p.len(), 1, "{p:?}");
        assert!(p[0].contains("panicked"), "{p:?}");

        let mut r = sample_serving();
        r.timed_out = 2;
        let p = r.problems();
        assert_eq!(p.len(), 1, "{p:?}");
        assert!(p[0].contains("timed out"), "{p:?}");
    }

    #[test]
    fn serving_block_coexists_with_scale_blocks() {
        let doc = upsert_scale_block("", 10, &sample().to_json());
        let doc = upsert_serving_block(&doc, &sample_serving().to_json());

        // Both block kinds survive each other's upserts verbatim.
        let sv = serving_block(&doc).expect("serving block");
        assert_eq!(extract_number(&sv, "", "queries"), Some(24.0));
        let mut twenty = sample();
        twenty.scale = 20;
        let doc2 = upsert_scale_block(&doc, 20, &twenty.to_json());
        assert_eq!(serving_block(&doc2).expect("serving survives"), sv);
        assert_eq!(extract_scale_blocks(&doc2).len(), 2);

        let mut sv2 = sample_serving();
        sv2.queries = 48;
        let doc3 = upsert_serving_block(&doc2, &sv2.to_json());
        assert_eq!(extract_scale_blocks(&doc3).len(), 2);
        let sv3 = serving_block(&doc3).expect("serving block");
        assert_eq!(extract_number(&sv3, "", "queries"), Some(48.0));

        // A document without a serving block yields None.
        assert_eq!(
            serving_block(&upsert_scale_block("", 10, &sample().to_json())),
            None
        );
    }

    #[test]
    fn extract_missing_returns_none() {
        let json = sample().to_json();
        assert_eq!(extract_number(&json, "pooled", "no_such_key"), None);
        assert_eq!(extract_number(&json, "no_such_object", "wall_ms"), None);
        assert_eq!(extract_number("not json at all", "", "wall_ms"), None);
    }

    #[test]
    fn allocs_per_superstep_handles_zero() {
        let mut r = sample().pooled;
        r.supersteps = 0;
        assert_eq!(r.allocs_per_superstep(), 0.0);
        r.supersteps = 120;
        assert_eq!(r.allocs_per_superstep(), 4.0);
    }

    #[test]
    fn coalesced_fraction_handles_zero_traffic() {
        let mut r = sample().pooled;
        r.msgs = 0;
        r.coalesced_msgs = 0;
        assert_eq!(r.coalesced_fraction(), 0.0);
        let t = sample().threaded;
        assert_eq!(t.coalesced_fraction(), 10000.0 / 38000.0);
    }
}
