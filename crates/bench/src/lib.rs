//! Shared harness for the figure/table reproduction binaries.
//!
//! Every `fig*`/`sec*` binary in `src/bin/` regenerates one table or figure
//! of the paper (see DESIGN.md's experiment index); this library holds the
//! common plumbing: graph family construction, weak-scaling sweeps, run
//! aggregation over multiple roots, and plain-text table output shaped like
//! the paper's figures.
//!
//! Scale-down convention: the paper fixes 2^23 vertices per node and scales
//! nodes 32 → 32768 (graph scales 28 → 39). This reproduction defaults to
//! 2^12 vertices per rank and ranks 2 → 64 (graph scales 13 → 18); the
//! `SSSP_BENCH_SCALE_PER_RANK` / `SSSP_BENCH_MAX_RANKS` environment
//! variables raise the scale for bigger machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph500;

use std::sync::Arc;

use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::{run_sssp, SsspOutput};
use sssp_core::{threaded_delta_stepping_traced, RunTrace};
use sssp_dist::DistGraph;
use sssp_graph::prng::SplitMix;
use sssp_graph::rmat::{RmatGenerator, RmatParams};
use sssp_graph::{Csr, CsrBuilder, VertexId};

/// The paper's two synthetic families (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Graph 500 BFS parameters (a=0.57): skewed, hub-heavy.
    Rmat1,
    /// Proposed SSSP parameters (a=0.50): flatter degree profile.
    Rmat2,
}

impl Family {
    /// The R-MAT parameter preset for this family.
    pub fn params(self) -> RmatParams {
        match self {
            Family::Rmat1 => RmatParams::RMAT1,
            Family::Rmat2 => RmatParams::RMAT2,
        }
    }

    /// Display name used in table output.
    pub fn name(self) -> &'static str {
        match self {
            Family::Rmat1 => "RMAT-1",
            Family::Rmat2 => "RMAT-2",
        }
    }
}

/// Graph 500 edge factor used throughout the paper.
pub const EDGE_FACTOR: usize = 16;

/// Weight range of the Graph 500 SSSP proposal.
pub const W_MAX: u32 = 255;

/// Build one synthetic graph of the given family and scale.
pub fn build_family(family: Family, scale: u32, seed: u64) -> Csr {
    let el = RmatGenerator::new(family.params(), scale, EDGE_FACTOR)
        .seed(seed)
        .generate_weighted(W_MAX);
    CsrBuilder::new().build(&el)
}

/// log2(vertices per rank) for weak-scaling sweeps (paper: 23).
pub fn scale_per_rank() -> u32 {
    std::env::var("SSSP_BENCH_SCALE_PER_RANK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

/// Largest rank count of weak-scaling sweeps (paper: 32768).
pub fn max_ranks() -> usize {
    std::env::var("SSSP_BENCH_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// The weak-scaling rank counts: powers of two up to [`max_ranks`].
pub fn weak_scaling_ranks() -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = 2usize;
    while p <= max_ranks() {
        v.push(p);
        p *= 2;
    }
    v
}

/// Which engine backend a figure binary drives. Both backends produce
/// bit-identical distances and — through the unified telemetry layer —
/// identical traces, so a figure regenerated on either must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The simulated BSP engine (`run_sssp`), with the α–β–γ cost model.
    Simulated,
    /// The real-thread engine (one OS thread per rank), traced.
    Threaded,
}

impl Backend {
    /// Display name used in table titles.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Simulated => "simulated",
            Backend::Threaded => "threaded",
        }
    }
}

/// Parse `--backend simulated|threaded` from the process arguments
/// (default: simulated). Unknown values abort with a usage message.
pub fn backend_from_args() -> Backend {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--backend" {
            return match it.next().map(String::as_str) {
                Some("simulated") => Backend::Simulated,
                Some("threaded") => Backend::Threaded,
                other => {
                    eprintln!(
                        "--backend takes 'simulated' or 'threaded', got {:?}",
                        other.unwrap_or("nothing")
                    );
                    std::process::exit(2);
                }
            };
        }
    }
    Backend::Simulated
}

/// Run `cfg` from `root` on the chosen backend and return the distances
/// plus the run trace the figure binaries consume (phase and bucket
/// records, message splits).
pub fn run_trace(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
    backend: Backend,
) -> (Vec<u64>, RunTrace) {
    match backend {
        Backend::Simulated => {
            let out = run_sssp(dg, root, cfg, model);
            let trace = RunTrace::from_run_stats(&out.stats, "simulated");
            (out.distances, trace)
        }
        Backend::Threaded => {
            let (out, trace) = threaded_delta_stepping_traced(dg, root, cfg, model);
            (out.distances, trace)
        }
    }
}

/// Pick `count` deterministic non-isolated roots.
pub fn pick_roots(g: &Csr, count: usize, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut rng = SplitMix::new(seed ^ 0xB00F);
    let mut roots = Vec::with_capacity(count);
    let mut guard = 0;
    while roots.len() < count && guard < 100 * count + 1000 {
        guard += 1;
        let v = rng.next_below(n as u64) as VertexId;
        if g.degree(v) > 0 && !roots.contains(&v) {
            roots.push(v);
        }
    }
    assert!(!roots.is_empty(), "no non-isolated vertex found");
    roots
}

/// Aggregate of several runs (different roots) of one configuration.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Number of roots aggregated.
    pub runs: usize,
    /// Mean traversal rate in GTEPS.
    pub gteps: f64,
    /// Mean relaxations per run.
    pub relaxations: f64,
    /// Mean relaxations on the busiest thread (imbalance signal).
    pub relax_per_thread: f64,
    /// Mean epochs (buckets processed) per run.
    pub buckets: f64,
    /// Mean phases (supersteps) per run.
    pub phases: f64,
    /// Mean simulated seconds in bucket/collective work.
    pub bucket_time_s: f64,
    /// Mean simulated seconds in relaxation work.
    pub relax_time_s: f64,
    /// Full output of the last run (for validation and spot checks).
    pub last: SsspOutput,
}

/// Run `cfg` from each root and average the headline metrics.
pub fn run_aggregate(
    dg: &DistGraph,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> Aggregate {
    assert!(!roots.is_empty());
    let mut gteps = 0.0;
    let mut relax = 0.0;
    let mut rpt = 0.0;
    let mut buckets = 0.0;
    let mut phases = 0.0;
    let mut bt = 0.0;
    let mut rt = 0.0;
    let mut last = None;
    for &root in roots {
        let out = run_sssp(dg, root, cfg, model);
        gteps += out.stats.gteps(dg.m_input_undirected);
        relax += out.stats.relaxations_total() as f64;
        rpt += out.stats.relaxations_per_thread();
        buckets += out.stats.buckets() as f64;
        phases += out.stats.phases as f64;
        bt += out.stats.ledger.bucket_s;
        rt += out.stats.ledger.relax_s;
        last = Some(out);
    }
    let k = roots.len() as f64;
    Aggregate {
        runs: roots.len(),
        gteps: gteps / k,
        relaxations: relax / k,
        relax_per_thread: rpt / k,
        buckets: buckets / k,
        phases: phases / k,
        bucket_time_s: bt / k,
        relax_time_s: rt / k,
        last: last.unwrap(),
    }
}

/// The full per-family analysis of Figs. 10 and 11: (a) GTEPS of
/// Del/Prune/OPT under weak scaling, (b) time breakdown, (c) relaxations per
/// thread, (d) bucket counts, (e) OPT for several Δ without load balancing,
/// (f) LB-OPT for the same Δ values.
pub fn family_analysis(family: Family, delta: u32, threads: usize) {
    let spr = scale_per_rank();
    let model = MachineModel::bgq_like();
    let ranks = weak_scaling_ranks();

    // (a) Del vs Prune vs OPT, weak scaling.
    let algos: Vec<(String, SsspConfig)> = vec![
        (format!("Del-{delta}"), SsspConfig::del(delta)),
        (format!("Prune-{delta}"), SsspConfig::prune(delta)),
        (format!("OPT-{delta}"), SsspConfig::opt(delta)),
    ];
    let mut rows_a = Vec::new();
    let mut last_graph = None;
    for &p in &ranks {
        let scale = spr + (p as f64).log2() as u32;
        let g = build_family(family, scale, 1);
        let dg = DistGraph::build(&g, p, threads);
        let roots = pick_roots(&g, 2, 23);
        let mut row = vec![p.to_string(), scale.to_string()];
        for (_, cfg) in &algos {
            let agg = run_aggregate(&dg, &roots, cfg, &model);
            row.push(format!("{:.3}", agg.gteps));
        }
        rows_a.push(row);
        last_graph = Some((g, p, scale));
    }
    let mut headers: Vec<String> = vec!["ranks".into(), "scale".into()];
    headers.extend(algos.iter().map(|(n, _)| n.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!("Fig a — {} weak scaling GTEPS", family.name()),
        &headers_ref,
        &rows_a,
    );

    // (b)–(d) at the largest configuration.
    let (g, p, scale) = last_graph.expect("at least one weak-scaling point");
    let dg = DistGraph::build(&g, p, threads);
    let roots = pick_roots(&g, 2, 23);
    let mut rows_bcd = Vec::new();
    for (name, cfg) in &algos {
        let agg = run_aggregate(&dg, &roots, cfg, &model);
        rows_bcd.push(vec![
            name.clone(),
            format!("{:.2e}", agg.bucket_time_s),
            format!("{:.2e}", agg.relax_time_s),
            human(agg.relax_per_thread),
            format!("{:.1}", agg.buckets),
        ]);
    }
    print_table(
        &format!("Fig b–d — {} scale {scale}, {p} ranks", family.name()),
        &[
            "algorithm",
            "BktTime (s)",
            "OthrTime (s)",
            "relax/thread",
            "buckets",
        ],
        &rows_bcd,
    );

    // (e)/(f): OPT vs LB-OPT for three Δ values, weak scaling.
    for (label, lb) in [("e — OPT (no LB)", false), ("f — LB-OPT", true)] {
        let deltas = [delta / 2, delta, delta * 2];
        let mut rows = Vec::new();
        for &p in &ranks {
            let scale = spr + (p as f64).log2() as u32;
            let g = build_family(family, scale, 1);
            let dg = DistGraph::build(&g, p, threads);
            let roots = pick_roots(&g, 2, 23);
            let mut row = vec![p.to_string(), scale.to_string()];
            for &d in &deltas {
                let cfg = if lb {
                    SsspConfig::lb_opt(d)
                } else {
                    SsspConfig::opt(d)
                };
                let agg = run_aggregate(&dg, &roots, &cfg, &model);
                row.push(format!("{:.3}", agg.gteps));
            }
            rows.push(row);
        }
        let hdrs: Vec<String> = ["ranks".to_string(), "scale".to_string()]
            .into_iter()
            .chain(deltas.iter().map(|d| format!("Δ={d}")))
            .collect();
        let hdrs_ref: Vec<&str> = hdrs.iter().map(String::as_str).collect();
        print_table(
            &format!("Fig {label} — {} weak scaling GTEPS", family.name()),
            &hdrs_ref,
            &rows,
        );
    }
}

/// Human-readable large number (paper style: "2.4 M", "31126").
pub fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} B", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e4 {
        format!("{:.1} K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Print an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names() {
        assert_eq!(Family::Rmat1.name(), "RMAT-1");
        assert_eq!(Family::Rmat2.name(), "RMAT-2");
    }

    #[test]
    fn build_family_is_deterministic() {
        let a = build_family(Family::Rmat2, 8, 1);
        let b = build_family(Family::Rmat2, 8, 1);
        assert_eq!(a.num_directed_edges(), b.num_directed_edges());
        assert_eq!(a.weight_sum(), b.weight_sum());
    }

    #[test]
    fn roots_are_valid() {
        let g = build_family(Family::Rmat1, 8, 2);
        let roots = pick_roots(&g, 4, 9);
        assert_eq!(roots.len(), 4);
        for r in roots {
            assert!(g.degree(r) > 0);
        }
    }

    #[test]
    fn aggregate_runs_all_roots() {
        let g = build_family(Family::Rmat2, 8, 3);
        let dg = DistGraph::build(&g, 4, 4);
        let roots = pick_roots(&g, 2, 5);
        let agg = run_aggregate(&dg, &roots, &SsspConfig::opt(25), &MachineModel::bgq_like());
        assert_eq!(agg.runs, 2);
        assert!(agg.gteps > 0.0);
        assert!(agg.relaxations > 0.0);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(950.0), "950");
        assert_eq!(human(2_400_000.0), "2.40 M");
        assert_eq!(human(3.1e9), "3.10 B");
    }
}
