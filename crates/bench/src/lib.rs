//! Shared harness for the figure/table reproduction binaries.
//!
//! Every `fig*`/`sec*` binary in `src/bin/` regenerates one table or figure
//! of the paper (see DESIGN.md's experiment index); this library holds the
//! common plumbing: graph family construction, weak-scaling sweeps, run
//! aggregation over multiple roots, and plain-text table output shaped like
//! the paper's figures.
//!
//! Scale-down convention: the paper fixes 2^23 vertices per node and scales
//! nodes 32 → 32768 (graph scales 28 → 39). This reproduction defaults to
//! 2^12 vertices per rank and ranks 2 → 64 (graph scales 13 → 18); the
//! `SSSP_BENCH_SCALE_PER_RANK` / `SSSP_BENCH_MAX_RANKS` environment
//! variables raise the scale for bigger machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph500;

use std::sync::Arc;

use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::{run_sssp, SsspOutput};
use sssp_core::{threaded_delta_stepping_traced, RunTrace};
use sssp_dist::DistGraph;
use sssp_graph::prng::SplitMix;
use sssp_graph::rmat::{RmatGenerator, RmatParams};
use sssp_graph::{Csr, CsrBuilder, VertexId};

/// The paper's two synthetic families (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Graph 500 BFS parameters (a=0.57): skewed, hub-heavy.
    Rmat1,
    /// Proposed SSSP parameters (a=0.50): flatter degree profile.
    Rmat2,
}

impl Family {
    /// The R-MAT parameter preset for this family.
    pub fn params(self) -> RmatParams {
        match self {
            Family::Rmat1 => RmatParams::RMAT1,
            Family::Rmat2 => RmatParams::RMAT2,
        }
    }

    /// Display name used in table output.
    pub fn name(self) -> &'static str {
        match self {
            Family::Rmat1 => "RMAT-1",
            Family::Rmat2 => "RMAT-2",
        }
    }
}

/// Graph 500 edge factor used throughout the paper.
pub const EDGE_FACTOR: usize = 16;

/// Weight range of the Graph 500 SSSP proposal.
pub const W_MAX: u32 = 255;

/// Build one synthetic graph of the given family and scale.
pub fn build_family(family: Family, scale: u32, seed: u64) -> Csr {
    let el = RmatGenerator::new(family.params(), scale, EDGE_FACTOR)
        .seed(seed)
        .generate_weighted(W_MAX);
    CsrBuilder::new().build(&el)
}

/// log2(vertices per rank) for weak-scaling sweeps (paper: 23).
pub fn scale_per_rank() -> u32 {
    std::env::var("SSSP_BENCH_SCALE_PER_RANK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

/// Largest rank count of weak-scaling sweeps (paper: 32768).
pub fn max_ranks() -> usize {
    std::env::var("SSSP_BENCH_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// The weak-scaling rank counts: powers of two up to [`max_ranks`].
pub fn weak_scaling_ranks() -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = 2usize;
    while p <= max_ranks() {
        v.push(p);
        p *= 2;
    }
    v
}

/// Which engine backend a figure binary drives. Both backends produce
/// bit-identical distances and — through the unified telemetry layer —
/// identical traces, so a figure regenerated on either must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The simulated BSP engine (`run_sssp`), with the α–β–γ cost model.
    Simulated,
    /// The real-thread engine (one OS thread per rank), traced.
    Threaded,
}

impl Backend {
    /// Display name used in table titles.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Simulated => "simulated",
            Backend::Threaded => "threaded",
        }
    }
}

/// Parse `--backend simulated|threaded` from the process arguments
/// (default: simulated). Unknown values abort with a usage message.
pub fn backend_from_args() -> Backend {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--backend" {
            return match it.next().map(String::as_str) {
                Some("simulated") => Backend::Simulated,
                Some("threaded") => Backend::Threaded,
                other => {
                    eprintln!(
                        "--backend takes 'simulated' or 'threaded', got {:?}",
                        other.unwrap_or("nothing")
                    );
                    std::process::exit(2);
                }
            };
        }
    }
    Backend::Simulated
}

/// Run `cfg` from `root` on the chosen backend and return the distances
/// plus the run trace the figure binaries consume (phase and bucket
/// records, message splits).
pub fn run_trace(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
    backend: Backend,
) -> (Vec<u64>, RunTrace) {
    match backend {
        Backend::Simulated => {
            let out = run_sssp(dg, root, cfg, model);
            let trace = RunTrace::from_run_stats(&out.stats, "simulated");
            (out.distances, trace)
        }
        Backend::Threaded => {
            let (out, trace) = threaded_delta_stepping_traced(dg, root, cfg, model);
            (out.distances, trace)
        }
    }
}

/// Pick `count` deterministic non-isolated roots.
pub fn pick_roots(g: &Csr, count: usize, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut rng = SplitMix::new(seed ^ 0xB00F);
    let mut roots = Vec::with_capacity(count);
    let mut guard = 0;
    while roots.len() < count && guard < 100 * count + 1000 {
        guard += 1;
        let v = rng.next_below(n as u64) as VertexId;
        if g.degree(v) > 0 && !roots.contains(&v) {
            roots.push(v);
        }
    }
    assert!(!roots.is_empty(), "no non-isolated vertex found");
    roots
}

/// Aggregate of several runs (different roots) of one configuration.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Number of roots aggregated.
    pub runs: usize,
    /// Mean traversal rate in GTEPS.
    pub gteps: f64,
    /// Mean relaxations per run.
    pub relaxations: f64,
    /// Mean relaxations on the busiest thread (imbalance signal).
    pub relax_per_thread: f64,
    /// Mean epochs (buckets processed) per run.
    pub buckets: f64,
    /// Mean phases (supersteps) per run.
    pub phases: f64,
    /// Mean simulated seconds in bucket/collective work.
    pub bucket_time_s: f64,
    /// Mean simulated seconds in relaxation work.
    pub relax_time_s: f64,
    /// Full output of the last run (for validation and spot checks).
    pub last: SsspOutput,
}

/// Run `cfg` from each root and average the headline metrics.
pub fn run_aggregate(
    dg: &DistGraph,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> Aggregate {
    assert!(!roots.is_empty());
    let mut gteps = 0.0;
    let mut relax = 0.0;
    let mut rpt = 0.0;
    let mut buckets = 0.0;
    let mut phases = 0.0;
    let mut bt = 0.0;
    let mut rt = 0.0;
    let mut last = None;
    for &root in roots {
        let out = run_sssp(dg, root, cfg, model);
        gteps += out.stats.gteps(dg.m_input_undirected);
        relax += out.stats.relaxations_total() as f64;
        rpt += out.stats.relaxations_per_thread();
        buckets += out.stats.buckets() as f64;
        phases += out.stats.phases as f64;
        bt += out.stats.ledger.bucket_s;
        rt += out.stats.ledger.relax_s;
        last = Some(out);
    }
    let k = roots.len() as f64;
    Aggregate {
        runs: roots.len(),
        gteps: gteps / k,
        relaxations: relax / k,
        relax_per_thread: rpt / k,
        buckets: buckets / k,
        phases: phases / k,
        bucket_time_s: bt / k,
        relax_time_s: rt / k,
        last: last.unwrap(),
    }
}

/// The telemetry series the figure binaries read off one run's trace:
/// relaxation phases, processed buckets/windows (hybrid tail included),
/// and total relaxation messages. All three are bit-identical between the
/// simulated and the threaded backend.
pub fn trace_series(trace: &RunTrace) -> (u64, u64, u64) {
    let phases = trace.phases.len() as u64;
    let buckets = trace.buckets.len() as u64 + u64::from(trace.tail.is_some());
    let relaxations = trace.phases.iter().map(|r| r.relaxations).sum();
    (phases, buckets, relaxations)
}

/// Mean `(phases, buckets, relaxations, supersteps, remote_msgs)` of one
/// configuration over several roots, read off [`run_trace`] telemetry.
fn trace_means(
    dg: &Arc<DistGraph>,
    roots: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
    backend: Backend,
) -> (f64, f64, f64, f64, f64) {
    let mut acc = (0u64, 0u64, 0u64, 0u64, 0u64);
    for &root in roots {
        let (_, trace) = run_trace(dg, root, cfg, model, backend);
        let (ph, b, r) = trace_series(&trace);
        acc.0 += ph;
        acc.1 += b;
        acc.2 += r;
        acc.3 += trace.supersteps;
        acc.4 += trace.remote_msgs;
    }
    let k = roots.len() as f64;
    (
        acc.0 as f64 / k,
        acc.1 as f64 / k,
        acc.2 as f64 / k,
        acc.3 as f64 / k,
        acc.4 as f64 / k,
    )
}

/// Static per-thread edge-load imbalance of a partitioned graph under the
/// §III-E intra-node balancer: every local vertex charges its degree to
/// its owner thread, except heavy vertices (degree > π) whose edges
/// spread evenly across the rank's threads. Returns the largest thread
/// load over the mean thread load — a structural property of graph +
/// partition + π, so it is identical on either backend.
pub fn thread_imbalance(dg: &DistGraph, pi: u64) -> f64 {
    let t = dg.threads_per_rank;
    let mut max_load = 0u64;
    let mut total = 0u64;
    let mut lanes = 0u64;
    for lg in &dg.locals {
        let mut loads = sssp_dist::ThreadLoads::new(t);
        for local in 0..lg.num_local() {
            let d = lg.degree(local) as u64;
            loads.charge(local, d, d > pi);
        }
        max_load = max_load.max(loads.max());
        total += loads.total();
        lanes += t as u64;
    }
    let mean = total as f64 / lanes.max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max_load as f64 / mean
    }
}

/// The full per-family analysis of Figs. 10 and 11, on either backend:
/// (a) relaxations of Del/Prune/OPT under weak scaling (the pruning
/// factor), (b)–(d) phase/superstep/bucket breakdown and relaxations per
/// thread at the largest configuration (the hybridization collapse),
/// (e) OPT's Δ sensitivity under weak scaling, and (f) the static
/// per-thread load imbalance with and without the §III-E balancer (the
/// LB-OPT story). Every column is either read off the backend-neutral
/// telemetry trace or a structural property of the partitioned graph, so
/// the tables are identical under `--backend simulated` and
/// `--backend threaded`.
pub fn family_analysis(family: Family, delta: u32, threads: usize, backend: Backend) {
    let spr = scale_per_rank();
    let model = MachineModel::bgq_like();
    let ranks = weak_scaling_ranks();

    // (a) Del vs Prune vs OPT, weak scaling: total relaxations.
    let algos: Vec<(String, SsspConfig)> = vec![
        (format!("Del-{delta}"), SsspConfig::del(delta)),
        (format!("Prune-{delta}"), SsspConfig::prune(delta)),
        (format!("OPT-{delta}"), SsspConfig::opt(delta)),
    ];
    let mut rows_a = Vec::new();
    let mut last_graph = None;
    for &p in &ranks {
        let scale = spr + (p as f64).log2() as u32;
        let g = build_family(family, scale, 1);
        let dg = Arc::new(DistGraph::build(&g, p, threads));
        let roots = pick_roots(&g, 2, 23);
        let mut row = vec![p.to_string(), scale.to_string()];
        for (_, cfg) in &algos {
            let (_, _, relax, _, _) = trace_means(&dg, &roots, cfg, &model, backend);
            row.push(human(relax));
        }
        rows_a.push(row);
        last_graph = Some((g, p, scale));
    }
    let mut headers: Vec<String> = vec!["ranks".into(), "scale".into()];
    headers.extend(algos.iter().map(|(n, _)| n.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Fig a — {} weak scaling relaxations, {} backend",
            family.name(),
            backend.name()
        ),
        &headers_ref,
        &rows_a,
    );

    // (b)–(d) at the largest configuration: full trace breakdown.
    let (g, p, scale) = last_graph.expect("at least one weak-scaling point");
    let dg = Arc::new(DistGraph::build(&g, p, threads));
    let roots = pick_roots(&g, 2, 23);
    let mut rows_bcd = Vec::new();
    for (name, cfg) in &algos {
        let (phases, buckets, relax, supersteps, remote) =
            trace_means(&dg, &roots, cfg, &model, backend);
        rows_bcd.push(vec![
            name.clone(),
            format!("{phases:.1}"),
            format!("{supersteps:.1}"),
            format!("{buckets:.1}"),
            human(relax / (p * threads) as f64),
            human(remote),
        ]);
    }
    print_table(
        &format!(
            "Fig b–d — {} scale {scale}, {p} ranks, {} backend",
            family.name(),
            backend.name()
        ),
        &[
            "algorithm",
            "phases",
            "supersteps",
            "buckets",
            "relax/thread",
            "remote msgs",
        ],
        &rows_bcd,
    );

    // (e) OPT's Δ sensitivity, weak scaling: total relaxations.
    let deltas = [delta / 2, delta, delta * 2];
    let mut rows_e = Vec::new();
    for &p in &ranks {
        let scale = spr + (p as f64).log2() as u32;
        let g = build_family(family, scale, 1);
        let dg = Arc::new(DistGraph::build(&g, p, threads));
        let roots = pick_roots(&g, 2, 23);
        let mut row = vec![p.to_string(), scale.to_string()];
        for &d in &deltas {
            let (_, _, relax, _, _) =
                trace_means(&dg, &roots, &SsspConfig::opt(d), &model, backend);
            row.push(human(relax));
        }
        rows_e.push(row);
    }
    let hdrs: Vec<String> = ["ranks".to_string(), "scale".to_string()]
        .into_iter()
        .chain(deltas.iter().map(|d| format!("Δ={d}")))
        .collect();
    let hdrs_ref: Vec<&str> = hdrs.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Fig e — {} OPT Δ sensitivity, relaxations, {} backend",
            family.name(),
            backend.name()
        ),
        &hdrs_ref,
        &rows_e,
    );

    // (f) the §III-E balancer, structurally: max/mean per-thread edge load
    // with balancing off (π = ∞) vs the auto π the LB-OPT preset resolves.
    let mut rows_f = Vec::new();
    for &p in &ranks {
        let scale = spr + (p as f64).log2() as u32;
        let g = build_family(family, scale, 1);
        let dg = DistGraph::build(&g, p, threads);
        let pi = sssp_core::engine::resolved_pi(
            sssp_core::config::IntraBalance::Auto,
            dg.m_directed,
            dg.num_vertices() as u64,
        );
        rows_f.push(vec![
            p.to_string(),
            scale.to_string(),
            format!("{:.2}", thread_imbalance(&dg, u64::MAX)),
            format!("{:.2}", thread_imbalance(&dg, pi)),
            pi.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Fig f — {} per-thread load imbalance (max/mean edge load)",
            family.name()
        ),
        &["ranks", "scale", "no LB", "LB (auto π)", "π"],
        &rows_f,
    );
}

/// Human-readable large number (paper style: "2.4 M", "31126").
pub fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} B", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e4 {
        format!("{:.1} K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Print an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names() {
        assert_eq!(Family::Rmat1.name(), "RMAT-1");
        assert_eq!(Family::Rmat2.name(), "RMAT-2");
    }

    #[test]
    fn build_family_is_deterministic() {
        let a = build_family(Family::Rmat2, 8, 1);
        let b = build_family(Family::Rmat2, 8, 1);
        assert_eq!(a.num_directed_edges(), b.num_directed_edges());
        assert_eq!(a.weight_sum(), b.weight_sum());
    }

    #[test]
    fn roots_are_valid() {
        let g = build_family(Family::Rmat1, 8, 2);
        let roots = pick_roots(&g, 4, 9);
        assert_eq!(roots.len(), 4);
        for r in roots {
            assert!(g.degree(r) > 0);
        }
    }

    #[test]
    fn aggregate_runs_all_roots() {
        let g = build_family(Family::Rmat2, 8, 3);
        let dg = DistGraph::build(&g, 4, 4);
        let roots = pick_roots(&g, 2, 5);
        let agg = run_aggregate(&dg, &roots, &SsspConfig::opt(25), &MachineModel::bgq_like());
        assert_eq!(agg.runs, 2);
        assert!(agg.gteps > 0.0);
        assert!(agg.relaxations > 0.0);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(950.0), "950");
        assert_eq!(human(2_400_000.0), "2.40 M");
        assert_eq!(human(3.1e9), "3.10 B");
    }
}
