//! Miniature versions of the figure harnesses, pinned as tests: each
//! asserts the *shape* its figure is about, at a scale small enough for CI.

use sssp_bench::graph500::{evaluate_bfs, evaluate_sssp, spec_validate};
use sssp_bench::*;
use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_dist::DistGraph;
use sssp_graph::gen::PullExample;
use sssp_graph::CsrBuilder;

fn model() -> MachineModel {
    MachineModel::bgq_like()
}

/// Fig 6: the worked example's exact counts (40 all-push; 30 → 10 when the
/// clique epoch pulls).
#[test]
fn fig06_counts_are_exact() {
    let g = CsrBuilder::new().build(&PullExample::default().build());
    let dg = DistGraph::build(&g, 4, 1);
    use LongPhaseMode::*;
    let run = |seq: Vec<LongPhaseMode>| {
        let cfg = SsspConfig::del(5)
            .with_ios(false)
            .with_direction(DirectionPolicy::Forced(seq));
        run_sssp(&dg, 0, &cfg, &model())
    };
    let push = run(vec![Push, Push, Push]);
    let pull = run(vec![Push, Pull, Push]);
    assert_eq!(push.stats.relaxations_total(), 40);
    assert_eq!(pull.stats.relaxations_total(), 20);
    assert_eq!(push.stats.phase_records[1].relaxations, 30);
    assert_eq!(pull.stats.phase_records[1].relaxations, 10);
    assert_eq!(push.distances, pull.distances);
}

/// Fig 7: at least one bucket prefers push and at least one prefers pull on
/// a skewed graph, and the heuristic agrees with the cheaper side where the
/// margin is clear.
#[test]
fn fig07_crossover_exists() {
    let csr = build_family(Family::Rmat1, 11, 1);
    let dg = DistGraph::build(&csr, 8, 4);
    let root = pick_roots(&csr, 1, 3)[0];
    let out = run_sssp(&dg, root, &SsspConfig::prune(25), &model());
    let modes: Vec<LongPhaseMode> = out.stats.bucket_records.iter().map(|r| r.mode).collect();
    assert!(modes.contains(&LongPhaseMode::Push), "no push bucket");
    assert!(modes.contains(&LongPhaseMode::Pull), "no pull bucket");
}

/// §IV-G in miniature: the heuristic matches the best of all 2^k forced
/// sequences.
#[test]
fn heuristic_is_optimal_at_small_scale() {
    let csr = build_family(Family::Rmat2, 10, 1);
    let dg = DistGraph::build(&csr, 4, 4);
    let root = pick_roots(&csr, 1, 7)[0];
    let base = SsspConfig::opt(25);
    let heur = run_sssp(&dg, root, &base, &model());
    let k = heur.stats.bucket_records.len();
    assert!(k <= 10, "bucket count {k} too large for exhaustive test");
    let mut best = f64::INFINITY;
    for mask in 0..(1usize << k) {
        let seq: Vec<LongPhaseMode> = (0..k)
            .map(|i| {
                if mask >> i & 1 == 1 {
                    LongPhaseMode::Pull
                } else {
                    LongPhaseMode::Push
                }
            })
            .collect();
        let out = run_sssp(
            &dg,
            root,
            &base.clone().with_direction(DirectionPolicy::Forced(seq)),
            &model(),
        );
        assert_eq!(out.distances, heur.distances);
        best = best.min(out.stats.ledger.total_s());
    }
    let gap = (heur.stats.ledger.total_s() - best) / best;
    assert!(
        gap <= 0.01,
        "heuristic {:.3e} vs best {best:.3e}",
        heur.stats.ledger.total_s()
    );
}

/// Graph 500 protocol: SSSP within a small factor of BFS, both spec-valid.
#[test]
fn graph500_protocol_shape() {
    let csr = build_family(Family::Rmat1, 10, 1);
    let dg = DistGraph::build(&csr, 4, 4);
    let roots = pick_roots(&csr, 3, 9);
    let bfs = evaluate_bfs(&csr, &dg, &roots, &model(), true);
    let sssp = evaluate_sssp(&csr, &dg, &roots, &SsspConfig::opt(25), &model(), true);
    let ratio = bfs.harmonic_mean_teps() / sssp.harmonic_mean_teps();
    assert!(
        (1.0..8.0).contains(&ratio),
        "BFS/SSSP ratio {ratio:.1} out of band"
    );

    let out = run_sssp(&dg, roots[0], &SsspConfig::opt(25), &model());
    spec_validate(&csr, roots[0], &out.distances).expect("spec validation");
}

/// The weak-scaling direction of Figs 9–12: more ranks at fixed per-rank
/// work must increase simulated GTEPS for the optimized algorithm.
#[test]
fn weak_scaling_direction() {
    let gteps = |p: usize| {
        let scale = 9 + (p as f64).log2() as u32;
        let csr = build_family(Family::Rmat1, scale, 1);
        let dg = DistGraph::build(&csr, p, 4);
        let root = pick_roots(&csr, 1, 3)[0];
        let out = run_sssp(&dg, root, &SsspConfig::opt(25), &model());
        out.stats.gteps(dg.m_input_undirected)
    };
    let g2 = gteps(2);
    let g16 = gteps(16);
    assert!(g16 > 2.0 * g2, "no weak scaling: {g2:.3} → {g16:.3}");
}

/// Fig 8's driver at test scale: the RMAT-1/RMAT-2 max-degree gap.
#[test]
fn degree_gap_between_families() {
    let d1 = build_family(Family::Rmat1, 11, 1).max_degree();
    let d2 = build_family(Family::Rmat2, 11, 1).max_degree();
    assert!(d1 > 4 * d2, "RMAT-1 max degree {d1} not ≫ RMAT-2 {d2}");
}
