//! Packet-level wire accounting.
//!
//! Blue Gene/Q's network moves data in torus packets (32-byte header, up to
//! 512 bytes of payload); the SPI layer the paper uses coalesces small
//! active messages into these packets at the injection FIFOs. This module
//! models that framing: given a per-destination message stream, it reports
//! the wire bytes including per-packet headers — which is what makes
//! tiny-message protocols (like un-coalesced relaxations) more expensive
//! than their payload suggests.

/// Packet framing parameters.
///
/// # Examples
///
/// ```
/// use sssp_comm::packet::PacketConfig;
///
/// let bgq = PacketConfig::bgq();
/// // 32 16-byte relaxations coalesce into one 512-byte packet, plus the
/// // stream's 8-byte sorted-run descriptor.
/// assert_eq!(bgq.wire_bytes(32, 16), 512 + 32 + 8);
/// // Un-coalesced, each message pays its own header (and the degenerate
/// // per-message framing carries no run descriptor).
/// assert_eq!(PacketConfig::per_message(16).wire_bytes(32, 16), 32 * (16 + 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketConfig {
    /// Maximum payload bytes per packet.
    pub payload_bytes: usize,
    /// Header (and trailer) overhead per packet.
    pub header_bytes: usize,
    /// Per-stream sorted-run descriptor: each (src, dst) message stream of
    /// a superstep ships as one target-sorted run, announced by a fixed
    /// descriptor (run length + base target) ahead of the payload. Charged
    /// once per non-empty stream, inside [`PacketConfig::wire_bytes`], so
    /// every exchange path accounts for it identically.
    pub run_header_bytes: usize,
}

impl PacketConfig {
    /// Blue Gene/Q torus packets: 512-byte payload chunks, 32-byte header,
    /// 8-byte sorted-run descriptor per stream.
    pub fn bgq() -> Self {
        PacketConfig {
            payload_bytes: 512,
            header_bytes: 32,
            run_header_bytes: 8,
        }
    }

    /// Degenerate configuration: one message per packet (no coalescing,
    /// no run framing).
    pub fn per_message(msg_bytes: usize) -> Self {
        PacketConfig {
            payload_bytes: msg_bytes.max(1),
            header_bytes: 32,
            run_header_bytes: 0,
        }
    }

    /// Wire bytes for `count` messages of `msg_bytes` each sent to one
    /// destination, assuming perfect coalescing into maximal packets. A
    /// non-empty stream also carries its sorted-run descriptor.
    pub fn wire_bytes(&self, count: u64, msg_bytes: usize) -> u64 {
        if count == 0 {
            return 0;
        }
        let payload = count * msg_bytes as u64;
        let packets = payload.div_ceil(self.payload_bytes as u64);
        payload + packets * self.header_bytes as u64 + self.run_header_bytes as u64
    }

    /// Fractional overhead of the framing for a given message size at
    /// full coalescing (`header / payload` amortized).
    pub fn overhead_factor(&self, msg_bytes: usize) -> f64 {
        let full = self.wire_bytes(10_000, msg_bytes) as f64;
        full / (10_000.0 * msg_bytes as f64) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_messages_zero_bytes() {
        assert_eq!(PacketConfig::bgq().wire_bytes(0, 16), 0);
    }

    #[test]
    fn single_small_message_pays_full_header() {
        let c = PacketConfig::bgq();
        assert_eq!(c.wire_bytes(1, 16), 16 + 32 + 8);
    }

    #[test]
    fn coalescing_amortizes_headers() {
        let c = PacketConfig::bgq();
        // 32 messages × 16B = 512B = exactly one packet (+ run descriptor).
        assert_eq!(c.wire_bytes(32, 16), 512 + 32 + 8);
        // 33 messages spill into a second packet.
        assert_eq!(c.wire_bytes(33, 16), 528 + 64 + 8);
    }

    #[test]
    fn run_descriptor_charged_once_per_stream() {
        let c = PacketConfig::bgq();
        // The descriptor is flat per stream: doubling the messages doubles
        // payload+headers but not the run charge.
        let one = c.wire_bytes(32, 16);
        let two = c.wire_bytes(64, 16);
        assert_eq!(two - one, 512 + 32);
        // And an empty stream carries nothing at all.
        assert_eq!(c.wire_bytes(0, 16), 0);
    }

    #[test]
    fn per_message_framing_is_much_worse() {
        let coalesced = PacketConfig::bgq();
        let naive = PacketConfig::per_message(16);
        let k = 1000;
        assert!(naive.wire_bytes(k, 16) > 2 * coalesced.wire_bytes(k, 16));
    }

    #[test]
    fn overhead_factor_shrinks_with_coalescing() {
        let c = PacketConfig::bgq();
        let amortized = c.overhead_factor(16);
        assert!(amortized < 0.08, "amortized overhead {amortized}");
        let naive = PacketConfig::per_message(16).overhead_factor(16);
        assert!(naive > 1.9, "per-message overhead {naive}");
    }

    #[test]
    fn large_messages_span_packets() {
        let c = PacketConfig::bgq();
        // One 2000-byte message needs 4 packets.
        assert_eq!(c.wire_bytes(1, 2000), 2000 + 4 * 32 + 8);
    }
}
