//! α–β–γ machine cost model.
//!
//! The substitution for the paper's Blue Gene/Q wall clock: simulated time is
//! accumulated from the quantities the runtime counts exactly.
//!
//! Per superstep the model charges, BSP style,
//!
//! ```text
//!   t = γ · max_rank(max_thread_ops)        (compute, slowest thread)
//!     + β · max_rank(bytes sent or recv)    (communication, bottleneck rank)
//!     + α                                    (injection / barrier latency)
//! ```
//!
//! and per collective `α · ⌈log₂ P⌉` (tree implementation). Time is split
//! into the paper's two groups (Fig 10b/11b): **BktTime** — bucket and
//! active-set bookkeeping (scans + the associated collectives) — and
//! **OtherTime** — relaxation compute and communication.
//!
//! Calibration rationale (`bgq_like`): Blue Gene/Q's SPI layer gives every
//! thread a private injection queue, so the dominant per-relaxation cost is
//! the thread-serial handling (γ = 20 ns ≈ the paper's "tens of millions of
//! messages per second per node" divided over 64 threads), with the shared
//! network link (β = 0.5 ns/B) second and collective latency (α = 5 µs)
//! third. A scale-35 RMAT-1 OPT run on 4096 simulated nodes then lands
//! within a small factor of the paper's 650 GTEPS; more importantly, the
//! γ-vs-β balance reproduces which optimization helps where (thread
//! balancing attacks γ·max-thread-ops, pruning attacks both γ and β,
//! hybridization attacks α-dominated bucket overhead).

/// Machine parameters. All times in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Per-superstep latency and per-collective tree-stage latency.
    pub alpha_s: f64,
    /// Seconds per byte of cross-rank traffic at the bottleneck rank.
    pub beta_s_per_byte: f64,
    /// Seconds per relaxation-class operation on one thread.
    pub gamma_s_per_op: f64,
    /// Seconds per vertex scanned during bucket bookkeeping (cheaper than a
    /// relaxation: a scan is a read + branch, no atomics or messages).
    pub scan_s_per_op: f64,
    /// Logical threads per rank (Blue Gene/Q used 64).
    pub threads_per_rank: usize,
    /// Optional packet framing applied to every exchange (per-packet header
    /// overhead on the wire; see [`crate::packet`]). `None` charges raw
    /// payload bytes.
    pub packet: Option<crate::packet::PacketConfig>,
}

impl MachineModel {
    /// Parameters loosely calibrated to Blue Gene/Q (see module docs).
    pub fn bgq_like() -> Self {
        MachineModel {
            alpha_s: 5e-6,
            beta_s_per_byte: 5e-10,
            gamma_s_per_op: 2e-8,
            scan_s_per_op: 1e-9,
            threads_per_rank: 64,
            packet: None,
        }
    }

    /// [`Self::bgq_like`] with the torus packet framing enabled — wire
    /// bytes then include the 32-byte-per-512-byte header overhead the SPI
    /// coalescing layer pays.
    pub fn bgq_like_packetized() -> Self {
        MachineModel {
            packet: Some(crate::packet::PacketConfig::bgq()),
            ..Self::bgq_like()
        }
    }

    /// A unit model for tests: every charge adds a round number.
    pub fn unit() -> Self {
        MachineModel {
            alpha_s: 1.0,
            beta_s_per_byte: 1.0,
            gamma_s_per_op: 1.0,
            scan_s_per_op: 1.0,
            threads_per_rank: 1,
            packet: None,
        }
    }
}

/// Which time group a charge belongs to (the paper's Fig 10b split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeClass {
    /// Bucket processing overheads: active-set collection, next-bucket
    /// search, termination checks.
    Bucket,
    /// Relaxation processing and communication.
    Relax,
}

/// Accumulates simulated time for one run.
#[derive(Debug, Clone, Default)]
pub struct TimeLedger {
    /// Simulated seconds of bucket scans and collectives.
    pub bucket_s: f64,
    /// Simulated seconds of relaxation and message work.
    pub relax_s: f64,
}

impl TimeLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total simulated seconds across all time classes.
    pub fn total_s(&self) -> f64 {
        self.bucket_s + self.relax_s
    }

    fn add(&mut self, class: TimeClass, secs: f64) {
        match class {
            TimeClass::Bucket => self.bucket_s += secs,
            TimeClass::Relax => self.relax_s += secs,
        }
    }

    /// Charge one superstep: `max_thread_ops` is the largest per-thread
    /// operation count on any rank, `max_rank_bytes` the larger of the
    /// bottleneck send/receive byte counts.
    pub fn charge_superstep(
        &mut self,
        m: &MachineModel,
        class: TimeClass,
        max_thread_ops: u64,
        max_rank_bytes: u64,
    ) {
        let t = m.gamma_s_per_op * max_thread_ops as f64
            + m.beta_s_per_byte * max_rank_bytes as f64
            + m.alpha_s;
        self.add(class, t);
    }

    /// Charge a scan pass (bucket bookkeeping): `max_rank_scanned` vertices
    /// examined on the busiest rank, spread over its threads.
    pub fn charge_scan(&mut self, m: &MachineModel, class: TimeClass, max_rank_scanned: u64) {
        let per_thread = max_rank_scanned.div_ceil(m.threads_per_rank.max(1) as u64);
        self.add(class, m.scan_s_per_op * per_thread as f64);
    }

    /// Charge one collective over `p` ranks.
    pub fn charge_collective(&mut self, m: &MachineModel, class: TimeClass, p: usize) {
        let stages = usize::BITS - p.max(1).leading_zeros(); // ⌈log₂ p⌉ + O(1)
        self.add(class, m.alpha_s * stages as f64);
    }
}

/// Traversed edges per second for `m_edges` (the benchmark's input edge
/// count) processed in `total_s` simulated seconds.
pub fn teps(m_edges: u64, total_s: f64) -> f64 {
    if total_s <= 0.0 {
        return 0.0;
    }
    m_edges as f64 / total_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_charge_is_linear() {
        let m = MachineModel::unit();
        let mut l = TimeLedger::new();
        l.charge_superstep(&m, TimeClass::Relax, 10, 5);
        // 10 ops + 5 bytes + 1 latency = 16
        assert!((l.relax_s - 16.0).abs() < 1e-12);
        assert_eq!(l.bucket_s, 0.0);
    }

    #[test]
    fn collective_charge_scales_logarithmically() {
        let m = MachineModel::unit();
        let mut l = TimeLedger::new();
        l.charge_collective(&m, TimeClass::Bucket, 8);
        let t8 = l.bucket_s;
        let mut l2 = TimeLedger::new();
        l2.charge_collective(&m, TimeClass::Bucket, 1024);
        assert!(l2.bucket_s > t8);
        assert!(l2.bucket_s < 4.0 * t8);
    }

    #[test]
    fn scan_spreads_over_threads() {
        let mut m = MachineModel::unit();
        m.threads_per_rank = 4;
        let mut l = TimeLedger::new();
        l.charge_scan(&m, TimeClass::Bucket, 100);
        assert!((l.bucket_s - 25.0).abs() < 1e-12);
    }

    #[test]
    fn teps_basic() {
        assert!((teps(1_000_000, 0.5) - 2_000_000.0).abs() < 1e-6);
        assert_eq!(teps(10, 0.0), 0.0);
    }

    #[test]
    fn total_is_sum_of_classes() {
        let m = MachineModel::unit();
        let mut l = TimeLedger::new();
        l.charge_superstep(&m, TimeClass::Relax, 1, 0);
        l.charge_collective(&m, TimeClass::Bucket, 2);
        assert!((l.total_s() - (l.relax_s + l.bucket_s)).abs() < 1e-12);
        assert!(l.bucket_s > 0.0 && l.relax_s > 0.0);
    }

    #[test]
    fn bgq_like_is_sane() {
        let m = MachineModel::bgq_like();
        assert!(m.alpha_s > m.beta_s_per_byte);
        assert!(m.gamma_s_per_op > m.scan_s_per_op);
        assert_eq!(m.threads_per_rank, 64);
    }
}
