//! A real concurrent message-passing backend.
//!
//! The main runtime simulates ranks inside one address space for
//! determinism and accounting. This module provides the complementary
//! proof: the same bulk-synchronous programs run unchanged on *actual*
//! OS threads exchanging messages through channels, one thread per rank,
//! with no shared mutable state beyond the collective rendezvous. Kernels
//! ported to [`RankCtx`] (see `sssp-core`'s threaded variants) are tested
//! to produce bit-identical results to their simulated counterparts —
//! evidence that the simulator's semantics match a real distributed
//! execution.
//!
//! Determinism under true concurrency comes from the same rule real MPI
//! programs use: inboxes are ordered by source rank, never by arrival
//! time.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};

use crate::Rank;

/// Per-rank context handed to the rank's thread. `M` is the message type
/// of this world.
pub struct RankCtx<M> {
    rank: Rank,
    p: usize,
    /// `senders[dst]` — shared producer side of dst's inbox channel.
    senders: Vec<Sender<(Rank, Vec<M>)>>,
    inbox: Receiver<(Rank, Vec<M>)>,
    barrier: Arc<Barrier>,
    /// Rendezvous buffer for collectives (one slot per rank).
    slots: Arc<Mutex<Vec<Option<u64>>>>,
}

impl<M: Send> RankCtx<M> {
    #[inline]
    /// This thread’s rank id.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    #[inline]
    /// Total number of ranks in the run.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Bulk-synchronous exchange: send `out[dst]` to every rank, receive
    /// one batch from every rank, deliver concatenated in source order.
    /// Blocks until all ranks have exchanged.
    pub fn exchange(&self, out: Vec<Vec<M>>) -> Vec<M> {
        assert_eq!(out.len(), self.p, "outbox fan-out mismatch");
        for (dst, msgs) in out.into_iter().enumerate() {
            // A peer disappearing mid-superstep is unrecoverable by design
            // (SPMD contract), hence the allowed panic below.
            self.senders[dst]
                .send((self.rank, msgs))
                .expect("peer hung up"); // sssp-lint: allow(no-panic-hot-path): SPMD contract
        }
        let mut batches: Vec<(Rank, Vec<M>)> =
            // sssp-lint: allow(no-panic-hot-path): same SPMD contract as above.
            (0..self.p).map(|_| self.inbox.recv().expect("peer hung up")).collect();
        batches.sort_by_key(|&(src, _)| src);
        let inbox: Vec<M> = batches.into_iter().flat_map(|(_, m)| m).collect();
        // Close the superstep: no rank may start the next exchange before
        // every rank has drained this one.
        self.barrier.wait();
        inbox
    }

    /// Allreduce over one `u64` contribution per rank.
    pub fn allreduce<F: Fn(&[u64]) -> u64>(&self, value: u64, combine: F) -> u64 {
        {
            // sssp-lint: allow(no-panic-hot-path): poisoned = a rank already
            // panicked; propagating the abort is the correct SPMD behavior.
            let mut slots = self.slots.lock().expect("collective mutex poisoned");
            slots[self.rank] = Some(value);
        }
        self.barrier.wait();
        let result = {
            // sssp-lint: allow(no-panic-hot-path): see poisoning note above.
            let slots = self.slots.lock().expect("collective mutex poisoned");
            // Every rank filled its slot before the barrier; a hole means
            // the barrier itself is broken, hence the allowed panic below.
            let vals: Vec<u64> = slots
                .iter()
                .map(|s| s.expect("missing contribution")) // sssp-lint: allow(no-panic-hot-path): barrier guarantees slots
                .collect();
            combine(&vals)
        };
        // Second barrier before anyone clears their slot for reuse.
        self.barrier.wait();
        {
            // sssp-lint: allow(no-panic-hot-path): see poisoning note above.
            let mut slots = self.slots.lock().expect("collective mutex poisoned");
            slots[self.rank] = None;
        }
        self.barrier.wait();
        result
    }

    /// Logical-or allreduce.
    pub fn any(&self, flag: bool) -> bool {
        self.allreduce(u64::from(flag), |vals| {
            u64::from(vals.iter().any(|&v| v != 0))
        }) != 0
    }
}

/// Spawn `p` rank threads, run `body` on each, and collect the results in
/// rank order. `body` receives the rank's [`RankCtx`] and drives as many
/// supersteps as it likes; all ranks must execute the same sequence of
/// `exchange`/collective calls (the usual SPMD contract).
pub fn run_threaded<M, R, F>(p: usize, body: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(RankCtx<M>) -> R + Send + Sync + 'static,
{
    assert!(p > 0);
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..p).map(|_| channel()).unzip();
    let barrier = Arc::new(Barrier::new(p));
    let slots = Arc::new(Mutex::new(vec![None; p]));
    let body = Arc::new(body);

    let mut handles = Vec::with_capacity(p);
    for (rank, inbox) in receivers.into_iter().enumerate() {
        let ctx = RankCtx {
            rank,
            p,
            senders: senders.clone(),
            inbox,
            barrier: Arc::clone(&barrier),
            slots: Arc::clone(&slots),
        };
        let body = Arc::clone(&body);
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn(move || body(ctx))
                // sssp-lint: allow(no-panic-hot-path): setup, not a hot path;
                // no ranks have started yet, so aborting is clean.
                .expect("failed to spawn rank thread"),
        );
    }
    drop(senders);
    // Re-raise a rank panic on the driver thread instead of returning
    // partial results, hence the allowed panic below.
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked")) // sssp-lint: allow(no-panic-hot-path): re-raise rank panic
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_routes_and_orders_by_source() {
        let inboxes = run_threaded(4, |ctx: RankCtx<(usize, usize)>| {
            let p = ctx.num_ranks();
            let out: Vec<Vec<(usize, usize)>> = (0..p).map(|dst| vec![(ctx.rank(), dst)]).collect();
            ctx.exchange(out)
        });
        for (dst, inbox) in inboxes.iter().enumerate() {
            let expect: Vec<(usize, usize)> = (0..4).map(|src| (src, dst)).collect();
            assert_eq!(inbox, &expect);
        }
    }

    #[test]
    fn multiple_supersteps_stay_in_lockstep() {
        let results = run_threaded(3, |ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut acc = ctx.rank() as u64;
            for _ in 0..5 {
                // Everyone broadcasts its accumulator; each rank sums what
                // it hears.
                let out: Vec<Vec<u64>> = (0..p).map(|_| vec![acc]).collect();
                let inbox = ctx.exchange(out);
                acc = inbox.iter().sum();
            }
            acc
        });
        // All ranks converge to the same value: sum is symmetric.
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        // Round 1: every rank holds 0+1+2 = 3; then 9; 27; 81; 243.
        assert_eq!(results[0], 243);
    }

    #[test]
    fn allreduce_combines_contributions() {
        let sums = run_threaded(5, |ctx: RankCtx<()>| {
            ctx.allreduce(ctx.rank() as u64 + 1, |vals| vals.iter().sum())
        });
        assert!(sums.iter().all(|&s| s == 15));
        let mins = run_threaded(5, |ctx: RankCtx<()>| {
            ctx.allreduce(10 - ctx.rank() as u64, |vals| *vals.iter().min().unwrap())
        });
        assert!(mins.iter().all(|&m| m == 6));
    }

    #[test]
    fn any_detects_single_flag() {
        let out = run_threaded(4, |ctx: RankCtx<()>| ctx.any(ctx.rank() == 2));
        assert!(out.iter().all(|&b| b));
        let out = run_threaded(4, |ctx: RankCtx<()>| ctx.any(false));
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn collectives_and_exchanges_interleave() {
        let results = run_threaded(3, |ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut x = ctx.rank() as u64;
            loop {
                let out: Vec<Vec<u64>> = (0..p).map(|_| vec![x]).collect();
                let inbox = ctx.exchange(out);
                x = *inbox.iter().max().unwrap();
                if ctx.any(x >= 2) {
                    break;
                }
            }
            x
        });
        assert_eq!(results, vec![2, 2, 2]);
    }

    #[test]
    fn single_rank_world() {
        let out = run_threaded(1, |ctx: RankCtx<u32>| {
            let inbox = ctx.exchange(vec![vec![7, 8]]);
            (inbox, ctx.allreduce(9, |v| v[0]))
        });
        assert_eq!(out[0].0, vec![7, 8]);
        assert_eq!(out[0].1, 9);
    }
}
