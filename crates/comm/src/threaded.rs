//! A real concurrent message-passing backend.
//!
//! The main runtime simulates ranks inside one address space for
//! determinism and accounting. This module provides the complementary
//! proof: the same bulk-synchronous programs run unchanged on *actual*
//! OS threads exchanging messages through channels, one thread per rank,
//! with no shared mutable state beyond the collective rendezvous. Kernels
//! ported to [`RankCtx`] (see `sssp-core`'s threaded variants) are tested
//! to produce bit-identical results to their simulated counterparts —
//! evidence that the simulator's semantics match a real distributed
//! execution.
//!
//! Determinism under true concurrency comes from the same rule real MPI
//! programs use: inboxes are ordered by source rank, never by arrival
//! time.

use std::cell::Cell;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};

use crate::fingerprint::{
    fp_mix, FP_EXCHANGE, FP_REDUCE, FP_REDUCE_ANY, FP_REDUCE_MAX, FP_REDUCE_MIN, FP_REDUCE_SUM,
    FP_WINDOW,
};
use crate::lockorder;
use crate::packet::PacketConfig;
use crate::Rank;

/// Smallest buffer capacity [`RankCtx::trim_spares`] will ever release. A
/// quiet epoch (empty buckets, pull-only phases) observes a zero high-water
/// mark; without a floor that computed `limit = 0` and dumped the *entire*
/// spare pool, forcing every lane to reallocate on the next busy epoch.
pub const SPARE_CAPACITY_FLOOR: usize = 64;

/// One rank's transport counts for a single pooled exchange, as seen from
/// that rank: messages it sent to itself (`sent_local`), messages it put on
/// the wire (`sent_remote`, with `sent_remote_bytes` of framed traffic) and
/// the framed bytes it received from other ranks (`recv_remote_bytes`).
/// Summing `sent_*` over all ranks reproduces the global per-superstep
/// accounting of [`crate::exchange::exchange_pooled`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeCounts {
    /// Messages this rank addressed to itself (never on the wire).
    pub sent_local: u64,
    /// Messages this rank sent to other ranks.
    pub sent_remote: u64,
    /// Wire bytes of this rank's remote sends (packet framing applied).
    pub sent_remote_bytes: u64,
    /// Wire bytes this rank received from other ranks.
    pub recv_remote_bytes: u64,
}

/// Per-rank context handed to the rank's thread. `M` is the message type
/// of this world.
pub struct RankCtx<M> {
    rank: Rank,
    p: usize,
    /// `senders[dst]` — shared producer side of dst's inbox channel.
    senders: Vec<Sender<(Rank, Vec<M>)>>,
    inbox: Receiver<(Rank, Vec<M>)>,
    barrier: Arc<Barrier>,
    /// Rendezvous buffer for collectives (one slot per rank).
    slots: Arc<Mutex<Vec<Option<u64>>>>,
    /// Recycled transport buffers for [`RankCtx::exchange_pooled`]: the `p`
    /// batches drained at superstep `s` become the send buffers of `s + 1`,
    /// so the pool never holds more than `p` vectors.
    spare: Vec<Vec<M>>,
    /// Reusable receive staging area (batches sorted by source rank).
    batches: Vec<(Rank, Vec<M>)>,
    /// Largest batch moved through [`RankCtx::exchange_pooled`] since the
    /// last [`RankCtx::trim_spares`] — the spare pool's high-water mark.
    watermark: usize,
    /// Largest batch moved through [`RankCtx::exchange_pooled`] since the
    /// last [`RankCtx::finish_query`] — the *query*-scoped high-water mark.
    /// Unlike `watermark` it survives per-epoch trims, so the end-of-query
    /// trim reflects the whole query's traffic, not just its last epoch.
    query_watermark: usize,
    /// Rolling collective-schedule fingerprint (see [`crate::fingerprint`]).
    /// `Cell` because several collectives take `&self`; the value is strictly
    /// rank-private.
    fp: Cell<u64>,
    /// Epoch tag mixed into the fingerprint; advanced by the kernel through
    /// [`RankCtx::set_epoch`] at bucket boundaries.
    epoch: Cell<u64>,
    /// Runtime twin of the static lock-order model: records this thread's
    /// actual acquisition order and checks it against
    /// [`lockorder::STATIC_EDGES`] when the context is dropped.
    lock_rec: lockorder::Recorder,
}

impl<M: Send> RankCtx<M> {
    #[inline]
    /// This thread’s rank id.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    #[inline]
    /// Total number of ranks in the run.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Fold one collective of `kind` into this rank's schedule fingerprint.
    #[inline]
    fn note_collective(&self, kind: u64) {
        self.fp.set(fp_mix(self.fp.get(), kind, self.epoch.get()));
    }

    /// Set the epoch tag mixed into subsequent fingerprint updates. Kernels
    /// call this at bucket boundaries so a skipped epoch shows up as a
    /// fingerprint divergence even when the collective kinds happen to line
    /// up.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.set(epoch);
    }

    /// This rank's rolling collective-schedule fingerprint.
    pub fn schedule_fingerprint(&self) -> u64 {
        self.fp.get()
    }

    /// Debug-build cross-rank check that every rank has executed the same
    /// collective schedule: min- and max-reduce the fingerprints and assert
    /// they agree. A no-op in release builds. The gate is compile-time
    /// uniform across ranks (all threads run the same binary), so the extra
    /// collectives cannot themselves skew the schedule.
    pub fn assert_schedule_uniform(&self) {
        #[cfg(debug_assertions)]
        {
            let fp = self.fp.get();
            let lo = self.allreduce_inner(fp, |vals| vals.iter().copied().min().unwrap_or(0));
            let hi = self.allreduce_inner(fp, |vals| vals.iter().copied().max().unwrap_or(0));
            assert_eq!(
                lo,
                hi,
                "collective schedule diverged across ranks (rank {} fp {fp:#018x}, epoch {})",
                self.rank,
                self.epoch.get()
            );
        }
    }

    /// Test hook: xor `salt` into this rank's fingerprint so differential
    /// tests can prove [`RankCtx::assert_schedule_uniform`] actually fires.
    #[cfg(debug_assertions)]
    pub fn perturb_fingerprint(&self, salt: u64) {
        self.fp.set(self.fp.get() ^ salt);
    }

    /// Test hook: seed a held→acquired pair into the runtime lock-order
    /// twin, as if this rank had nested the two acquisitions, so
    /// differential tests can prove the drop-time consistency check fires.
    #[cfg(debug_assertions)]
    pub fn perturb_lock_order(&self, from: &'static str, to: &'static str) {
        self.lock_rec.inject_pair(from, to);
    }

    /// Every held→acquired pair the runtime twin has observed on this rank
    /// thread so far (sorted). Empty in a correct run: the rendezvous
    /// runtime never nests lock acquisitions.
    #[cfg(debug_assertions)]
    pub fn observed_lock_pairs(&self) -> Vec<(&'static str, &'static str)> {
        self.lock_rec.observed_pairs()
    }

    /// Every lock name the runtime twin has observed this rank thread
    /// acquire so far (sorted).
    #[cfg(debug_assertions)]
    pub fn observed_locks(&self) -> Vec<&'static str> {
        self.lock_rec.observed_locks()
    }

    /// Bulk-synchronous exchange: send `out[dst]` to every rank, receive
    /// one batch from every rank, deliver concatenated in source order.
    /// Blocks until all ranks have exchanged.
    pub fn exchange(&self, out: Vec<Vec<M>>) -> Vec<M> {
        assert_eq!(out.len(), self.p, "outbox fan-out mismatch");
        self.note_collective(FP_EXCHANGE);
        for (dst, msgs) in out.into_iter().enumerate() {
            // A peer disappearing mid-superstep is unrecoverable by design
            // (SPMD contract), hence the allowed panic below.
            self.senders[dst]
                .send((self.rank, msgs))
                .expect("peer hung up"); // sssp-lint: allow(no-panic-hot-path): SPMD contract
        }
        let mut batches: Vec<(Rank, Vec<M>)> =
            // sssp-lint: allow(no-panic-hot-path): same SPMD contract as above.
            (0..self.p).map(|_| self.inbox.recv().expect("peer hung up")).collect();
        batches.sort_by_key(|&(src, _)| src);
        let inbox: Vec<M> = batches.into_iter().flat_map(|(_, m)| m).collect();
        // Close the superstep: no rank may start the next exchange before
        // every rank has drained this one.
        self.barrier.wait();
        inbox
    }

    /// Pooled bulk-synchronous exchange: drains `out[dst]` into recycled
    /// transport buffers, delivers the concatenated batches (source-rank
    /// order, like [`RankCtx::exchange`]) into `inbox`, and keeps every
    /// emptied buffer for the next superstep. `out` lanes are left empty
    /// with capacity intact, so after a warm-up superstep the steady state
    /// allocates nothing on either side of the channel.
    pub fn exchange_pooled(&mut self, out: &mut [Vec<M>], inbox: &mut Vec<M>) {
        self.exchange_pooled_counted(out, inbox, 0, None);
    }

    /// [`RankCtx::exchange_pooled`] plus per-rank transport accounting:
    /// returns how many messages this rank kept local vs. put on the wire,
    /// and the framed byte volume it sent and received, under the same
    /// `msg_bytes`/`packet` wire model the simulated
    /// [`crate::exchange::exchange_pooled`] charges.
    pub fn exchange_pooled_counted(
        &mut self,
        out: &mut [Vec<M>],
        inbox: &mut Vec<M>,
        msg_bytes: usize,
        packet: Option<&PacketConfig>,
    ) -> ExchangeCounts {
        assert_eq!(out.len(), self.p, "outbox fan-out mismatch");
        self.note_collective(FP_EXCHANGE);
        let wire = |count: u64| -> u64 {
            match packet {
                Some(pk) => pk.wire_bytes(count, msg_bytes),
                None => count * msg_bytes as u64,
            }
        };
        let mut counts = ExchangeCounts::default();
        for (dst, msgs) in out.iter_mut().enumerate() {
            self.watermark = self.watermark.max(msgs.len());
            self.query_watermark = self.query_watermark.max(msgs.len());
            let k = msgs.len() as u64;
            if dst == self.rank {
                counts.sent_local += k;
            } else {
                counts.sent_remote += k;
                counts.sent_remote_bytes += wire(k);
            }
            let mut buf = self.spare.pop().unwrap_or_default();
            buf.append(msgs);
            // A peer disappearing mid-superstep is unrecoverable by design
            // (SPMD contract), hence the allowed panic below.
            self.senders[dst]
                .send((self.rank, buf))
                .expect("peer hung up"); // sssp-lint: allow(no-panic-hot-path): SPMD contract
        }
        while self.batches.len() < self.p {
            // sssp-lint: allow(no-panic-hot-path): same SPMD contract as above.
            let batch = self.inbox.recv().expect("peer hung up");
            self.batches.push(batch);
        }
        self.batches.sort_by_key(|&(src, _)| src);
        inbox.clear();
        for (src, mut b) in self.batches.drain(..) {
            self.watermark = self.watermark.max(b.len());
            self.query_watermark = self.query_watermark.max(b.len());
            if src != self.rank {
                counts.recv_remote_bytes += wire(b.len() as u64);
            }
            inbox.append(&mut b);
            self.spare.push(b);
        }
        self.barrier.wait();
        counts
    }

    /// Release spare transport buffers whose capacity exceeds 4× the
    /// high-water mark observed since the previous call (but never below
    /// [`SPARE_CAPACITY_FLOOR`], so a quiet epoch keeps its warm pool),
    /// then reset the mark. Purely rank-local (no rendezvous): each rank
    /// bounds its own pool at epoch boundaries so one outsized superstep
    /// cannot pin its peak allocation for the rest of the run.
    ///
    /// Returns the number of buffers released.
    pub fn trim_spares(&mut self) -> usize {
        let limit = self.watermark.saturating_mul(4).max(SPARE_CAPACITY_FLOOR);
        let before = self.spare.len();
        self.spare.retain(|b| b.capacity() <= limit);
        self.watermark = 0;
        before - self.spare.len()
    }

    /// Close out one query's pool accounting: release spare buffers whose
    /// capacity exceeds 4× the *query* high-water mark (floored at
    /// [`SPARE_CAPACITY_FLOOR`]), then reset both marks. Under back-to-back
    /// queries over a resident context this is what keeps a small query
    /// from inheriting a large query's flood-sized spares forever: the
    /// per-epoch [`RankCtx::trim_spares`] bound is relative to the *current*
    /// epoch's traffic, while this bound is relative to the query that just
    /// ended, so the pool shrinks to each query's own footprint before the
    /// buffers are handed to the next one.
    ///
    /// Returns the number of buffers released.
    pub fn finish_query(&mut self) -> usize {
        let limit = self
            .query_watermark
            .saturating_mul(4)
            .max(SPARE_CAPACITY_FLOOR);
        let before = self.spare.len();
        self.spare.retain(|b| b.capacity() <= limit);
        self.watermark = 0;
        self.query_watermark = 0;
        before - self.spare.len()
    }

    /// Seed the transport pool with buffers recycled from a previous run
    /// on the same rank (cleared, capacity kept). Lets a serving layer keep
    /// pools warm across queries even though each query spawns fresh rank
    /// threads.
    pub fn adopt_spares(&mut self, mut spares: Vec<Vec<M>>) {
        for b in &mut spares {
            b.clear();
        }
        self.spare.append(&mut spares);
    }

    /// Take the spare transport buffers out of this context (for example to
    /// stash them in an engine scratch that outlives the rank thread).
    pub fn release_spares(&mut self) -> Vec<Vec<M>> {
        std::mem::take(&mut self.spare)
    }

    /// Capacity of the largest buffer currently in the spare pool (0 when
    /// empty). Diagnostic for pool-bound tests and the serving benchmark.
    pub fn max_spare_capacity(&self) -> usize {
        self.spare.iter().map(Vec::capacity).max().unwrap_or(0)
    }

    /// Allreduce over one `u64` contribution per rank.
    pub fn allreduce<F: Fn(&[u64]) -> u64>(&self, value: u64, combine: F) -> u64 {
        self.note_collective(FP_REDUCE);
        self.allreduce_inner(value, combine)
    }

    /// The rendezvous itself, without the fingerprint update: shared by the
    /// public collectives (which mix their own kind codes first) and by
    /// [`RankCtx::assert_schedule_uniform`], whose meta-collectives must not
    /// perturb the fingerprint they are checking.
    fn allreduce_inner<F: Fn(&[u64]) -> u64>(&self, value: u64, combine: F) -> u64 {
        {
            let mut slots = self.lock_rec.track(
                "slots",
                // sssp-lint: allow(no-panic-hot-path, panic-silent-poison): poisoned = a
                // rank already panicked; die-on-poison is the correct SPMD behavior —
                // recovering the guard would hang the rendezvous on the dead rank.
                self.slots.lock().expect("collective mutex poisoned"),
            );
            slots[self.rank] = Some(value);
        }
        self.barrier.wait();
        let result = {
            let slots = self.lock_rec.track(
                "slots",
                // sssp-lint: allow(no-panic-hot-path, panic-silent-poison): see poisoning note above.
                self.slots.lock().expect("collective mutex poisoned"),
            );
            // Every rank filled its slot before the barrier; a hole means
            // the barrier itself is broken, hence the allowed panic below.
            let vals: Vec<u64> = slots
                .iter()
                .map(|s| s.expect("missing contribution")) // sssp-lint: allow(no-panic-hot-path, panic-in-critical-section): barrier guarantees slots; a hole is unrecoverable
                .collect();
            combine(&vals)
        };
        // Second barrier before anyone clears their slot for reuse.
        self.barrier.wait();
        {
            let mut slots = self.lock_rec.track(
                "slots",
                // sssp-lint: allow(no-panic-hot-path, panic-silent-poison): see poisoning note above.
                self.slots.lock().expect("collective mutex poisoned"),
            );
            slots[self.rank] = None;
        }
        self.barrier.wait();
        result
    }

    /// Minimum allreduce: every rank receives the smallest contribution.
    pub fn allreduce_min(&self, value: u64) -> u64 {
        self.note_collective(FP_REDUCE_MIN);
        self.allreduce_inner(value, |vals| vals.iter().copied().min().unwrap_or(u64::MAX))
    }

    /// Minimum allreduce of per-rank epoch-window proposals. The threaded
    /// twin of [`crate::collective::allreduce_min_window`]: a min-reduce
    /// fingerprinted with its own kind, so policies that issue the window
    /// collective hold schedules distinct from those that do not.
    pub fn allreduce_min_window(&self, value: u64) -> u64 {
        self.note_collective(FP_WINDOW);
        self.allreduce_inner(value, |vals| vals.iter().copied().min().unwrap_or(u64::MAX))
    }

    /// Maximum allreduce: every rank receives the largest contribution.
    pub fn allreduce_max(&self, value: u64) -> u64 {
        self.note_collective(FP_REDUCE_MAX);
        self.allreduce_inner(value, |vals| vals.iter().copied().max().unwrap_or(0))
    }

    /// Sum allreduce: every rank receives the total of all contributions.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        self.note_collective(FP_REDUCE_SUM);
        self.allreduce_inner(value, |vals| vals.iter().sum())
    }

    /// Logical-or allreduce.
    pub fn any(&self, flag: bool) -> bool {
        self.note_collective(FP_REDUCE_ANY);
        self.allreduce_inner(u64::from(flag), |vals| {
            u64::from(vals.iter().any(|&v| v != 0))
        }) != 0
    }
}

/// Spawn `p` rank threads, run `body` on each, and collect the results in
/// rank order. `body` receives the rank's [`RankCtx`] and drives as many
/// supersteps as it likes; all ranks must execute the same sequence of
/// `exchange`/collective calls (the usual SPMD contract).
pub fn run_threaded<M, R, F>(p: usize, body: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: Fn(RankCtx<M>) -> R + Send + Sync + 'static,
{
    run_threaded_with(p, (0..p).map(|_| ()).collect(), move |ctx, ()| body(ctx))
}

/// [`run_threaded`] with one owned payload moved into each rank's thread.
/// `payloads[r]` is handed to rank `r`'s body by value, so callers can
/// thread per-rank scratch state (reusable buffers, resident engine state)
/// through a run without any shared locking: each payload has exactly one
/// owner at all times. `payloads.len()` must equal `p`.
pub fn run_threaded_with<M, R, T, F>(p: usize, payloads: Vec<T>, body: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    T: Send + 'static,
    F: Fn(RankCtx<M>, T) -> R + Send + Sync + 'static,
{
    assert!(p > 0);
    assert_eq!(payloads.len(), p, "one payload per rank");
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..p).map(|_| channel()).unzip();
    let barrier = Arc::new(Barrier::new(p));
    let slots = Arc::new(Mutex::new(vec![None; p]));
    let body = Arc::new(body);

    let mut handles = Vec::with_capacity(p);
    for ((rank, inbox), payload) in receivers.into_iter().enumerate().zip(payloads) {
        let ctx = RankCtx {
            rank,
            p,
            senders: senders.clone(),
            inbox,
            barrier: Arc::clone(&barrier),
            slots: Arc::clone(&slots),
            spare: Vec::new(),
            batches: Vec::with_capacity(p),
            watermark: 0,
            query_watermark: 0,
            fp: Cell::new(0),
            epoch: Cell::new(0),
            lock_rec: lockorder::Recorder::new(),
        };
        let body = Arc::clone(&body);
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn(move || body(ctx, payload))
                // sssp-lint: allow(no-panic-hot-path): setup, not a hot path;
                // no ranks have started yet, so aborting is clean.
                .expect("failed to spawn rank thread"),
        );
    }
    drop(senders);
    // Re-raise a rank panic on the driver thread instead of returning
    // partial results, preserving the rank's own panic payload so the
    // driver reports the real failure rather than a generic join error.
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_routes_and_orders_by_source() {
        let inboxes = run_threaded(4, |ctx: RankCtx<(usize, usize)>| {
            let p = ctx.num_ranks();
            let out: Vec<Vec<(usize, usize)>> = (0..p).map(|dst| vec![(ctx.rank(), dst)]).collect();
            ctx.exchange(out)
        });
        for (dst, inbox) in inboxes.iter().enumerate() {
            let expect: Vec<(usize, usize)> = (0..4).map(|src| (src, dst)).collect();
            assert_eq!(inbox, &expect);
        }
    }

    #[test]
    fn multiple_supersteps_stay_in_lockstep() {
        let results = run_threaded(3, |ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut acc = ctx.rank() as u64;
            for _ in 0..5 {
                // Everyone broadcasts its accumulator; each rank sums what
                // it hears.
                let out: Vec<Vec<u64>> = (0..p).map(|_| vec![acc]).collect();
                let inbox = ctx.exchange(out);
                acc = inbox.iter().sum();
            }
            acc
        });
        // All ranks converge to the same value: sum is symmetric.
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        // Round 1: every rank holds 0+1+2 = 3; then 9; 27; 81; 243.
        assert_eq!(results[0], 243);
    }

    #[test]
    fn allreduce_combines_contributions() {
        let sums = run_threaded(5, |ctx: RankCtx<()>| {
            ctx.allreduce(ctx.rank() as u64 + 1, |vals| vals.iter().sum())
        });
        assert!(sums.iter().all(|&s| s == 15));
        let mins = run_threaded(5, |ctx: RankCtx<()>| {
            ctx.allreduce(10 - ctx.rank() as u64, |vals| *vals.iter().min().unwrap())
        });
        assert!(mins.iter().all(|&m| m == 6));
    }

    #[test]
    fn any_detects_single_flag() {
        let out = run_threaded(4, |ctx: RankCtx<()>| ctx.any(ctx.rank() == 2));
        assert!(out.iter().all(|&b| b));
        let out = run_threaded(4, |ctx: RankCtx<()>| ctx.any(false));
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn collectives_and_exchanges_interleave() {
        let results = run_threaded(3, |ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut x = ctx.rank() as u64;
            loop {
                let out: Vec<Vec<u64>> = (0..p).map(|_| vec![x]).collect();
                let inbox = ctx.exchange(out);
                x = *inbox.iter().max().unwrap();
                if ctx.any(x >= 2) {
                    break;
                }
            }
            x
        });
        assert_eq!(results, vec![2, 2, 2]);
    }

    #[test]
    fn pooled_exchange_matches_consuming_exchange() {
        let inboxes = run_threaded(4, |mut ctx: RankCtx<(usize, usize)>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<(usize, usize)>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            let mut history = Vec::new();
            for round in 0..3 {
                for (dst, lane) in out.iter_mut().enumerate() {
                    lane.push((ctx.rank(), dst + 10 * round));
                }
                ctx.exchange_pooled(&mut out, &mut inbox);
                assert!(out.iter().all(Vec::is_empty), "lanes must be drained");
                history.push(inbox.clone());
            }
            history
        });
        for (dst, history) in inboxes.iter().enumerate() {
            for (round, inbox) in history.iter().enumerate() {
                let expect: Vec<(usize, usize)> =
                    (0..4).map(|src| (src, dst + 10 * round)).collect();
                assert_eq!(inbox, &expect, "dst {dst} round {round}");
            }
        }
    }

    #[test]
    fn pooled_exchange_recycles_without_leaking_messages() {
        // Uneven traffic: rank 0 floods, everyone else is quiet. Recycled
        // buffers from the flood round must arrive empty in later rounds.
        let results = run_threaded(3, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            let mut sizes = Vec::new();
            for round in 0..4u64 {
                if ctx.rank() == 0 && round == 0 {
                    for lane in out.iter_mut() {
                        lane.extend(0..100);
                    }
                }
                ctx.exchange_pooled(&mut out, &mut inbox);
                sizes.push(inbox.len());
            }
            sizes
        });
        for sizes in results {
            assert_eq!(sizes, vec![100, 0, 0, 0]);
        }
    }

    #[test]
    fn allreduce_wrappers_agree_with_the_generic_form() {
        let results = run_threaded(4, |ctx: RankCtx<()>| {
            let v = ctx.rank() as u64 + 3;
            (
                ctx.allreduce_min(v),
                ctx.allreduce_max(v),
                ctx.allreduce_sum(v),
            )
        });
        for (mn, mx, sum) in results {
            assert_eq!(mn, 3);
            assert_eq!(mx, 6);
            assert_eq!(sum, 3 + 4 + 5 + 6);
        }
    }

    #[test]
    fn trim_spares_releases_oversized_pool_buffers() {
        let trims = run_threaded(2, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            // Epoch 1: a flood superstep grows the recycled buffers.
            for lane in out.iter_mut() {
                lane.extend(0..5000);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            let flood_trim = ctx.trim_spares();
            // Epoch 2: steady trickle; the flood-sized spares now exceed
            // 4× the epoch's high-water mark and must be released.
            for lane in out.iter_mut() {
                lane.push(1);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            let steady_trim = ctx.trim_spares();
            // Later supersteps keep working after the pool was emptied.
            for lane in out.iter_mut() {
                lane.push(2);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            (flood_trim, steady_trim, inbox.len())
        });
        for (flood_trim, steady_trim, len) in trims {
            assert_eq!(flood_trim, 0, "peak epoch keeps its pool");
            assert!(steady_trim > 0, "oversized spares must be released");
            assert_eq!(len, 2);
        }
    }

    #[test]
    fn trim_spares_keeps_pool_through_quiet_epochs() {
        // Regression: a quiet epoch (no traffic at all) observes a zero
        // high-water mark. The trim limit used to collapse to 0 and release
        // every spare buffer, forcing reallocation next epoch.
        let trims = run_threaded(2, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            // Epoch 1: modest traffic seeds the spare pool with small
            // buffers (capacity well under the floor).
            for lane in out.iter_mut() {
                lane.extend(0..8);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            ctx.trim_spares();
            // Epoch 2: completely quiet — empty lanes, zero watermark.
            ctx.exchange_pooled(&mut out, &mut inbox);
            let quiet_trim = ctx.trim_spares();
            // Epoch 3: traffic resumes; the pool must still be warm.
            for lane in out.iter_mut() {
                lane.push(9);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            (quiet_trim, inbox.len())
        });
        for (quiet_trim, len) in trims {
            assert_eq!(quiet_trim, 0, "quiet epoch must keep its warm pool");
            assert_eq!(len, 2);
        }
    }

    #[test]
    fn finish_query_bounds_the_pool_for_mixed_size_query_sequences() {
        // Regression for the serving layer: a flood query must not pin its
        // flood-sized spares into the next (tiny) query. Per-epoch
        // `trim_spares` cannot catch this — its bound is relative to the
        // *current* epoch's watermark, and the flood query's own last epoch
        // legitimately keeps the big buffers. The per-query trim releases
        // them once the next small query ends.
        let caps = run_threaded(2, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            // Query 1: flood.
            for lane in out.iter_mut() {
                lane.extend(0..5000);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            ctx.trim_spares();
            ctx.finish_query();
            let after_flood = ctx.max_spare_capacity();
            // Query 2: trickle. Epoch trim alone would keep the flood spares
            // forever (they were within bound at the flood query's end).
            for lane in out.iter_mut() {
                lane.push(1);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            ctx.trim_spares();
            ctx.finish_query();
            let after_trickle = ctx.max_spare_capacity();
            // Query 3: pool still works after the release.
            for lane in out.iter_mut() {
                lane.push(2);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            (after_flood, after_trickle, inbox.len())
        });
        for (after_flood, after_trickle, len) in caps {
            assert!(after_flood >= 5000, "flood query keeps its own pool");
            assert!(
                after_trickle <= SPARE_CAPACITY_FLOOR,
                "small query must shed the flood-sized spares \
                 (max spare capacity {after_trickle})"
            );
            assert_eq!(len, 2);
        }
    }

    #[test]
    fn finish_query_uses_the_whole_query_watermark_not_the_last_epoch() {
        // The query-level mark must survive the per-epoch mark reset: after
        // a busy epoch plus `trim_spares` (which zeroes the epoch watermark),
        // `finish_query` still knows the query moved 1000-message batches
        // and keeps the warm pool instead of collapsing to the floor.
        let caps = run_threaded(2, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            for lane in out.iter_mut() {
                lane.extend(0..1000);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            ctx.trim_spares();
            let released = ctx.finish_query();
            (released, ctx.max_spare_capacity())
        });
        for (released, cap) in caps {
            assert_eq!(released, 0, "busy epoch is within the query bound");
            assert!(cap >= 1000, "query-scoped mark must keep the warm pool");
        }
    }

    #[test]
    fn spares_adopted_from_a_previous_run_are_reused_clean() {
        // First run floods, releases its spares; second run adopts them and
        // must see only its own messages, with the adopted capacity warm.
        let spares = run_threaded(2, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            let mut inbox = Vec::new();
            for lane in out.iter_mut() {
                lane.extend(0..256);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            ctx.release_spares()
        });
        let payloads: Vec<Vec<Vec<u64>>> = spares;
        let results = run_threaded_with(2, payloads, |mut ctx: RankCtx<u64>, sp| {
            ctx.adopt_spares(sp);
            let warm = ctx.max_spare_capacity();
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| vec![7]).collect();
            let mut inbox = Vec::new();
            ctx.exchange_pooled(&mut out, &mut inbox);
            (warm, inbox)
        });
        for (warm, inbox) in results {
            assert!(warm >= 256, "adopted spares keep their capacity");
            assert_eq!(inbox, vec![7, 7], "adopted buffers must arrive clean");
        }
    }

    #[test]
    fn run_threaded_with_moves_one_payload_per_rank() {
        let out = run_threaded_with(3, vec![10u64, 20, 30], |ctx: RankCtx<u64>, own| {
            ctx.allreduce_sum(own)
        });
        assert_eq!(out, vec![60, 60, 60]);
    }

    #[test]
    fn counted_exchange_splits_local_and_remote() {
        // Rank r sends r+1 messages to every rank (itself included); with
        // 8-byte messages and no packet framing the byte counts are exact.
        let counts = run_threaded(3, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            let mut out: Vec<Vec<u64>> = (0..p)
                .map(|_| (0..ctx.rank() as u64 + 1).collect())
                .collect();
            let mut inbox = Vec::new();
            let c = ctx.exchange_pooled_counted(&mut out, &mut inbox, 8, None);
            (c, inbox.len())
        });
        for (rank, (c, received)) in counts.into_iter().enumerate() {
            let own = rank as u64 + 1;
            assert_eq!(c.sent_local, own, "rank {rank}");
            assert_eq!(c.sent_remote, 2 * own, "rank {rank}");
            assert_eq!(c.sent_remote_bytes, 2 * own * 8, "rank {rank}");
            // Receives one batch of src+1 messages from each other rank.
            let recv_remote: u64 = (0..3u64).filter(|&s| s != rank as u64).map(|s| s + 1).sum();
            assert_eq!(c.recv_remote_bytes, recv_remote * 8, "rank {rank}");
            assert_eq!(received as u64, recv_remote + own, "rank {rank}");
        }
    }

    #[test]
    fn counted_exchange_applies_packet_framing() {
        let counts = run_threaded(2, |mut ctx: RankCtx<u64>| {
            let p = ctx.num_ranks();
            // One message to each rank.
            let mut out: Vec<Vec<u64>> = (0..p).map(|_| vec![7]).collect();
            let mut inbox = Vec::new();
            let pk = PacketConfig {
                payload_bytes: 512,
                header_bytes: 32,
                run_header_bytes: 8,
            };
            ctx.exchange_pooled_counted(&mut out, &mut inbox, 16, Some(&pk))
        });
        for c in counts {
            // One 16-byte message fits one packet: 16 payload + 32 header
            // + the stream's 8-byte run descriptor.
            assert_eq!(c.sent_remote, 1);
            assert_eq!(c.sent_remote_bytes, 56);
            assert_eq!(c.recv_remote_bytes, 56);
        }
    }

    #[test]
    fn pooled_and_plain_exchange_interleave() {
        let results = run_threaded(2, |mut ctx: RankCtx<u32>| {
            let p = ctx.num_ranks();
            let plain = ctx.exchange((0..p).map(|_| vec![1u32]).collect());
            let mut out: Vec<Vec<u32>> = (0..p).map(|_| vec![2u32]).collect();
            let mut inbox = Vec::new();
            ctx.exchange_pooled(&mut out, &mut inbox);
            (plain, inbox)
        });
        for (plain, pooled) in results {
            assert_eq!(plain, vec![1, 1]);
            assert_eq!(pooled, vec![2, 2]);
        }
    }

    #[test]
    fn fingerprints_agree_across_ranks_and_rank_counts() {
        for p in [1, 3, 5] {
            let fps = run_threaded(p, |mut ctx: RankCtx<u64>| {
                let p = ctx.num_ranks();
                for epoch in 0..3 {
                    ctx.set_epoch(epoch);
                    ctx.allreduce_min(ctx.rank() as u64);
                    let mut out: Vec<Vec<u64>> = (0..p).map(|_| vec![1]).collect();
                    let mut inbox = Vec::new();
                    ctx.exchange_pooled(&mut out, &mut inbox);
                    ctx.any(ctx.rank() == 0);
                    ctx.assert_schedule_uniform();
                }
                ctx.schedule_fingerprint()
            });
            assert!(
                fps.windows(2).all(|w| w[0] == w[1]),
                "p={p}: ranks disagree: {fps:?}"
            );
            assert_ne!(fps[0], 0, "p={p}: schedule must move the fingerprint");
        }
    }

    #[test]
    fn fingerprint_distinguishes_schedules() {
        let a = run_threaded(2, |ctx: RankCtx<u64>| {
            ctx.allreduce_min(0);
            ctx.schedule_fingerprint()
        });
        let b = run_threaded(2, |ctx: RankCtx<u64>| {
            ctx.allreduce_max(0);
            ctx.schedule_fingerprint()
        });
        assert_ne!(a[0], b[0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "collective schedule diverged")]
    fn corrupted_fingerprint_trips_the_uniformity_assertion() {
        run_threaded(3, |ctx: RankCtx<u64>| {
            ctx.allreduce_sum(1);
            if ctx.rank() == 1 {
                ctx.perturb_fingerprint(0xDEAD_BEEF);
            }
            ctx.assert_schedule_uniform();
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    fn lock_order_twin_records_the_collective_mutex_and_no_nesting() {
        for p in [1, 3, 5] {
            let obs = run_threaded(p, |ctx: RankCtx<u64>| {
                ctx.allreduce_sum(ctx.rank() as u64);
                ctx.any(false);
                (ctx.observed_locks(), ctx.observed_lock_pairs())
            });
            for (locks, pairs) in obs {
                assert_eq!(locks, vec!["slots"], "p={p}");
                assert!(
                    pairs.is_empty(),
                    "p={p}: rendezvous runtime must never nest locks: {pairs:?}"
                );
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock acquisition order")]
    fn seeded_lock_inversion_trips_the_twin_at_the_join() {
        run_threaded(3, |ctx: RankCtx<u64>| {
            ctx.allreduce_sum(1);
            if ctx.rank() == 2 {
                ctx.perturb_lock_order("slots", "slots");
            }
        });
    }

    #[test]
    fn single_rank_world() {
        let out = run_threaded(1, |ctx: RankCtx<u32>| {
            let inbox = ctx.exchange(vec![vec![7, 8]]);
            (inbox, ctx.allreduce(9, |v| v[0]))
        });
        assert_eq!(out[0].0, vec![7, 8]);
        assert_eq!(out[0].1, 9);
    }
}
