//! Simulated distributed-memory runtime for the `sssp-mps` reproduction.
//!
//! The paper ran on Blue Gene/Q: thousands of nodes exchanging active
//! messages through the SPI layer, synchronizing each Δ-stepping phase with
//! collectives. This crate reproduces that execution model in-process:
//!
//! * **Ranks** — `P` logical processors, each owning private state. Rank
//!   closures run in parallel (rayon) but only touch rank-local data, so
//!   every run is deterministic.
//! * **Exchange** ([`exchange`]) — bulk-synchronous message delivery between
//!   supersteps, with full accounting of message counts, bytes, and
//!   per-rank maxima (the load-imbalance signal the paper's heuristics use).
//! * **Collectives** ([`collective`]) — allreduce/allgather equivalents with
//!   the `α·log₂P` latency charge of a tree implementation.
//! * **Cost model** ([`cost`]) — an α–β–γ machine model that converts the
//!   recorded counts into simulated time and TEPS, standing in for the
//!   Blue Gene/Q wall clock. Defaults are calibrated so that a scale-35 run
//!   on 4096 simulated nodes lands near the paper's 650 GTEPS.
//!
//! Message coalescing into network packets (the SPI injection-FIFO framing)
//! is modeled optionally by [`packet`]. What this substrate deliberately
//! does **not** model: network topology (the 5D torus) and overlap of
//! computation with communication. Those affect absolute constants, not the
//! relative comparisons (push vs pull, hybrid vs not, balanced vs not) the
//! paper's figures are built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Allreduce/allgather equivalents with tree-latency accounting.
pub mod collective;
/// The α–β–γ machine model converting traffic into simulated time.
pub mod cost;
/// Bulk-synchronous message exchange between simulated ranks.
pub mod exchange;
/// Rolling collective-schedule fingerprints shared by both backends.
pub mod fingerprint;
/// Debug-gated runtime twin of the static lock-order model.
pub mod lockorder;
/// Optional SPI-style packet coalescing model.
pub mod packet;
/// Per-superstep traffic ledgers ([`stats::CommStats`]).
pub mod stats;
/// Real-thread SPMD runtime (one OS thread per rank) for differential tests.
pub mod threaded;

/// Index of a logical processor (the paper's "node"/"rank").
pub type Rank = usize;

/// Run one superstep: execute `f(rank)` for every rank in parallel and
/// collect the per-rank results in rank order.
///
/// The closure must only touch rank-private state (enforced by the `Sync`
/// bound: shared state must be immutable or internally synchronized).
pub fn run_ranks<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Rank) -> R + Sync + Send,
{
    use rayon::prelude::*;
    (0..p).into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ranks_preserves_order() {
        let out = run_ranks(8, |r| r * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_ranks_zero_ranks() {
        let out: Vec<usize> = run_ranks(0, |r| r);
        assert!(out.is_empty());
    }
}
