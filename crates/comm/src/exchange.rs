//! Bulk-synchronous message exchange between ranks.
//!
//! A superstep produces, for every source rank, one outbox per destination
//! rank (`outboxes[src][dst]`). [`exchange`] transposes these into one inbox
//! per destination, concatenating in source-rank order so delivery is
//! deterministic, and records the traffic in a [`StepStats`].

use crate::stats::StepStats;
use crate::Rank;

/// Per-source outboxes: `out[dst]` holds the messages this rank sends to
/// `dst`. Construct with [`Outbox::new`] and fill during the compute step.
#[derive(Debug, Clone)]
pub struct Outbox<M> {
    /// One message lane per destination rank.
    pub out: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    /// Empty outbox with one lane per destination rank.
    pub fn new(p: usize) -> Self {
        Outbox {
            out: (0..p).map(|_| Vec::new()).collect(),
        }
    }

    #[inline]
    /// Queue `msg` for delivery to `dst` at the next superstep boundary.
    pub fn send(&mut self, dst: Rank, msg: M) {
        self.out[dst].push(msg);
    }

    /// Number of queued messages across all destinations.
    pub fn total_msgs(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }
}

/// Deliver all outboxes. Returns one inbox per rank (messages from source 0
/// first, then source 1, …) plus the step's traffic statistics.
///
/// `msg_bytes` is the on-wire size charged per message; pass
/// `std::mem::size_of::<M>()` unless modelling a packed format.
pub fn exchange<M>(outboxes: Vec<Outbox<M>>, msg_bytes: usize) -> (Vec<Vec<M>>, StepStats) {
    exchange_with(outboxes, msg_bytes, None)
}

/// Like [`exchange`], but with packet-level wire accounting: each
/// per-(src, dst) stream is framed into packets per the given
/// [`PacketConfig`], and the byte statistics include header overhead.
pub fn exchange_with<M>(
    outboxes: Vec<Outbox<M>>,
    msg_bytes: usize,
    packet: Option<&crate::packet::PacketConfig>,
) -> (Vec<Vec<M>>, StepStats) {
    let p = outboxes.len();
    let mut stats = StepStats::default();
    let wire = |count: u64| -> u64 {
        match packet {
            Some(cfg) => cfg.wire_bytes(count, msg_bytes),
            None => count * msg_bytes as u64,
        }
    };

    // Per-rank send accounting (before the moves).
    let mut recv_bytes = vec![0u64; p];
    for (src, ob) in outboxes.iter().enumerate() {
        assert_eq!(ob.out.len(), p, "outbox of rank {src} has wrong fan-out");
        let mut sent_bytes = 0u64;
        for (dst, msgs) in ob.out.iter().enumerate() {
            let k = msgs.len() as u64;
            if dst == src {
                stats.local_msgs += k;
            } else {
                stats.remote_msgs += k;
                let b = wire(k);
                sent_bytes += b;
                recv_bytes[dst] += b;
                stats.remote_bytes += b;
            }
        }
        stats.max_rank_send_bytes = stats.max_rank_send_bytes.max(sent_bytes);
    }
    stats.max_rank_recv_bytes = recv_bytes.iter().copied().max().unwrap_or(0);

    // Transpose: inbox[dst] = concat over src of outboxes[src].out[dst].
    let mut inboxes: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
    for ob in outboxes {
        for (dst, mut msgs) in ob.out.into_iter().enumerate() {
            inboxes[dst].append(&mut msgs);
        }
    }
    (inboxes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_transposed_and_ordered() {
        let p = 3;
        let mut obs: Vec<Outbox<(usize, usize)>> = (0..p).map(|_| Outbox::new(p)).collect();
        for (src, ob) in obs.iter_mut().enumerate() {
            for dst in 0..p {
                ob.send(dst, (src, dst));
            }
        }
        let (inboxes, _) = exchange(obs, 16);
        for (dst, inbox) in inboxes.iter().enumerate() {
            let expect: Vec<_> = (0..p).map(|src| (src, dst)).collect();
            assert_eq!(inbox, &expect);
        }
    }

    #[test]
    fn stats_split_local_and_remote() {
        let p = 2;
        let mut obs: Vec<Outbox<u64>> = (0..p).map(|_| Outbox::new(p)).collect();
        obs[0].send(0, 1); // local
        obs[0].send(1, 2); // remote
        obs[1].send(0, 3); // remote
        let (_, stats) = exchange(obs, 8);
        assert_eq!(stats.local_msgs, 1);
        assert_eq!(stats.remote_msgs, 2);
        assert_eq!(stats.remote_bytes, 16);
        assert_eq!(stats.max_rank_send_bytes, 8);
        assert_eq!(stats.max_rank_recv_bytes, 8);
    }

    #[test]
    fn max_rank_send_detects_imbalance() {
        let p = 3;
        let mut obs: Vec<Outbox<u8>> = (0..p).map(|_| Outbox::new(p)).collect();
        for _ in 0..10 {
            obs[0].send(1, 0);
        }
        obs[2].send(1, 0);
        let (_, stats) = exchange(obs, 4);
        assert_eq!(stats.remote_msgs, 11);
        assert_eq!(stats.max_rank_send_bytes, 40);
        assert_eq!(stats.max_rank_recv_bytes, 44);
    }

    #[test]
    fn empty_exchange() {
        let obs: Vec<Outbox<u32>> = (0..4).map(|_| Outbox::new(4)).collect();
        let (inboxes, stats) = exchange(obs, 4);
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(stats, StepStats::default());
    }
}
