//! Bulk-synchronous message exchange between ranks.
//!
//! A superstep produces, for every source rank, one outbox per destination
//! rank (`outboxes[src][dst]`). [`exchange`] transposes these into one inbox
//! per destination, concatenating in source-rank order so delivery is
//! deterministic, and records the traffic in a [`StepStats`].
//!
//! Two delivery flavors exist: the original consuming [`exchange`] /
//! [`exchange_with`] (fresh inboxes every call) and the pooled
//! [`exchange_pooled`] / [`ExchangeBuffers`] path, which recycles both
//! outbox lanes and inboxes across supersteps so a steady-state superstep
//! performs no heap allocation. Both produce identical delivery order and
//! identical [`StepStats`].

use crate::stats::StepStats;
use crate::Rank;

/// Per-source outboxes: `out[dst]` holds the messages this rank sends to
/// `dst`. Construct with [`Outbox::new`] and fill during the compute step.
#[derive(Debug, Clone)]
pub struct Outbox<M> {
    /// One message lane per destination rank.
    pub out: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    /// Empty outbox with one lane per destination rank.
    pub fn new(p: usize) -> Self {
        Outbox {
            out: (0..p).map(|_| Vec::new()).collect(),
        }
    }

    #[inline]
    /// Queue `msg` for delivery to `dst` at the next superstep boundary.
    pub fn send(&mut self, dst: Rank, msg: M) {
        self.out[dst].push(msg);
    }

    /// Number of queued messages across all destinations.
    pub fn total_msgs(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Empty every lane, retaining its capacity for reuse.
    pub fn clear(&mut self) {
        for lane in &mut self.out {
            lane.clear();
        }
    }
}

/// Deliver all outboxes. Returns one inbox per rank (messages from source 0
/// first, then source 1, …) plus the step's traffic statistics.
///
/// `msg_bytes` is the on-wire size charged per message; pass
/// `std::mem::size_of::<M>()` unless modelling a packed format.
pub fn exchange<M>(outboxes: Vec<Outbox<M>>, msg_bytes: usize) -> (Vec<Vec<M>>, StepStats) {
    exchange_with(outboxes, msg_bytes, None)
}

/// Like [`exchange`], but with packet-level wire accounting: each
/// per-(src, dst) stream is framed into packets per the given
/// [`PacketConfig`], and the byte statistics include header overhead.
pub fn exchange_with<M>(
    mut outboxes: Vec<Outbox<M>>,
    msg_bytes: usize,
    packet: Option<&crate::packet::PacketConfig>,
) -> (Vec<Vec<M>>, StepStats) {
    let p = outboxes.len();
    let mut inboxes: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
    let stats = exchange_pooled(&mut outboxes, &mut inboxes, msg_bytes, packet);
    (inboxes, stats)
}

/// Pooled variant of [`exchange_with`]: drains the outboxes into the given
/// inboxes instead of allocating fresh ones. Inboxes are cleared first;
/// after the call every outbox lane is empty *with its capacity retained*,
/// so a caller that keeps both sides alive across supersteps reaches a
/// steady state where the exchange allocates nothing. Delivery order and
/// the returned [`StepStats`] are identical to [`exchange_with`].
pub fn exchange_pooled<M>(
    outboxes: &mut [Outbox<M>],
    inboxes: &mut [Vec<M>],
    msg_bytes: usize,
    packet: Option<&crate::packet::PacketConfig>,
) -> StepStats {
    let p = outboxes.len();
    assert_eq!(inboxes.len(), p, "inbox fan-out mismatch");
    let mut stats = StepStats::default();
    let wire = |count: u64| -> u64 {
        match packet {
            Some(cfg) => cfg.wire_bytes(count, msg_bytes),
            None => count * msg_bytes as u64,
        }
    };

    // Per-rank send accounting (before the moves).
    for (src, ob) in outboxes.iter().enumerate() {
        assert_eq!(ob.out.len(), p, "outbox of rank {src} has wrong fan-out");
        let mut sent_bytes = 0u64;
        for (dst, msgs) in ob.out.iter().enumerate() {
            let k = msgs.len() as u64;
            if dst == src {
                stats.local_msgs += k;
            } else {
                stats.remote_msgs += k;
                let b = wire(k);
                sent_bytes += b;
                stats.remote_bytes += b;
            }
        }
        stats.max_rank_send_bytes = stats.max_rank_send_bytes.max(sent_bytes);
    }
    // Per-rank receive accounting: a second pass over the lane lengths
    // instead of a scratch vector keeps the pooled path allocation-free.
    for dst in 0..p {
        let mut recv = 0u64;
        for (src, ob) in outboxes.iter().enumerate() {
            if src != dst {
                recv += wire(ob.out[dst].len() as u64);
            }
        }
        stats.max_rank_recv_bytes = stats.max_rank_recv_bytes.max(recv);
    }

    // Transpose: inbox[dst] = concat over src of outboxes[src].out[dst].
    // `append` moves the messages and leaves each lane empty with its
    // capacity intact — the core of the recycling scheme.
    for ib in inboxes.iter_mut() {
        ib.clear();
    }
    for ob in outboxes.iter_mut() {
        for (dst, lane) in ob.out.iter_mut().enumerate() {
            inboxes[dst].append(lane);
        }
    }
    stats
}

/// Sender-side sorted-run packing of one outbox lane: sort the lane by
/// `(key, val)` so it ships as a single key-sorted run the receiver can
/// apply as a sequential min-merge over its distance array instead of
/// random-access writes. With `dedup` enabled (relaxation coalescing) the
/// sorted order additionally lets every dominated duplicate collapse for
/// free: for each distinct `key(m)` only the message with the smallest
/// `val(m)` survives. Relaxation traffic is an idempotent min-reduction
/// per destination vertex, so neither the reordering nor the dropping
/// changes final distances — and sorting makes the delivery order a pure
/// function of the lane's message *set* rather than its fill order.
///
/// Returns the number of messages removed (always 0 without `dedup`).
pub fn pack_sorted_run<M, K, V>(
    lane: &mut Vec<M>,
    key: impl Fn(&M) -> K,
    val: impl Fn(&M) -> V,
    dedup: bool,
) -> u64
where
    K: Ord,
    V: Ord,
{
    if lane.len() < 2 {
        return 0;
    }
    let before = lane.len();
    lane.sort_unstable_by(|a, b| key(a).cmp(&key(b)).then_with(|| val(a).cmp(&val(b))));
    if dedup {
        // `dedup_by` drops the *later* element of each equal-key pair, so
        // the survivor of every key run is its first — smallest — message.
        lane.dedup_by(|a, b| key(a) == key(b));
    }
    (before - lane.len()) as u64
}

/// Sender-side coalescing of one outbox lane: keep, for every distinct
/// `key(m)`, only the message with the smallest `val(m)`. Equivalent to
/// [`pack_sorted_run`] with `dedup` enabled — the lane is left sorted by
/// `(key, val)` as one run.
///
/// Returns the number of messages removed.
pub fn coalesce_lane_min<M, K, V>(
    lane: &mut Vec<M>,
    key: impl Fn(&M) -> K,
    val: impl Fn(&M) -> V,
) -> u64
where
    K: Ord,
    V: Ord,
{
    pack_sorted_run(lane, key, val, true)
}

/// The pool-growth bound: shrink `buf` back to `high_water` capacity when
/// its current capacity exceeds 4× that high-water mark. A single giant
/// superstep thereby cannot pin its peak allocation for the rest of the
/// run; steady-state buffers (within 4× of recent traffic) are untouched.
///
/// Returns whether the buffer shrank.
pub fn shrink_oversized<M>(buf: &mut Vec<M>, high_water: usize) -> bool {
    if buf.capacity() > high_water.saturating_mul(4) {
        buf.shrink_to(high_water);
        true
    } else {
        false
    }
}

/// A recycled outbox/inbox set for one message type, reused across
/// supersteps. One [`Outbox`] per source rank, one inbox per destination
/// rank; [`ExchangeBuffers::exchange`] moves queued messages from the
/// former to the latter while every buffer keeps its capacity.
#[derive(Debug)]
pub struct ExchangeBuffers<M> {
    /// One outbox per source rank (`outboxes[src].out[dst]`).
    pub outboxes: Vec<Outbox<M>>,
    /// One inbox per destination rank, refilled by each exchange.
    pub inboxes: Vec<Vec<M>>,
    /// Largest single-buffer fill observed since the last
    /// [`ExchangeBuffers::shrink_to_watermark`] — the shrink policy's
    /// high-water mark.
    watermark: usize,
}

impl<M> ExchangeBuffers<M> {
    /// Empty buffer set for `p` ranks.
    pub fn new(p: usize) -> Self {
        ExchangeBuffers {
            outboxes: (0..p).map(|_| Outbox::new(p)).collect(),
            inboxes: (0..p).map(|_| Vec::new()).collect(),
            watermark: 0,
        }
    }

    /// Number of ranks this buffer set serves.
    pub fn num_ranks(&self) -> usize {
        self.outboxes.len()
    }

    /// Deliver all queued outbox messages into the inboxes (see
    /// [`exchange_pooled`]) and return the step's traffic statistics.
    pub fn exchange(
        &mut self,
        msg_bytes: usize,
        packet: Option<&crate::packet::PacketConfig>,
    ) -> StepStats {
        for ob in &self.outboxes {
            for lane in &ob.out {
                self.watermark = self.watermark.max(lane.len());
            }
        }
        let stats = exchange_pooled(&mut self.outboxes, &mut self.inboxes, msg_bytes, packet);
        for ib in &self.inboxes {
            self.watermark = self.watermark.max(ib.len());
        }
        stats
    }

    /// Apply the [`shrink_oversized`] 4× policy to every lane and inbox,
    /// using the high-water mark accumulated since the previous call, then
    /// reset the mark. Callers invoke this at epoch boundaries so one
    /// outsized superstep cannot pin its peak capacity for the whole run.
    ///
    /// Returns the number of buffers shrunk.
    pub fn shrink_to_watermark(&mut self) -> usize {
        let hwm = self.watermark;
        let mut shrunk = 0;
        for ob in &mut self.outboxes {
            for lane in &mut ob.out {
                shrunk += usize::from(shrink_oversized(lane, hwm));
            }
        }
        for ib in &mut self.inboxes {
            shrunk += usize::from(shrink_oversized(ib, hwm));
        }
        self.watermark = 0;
        shrunk
    }

    /// Drop every held buffer, replacing it with a fresh zero-capacity one.
    /// This deliberately reinstates the per-superstep allocation pattern the
    /// pool exists to avoid — the differential tests and the allocation
    /// benchmark use it to emulate a non-pooled engine.
    pub fn reset_capacity(&mut self) {
        let p = self.outboxes.len();
        self.outboxes = (0..p).map(|_| Outbox::new(p)).collect();
        self.inboxes = (0..p).map(|_| Vec::new()).collect();
        self.watermark = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_transposed_and_ordered() {
        let p = 3;
        let mut obs: Vec<Outbox<(usize, usize)>> = (0..p).map(|_| Outbox::new(p)).collect();
        for (src, ob) in obs.iter_mut().enumerate() {
            for dst in 0..p {
                ob.send(dst, (src, dst));
            }
        }
        let (inboxes, _) = exchange(obs, 16);
        for (dst, inbox) in inboxes.iter().enumerate() {
            let expect: Vec<_> = (0..p).map(|src| (src, dst)).collect();
            assert_eq!(inbox, &expect);
        }
    }

    #[test]
    fn stats_split_local_and_remote() {
        let p = 2;
        let mut obs: Vec<Outbox<u64>> = (0..p).map(|_| Outbox::new(p)).collect();
        obs[0].send(0, 1); // local
        obs[0].send(1, 2); // remote
        obs[1].send(0, 3); // remote
        let (_, stats) = exchange(obs, 8);
        assert_eq!(stats.local_msgs, 1);
        assert_eq!(stats.remote_msgs, 2);
        assert_eq!(stats.remote_bytes, 16);
        assert_eq!(stats.max_rank_send_bytes, 8);
        assert_eq!(stats.max_rank_recv_bytes, 8);
    }

    #[test]
    fn max_rank_send_detects_imbalance() {
        let p = 3;
        let mut obs: Vec<Outbox<u8>> = (0..p).map(|_| Outbox::new(p)).collect();
        for _ in 0..10 {
            obs[0].send(1, 0);
        }
        obs[2].send(1, 0);
        let (_, stats) = exchange(obs, 4);
        assert_eq!(stats.remote_msgs, 11);
        assert_eq!(stats.max_rank_send_bytes, 40);
        assert_eq!(stats.max_rank_recv_bytes, 44);
    }

    #[test]
    fn empty_exchange() {
        let obs: Vec<Outbox<u32>> = (0..4).map(|_| Outbox::new(4)).collect();
        let (inboxes, stats) = exchange(obs, 4);
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(stats, StepStats::default());
    }

    /// Fill one rank's worth of traffic into both a fresh outbox set and a
    /// pooled buffer set and compare delivery + stats.
    #[test]
    fn pooled_matches_fresh_exchange() {
        let p = 3;
        let fill = |send: &mut dyn FnMut(usize, usize, (usize, usize))| {
            for src in 0..p {
                for dst in 0..p {
                    for _ in 0..(src + 2 * dst) {
                        send(src, dst, (src, dst));
                    }
                }
            }
        };
        let mut obs: Vec<Outbox<(usize, usize)>> = (0..p).map(|_| Outbox::new(p)).collect();
        fill(&mut |s, d, m| obs[s].send(d, m));
        let (fresh_in, fresh_stats) = exchange(obs, 16);

        let mut bufs: ExchangeBuffers<(usize, usize)> = ExchangeBuffers::new(p);
        assert_eq!(bufs.num_ranks(), p);
        fill(&mut |s, d, m| bufs.outboxes[s].send(d, m));
        let pooled_stats = bufs.exchange(16, None);
        assert_eq!(bufs.inboxes, fresh_in);
        assert_eq!(pooled_stats, fresh_stats);
    }

    #[test]
    fn pooled_buffers_retain_capacity_across_supersteps() {
        let p = 2;
        let mut bufs: ExchangeBuffers<u64> = ExchangeBuffers::new(p);
        for round in 0..3u64 {
            for dst in 0..p {
                for i in 0..50 {
                    bufs.outboxes[0].send(dst, round * 100 + i);
                }
            }
            bufs.exchange(8, None);
            assert_eq!(bufs.inboxes[0].len(), 50);
            assert_eq!(bufs.inboxes[1].len(), 50);
            // Lanes are drained but keep their capacity.
            for ob in &bufs.outboxes {
                assert!(ob.total_msgs() == 0);
            }
            assert!(bufs.outboxes[0].out[0].capacity() >= 50);
            assert!(bufs.inboxes[0].capacity() >= 50);
        }
        bufs.reset_capacity();
        assert_eq!(bufs.outboxes[0].out[0].capacity(), 0);
        assert_eq!(bufs.inboxes[0].capacity(), 0);
    }

    #[test]
    fn pooled_exchange_clears_stale_inbox_contents() {
        let mut bufs: ExchangeBuffers<u32> = ExchangeBuffers::new(2);
        bufs.outboxes[0].send(1, 7);
        bufs.exchange(4, None);
        assert_eq!(bufs.inboxes[1], vec![7]);
        // Next superstep sends nothing: the old message must not survive.
        let stats = bufs.exchange(4, None);
        assert!(bufs.inboxes[1].is_empty());
        assert_eq!(stats, StepStats::default());
    }

    #[test]
    fn coalesce_keeps_min_per_key() {
        let mut lane: Vec<(u32, u64)> = vec![(3, 9), (1, 5), (3, 2), (2, 7), (1, 5), (3, 11)];
        let saved = coalesce_lane_min(&mut lane, |m| m.0, |m| m.1);
        assert_eq!(saved, 3);
        assert_eq!(lane, vec![(1, 5), (2, 7), (3, 2)]);
    }

    #[test]
    fn coalesce_short_lanes_are_untouched() {
        let mut empty: Vec<(u32, u64)> = Vec::new();
        assert_eq!(coalesce_lane_min(&mut empty, |m| m.0, |m| m.1), 0);
        let mut one = vec![(5u32, 40u64)];
        assert_eq!(coalesce_lane_min(&mut one, |m| m.0, |m| m.1), 0);
        assert_eq!(one, vec![(5, 40)]);
    }

    #[test]
    fn pack_without_dedup_sorts_and_keeps_everything() {
        let mut lane: Vec<(u32, u64)> = vec![(3, 9), (1, 5), (3, 2), (2, 7), (1, 5), (3, 11)];
        let saved = pack_sorted_run(&mut lane, |m| m.0, |m| m.1, false);
        assert_eq!(saved, 0);
        assert_eq!(lane, vec![(1, 5), (1, 5), (2, 7), (3, 2), (3, 9), (3, 11)]);
    }

    #[test]
    fn pack_with_dedup_matches_coalesce() {
        let msgs: Vec<(u32, u64)> = vec![(3, 9), (1, 5), (3, 2), (2, 7), (1, 5), (3, 11)];
        let mut packed = msgs.clone();
        let mut coalesced = msgs;
        let a = pack_sorted_run(&mut packed, |m| m.0, |m| m.1, true);
        let b = coalesce_lane_min(&mut coalesced, |m| m.0, |m| m.1);
        assert_eq!(a, b);
        assert_eq!(packed, coalesced);
        assert_eq!(packed, vec![(1, 5), (2, 7), (3, 2)]);
    }

    #[test]
    fn shrink_oversized_honors_the_4x_bound() {
        let mut buf: Vec<u8> = Vec::with_capacity(1000);
        // Capacity 1000 ≤ 4 × 250: not oversized.
        assert!(!shrink_oversized(&mut buf, 250));
        assert!(buf.capacity() >= 1000);
        // Capacity 1000 > 4 × 100: shrinks back to the high-water mark.
        assert!(shrink_oversized(&mut buf, 100));
        assert!(buf.capacity() < 1000);
        // A zero high-water mark releases the buffer entirely.
        let mut spike: Vec<u8> = Vec::with_capacity(64);
        assert!(shrink_oversized(&mut spike, 0));
        assert_eq!(spike.capacity(), 0);
    }

    #[test]
    fn watermark_shrink_releases_only_outsized_buffers() {
        let p = 2;
        let mut bufs: ExchangeBuffers<u64> = ExchangeBuffers::new(p);
        // Epoch 1: a giant superstep grows rank 0's lane to ~4096.
        for i in 0..4096 {
            bufs.outboxes[0].send(1, i);
        }
        bufs.exchange(8, None);
        assert_eq!(bufs.shrink_to_watermark(), 0, "peak epoch keeps its pool");
        // Epoch 2: steady-state traffic is tiny; the giant buffers now
        // exceed 4× the epoch's high-water mark and must be released.
        for i in 0..4u64 {
            bufs.outboxes[0].send(1, i);
        }
        bufs.exchange(8, None);
        assert!(bufs.outboxes[0].out[1].capacity() >= 4096);
        assert!(bufs.inboxes[1].capacity() >= 4096);
        assert!(bufs.shrink_to_watermark() >= 2);
        assert!(bufs.outboxes[0].out[1].capacity() <= 16);
        assert!(bufs.inboxes[1].capacity() <= 16);
    }

    #[test]
    fn outbox_clear_keeps_capacity() {
        let mut ob: Outbox<u8> = Outbox::new(2);
        for _ in 0..32 {
            ob.send(1, 9);
        }
        let cap = ob.out[1].capacity();
        ob.clear();
        assert_eq!(ob.total_msgs(), 0);
        assert_eq!(ob.out[1].capacity(), cap);
    }
}
