//! Collective operations over per-rank contributions.
//!
//! In the simulated runtime a collective is just a reduction over the
//! per-rank values computed in the preceding superstep, but each call is
//! recorded so the cost model can charge the `α·⌈log₂P⌉` latency a tree
//! allreduce would incur on the real machine. The Δ-stepping engine issues
//! collectives exactly where the paper's distributed implementation does:
//! activity checks at every phase, next-bucket selection at every epoch,
//! settled-count aggregation for the hybrid switch, and volume estimates for
//! the push/pull decision.

use crate::fingerprint::{
    FP_ALLGATHER, FP_REDUCE_ANY, FP_REDUCE_F64, FP_REDUCE_MAX, FP_REDUCE_MIN, FP_REDUCE_SUM,
    FP_WINDOW,
};
use crate::stats::CommStats;

/// Sum-allreduce over per-rank `u64` contributions.
pub fn allreduce_sum(vals: &[u64], stats: &mut CommStats) -> u64 {
    stats.collectives += 1;
    stats.fp_mix(FP_REDUCE_SUM);
    vals.iter().sum()
}

/// Min-allreduce. Empty input yields `u64::MAX` (the identity).
pub fn allreduce_min(vals: &[u64], stats: &mut CommStats) -> u64 {
    stats.collectives += 1;
    stats.fp_mix(FP_REDUCE_MIN);
    vals.iter().copied().min().unwrap_or(u64::MAX)
}

/// Min-allreduce of per-rank epoch-window proposals (stepping-policy
/// window selection). Semantically a min-reduce, but fingerprinted with
/// its own kind so a policy that issues the window collective holds a
/// schedule distinct from one that does not. Empty input yields
/// `u64::MAX` (the identity).
pub fn allreduce_min_window(vals: &[u64], stats: &mut CommStats) -> u64 {
    stats.collectives += 1;
    stats.fp_mix(FP_WINDOW);
    vals.iter().copied().min().unwrap_or(u64::MAX)
}

/// Max-allreduce. Empty input yields 0 (the identity).
pub fn allreduce_max(vals: &[u64], stats: &mut CommStats) -> u64 {
    stats.collectives += 1;
    stats.fp_mix(FP_REDUCE_MAX);
    vals.iter().copied().max().unwrap_or(0)
}

/// Logical-or allreduce (the per-phase "any rank still active?" check).
pub fn allreduce_any(vals: &[bool], stats: &mut CommStats) -> bool {
    stats.collectives += 1;
    stats.fp_mix(FP_REDUCE_ANY);
    vals.iter().any(|&b| b)
}

/// Sum-allreduce over per-rank `f64` contributions (fixed summation order,
/// so results are bit-reproducible).
pub fn allreduce_sum_f64(vals: &[f64], stats: &mut CommStats) -> f64 {
    stats.collectives += 1;
    stats.fp_mix(FP_REDUCE_F64);
    vals.iter().sum()
}

/// Max-allreduce over per-rank `f64` contributions.
pub fn allreduce_max_f64(vals: &[f64], stats: &mut CommStats) -> f64 {
    stats.collectives += 1;
    stats.fp_mix(FP_REDUCE_F64);
    vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Allgather: every rank receives the full vector of contributions.
/// Returns it once (ranks share the simulator's memory).
pub fn allgather<T: Clone>(vals: &[T], stats: &mut CommStats) -> Vec<T> {
    stats.collectives += 1;
    stats.fp_mix(FP_ALLGATHER);
    vals.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_match_reference() {
        let mut st = CommStats::new();
        let vals = [5u64, 1, 9, 3];
        assert_eq!(allreduce_sum(&vals, &mut st), 18);
        assert_eq!(allreduce_min(&vals, &mut st), 1);
        assert_eq!(allreduce_max(&vals, &mut st), 9);
        assert_eq!(st.collectives, 3);
    }

    #[test]
    fn identities_on_empty_input() {
        let mut st = CommStats::new();
        assert_eq!(allreduce_min(&[], &mut st), u64::MAX);
        assert_eq!(allreduce_min_window(&[], &mut st), u64::MAX);
        assert_eq!(allreduce_max(&[], &mut st), 0);
        assert!(!allreduce_any(&[], &mut st));
    }

    #[test]
    fn window_min_matches_plain_min_but_fingerprints_apart() {
        let vals = [7u64, 3, 11];
        let mut a = CommStats::new();
        let mut b = CommStats::new();
        assert_eq!(
            allreduce_min(&vals, &mut a),
            allreduce_min_window(&vals, &mut b)
        );
        assert_ne!(
            a.fingerprint, b.fingerprint,
            "window op must be its own kind"
        );
    }

    #[test]
    fn any_detects_single_true() {
        let mut st = CommStats::new();
        assert!(allreduce_any(&[false, false, true, false], &mut st));
        assert!(!allreduce_any(&[false, false], &mut st));
    }

    #[test]
    fn allgather_replicates() {
        let mut st = CommStats::new();
        let v = allgather(&[1, 2, 3], &mut st);
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(st.collectives, 1);
    }
}
