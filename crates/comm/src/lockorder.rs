//! Debug-gated runtime twin of the static lock-order model.
//!
//! `sssp-lint --concurrency` builds a *static* lock-order graph from this
//! crate's sources and commits it as `crates/lint/golden/lock_order.txt`.
//! This module is the runtime half of that contract: every rank thread
//! carries a [`Recorder`] that logs the actual acquisition order of the
//! named locks, and when the rank's context is dropped (i.e. at the end
//! of the rank body, surfaced by `run_threaded`'s join) it asserts that
//! every observed held→acquired pair is an edge of the static graph and
//! that no unmodeled lock was taken. A refactor that inverts an order or
//! sneaks in a new lock therefore fails debug runs even before the lint
//! golden is regenerated.
//!
//! [`STATIC_LOCKS`] and [`STATIC_EDGES`] mirror the committed golden; a
//! lint test cross-checks they stay in sync. Release builds compile the
//! recorder down to nothing.

#[cfg(debug_assertions)]
use std::cell::RefCell;
#[cfg(debug_assertions)]
use std::collections::BTreeSet;

/// Locks of the static model, by the names the static pass extracts from
/// the declarations (see `crates/lint/golden/lock_order.txt`). `slots` is
/// the rendezvous exchange; `queue` is the serving layer's single state
/// mutex, and `work_ready`/`done_ready` are its condvars (modeled as
/// primitives by the static pass even though waiting on them only ever
/// re-parks the `queue` guard).
pub const STATIC_LOCKS: &[&str] = &["slots", "queue", "work_ready", "done_ready"];

/// Held→acquired edges of the static lock-order graph. Neither the
/// rendezvous runtime nor the serving layer nests acquisitions, so the
/// graph has no edges; any engine that wants to nest must extend this
/// (and the golden) first.
pub const STATIC_EDGES: &[(&str, &str)] = &[];

/// Per-thread acquisition-order recorder. Rank-private (`RefCell`, no
/// sharing); all bookkeeping exists only under `debug_assertions`.
#[derive(Default)]
pub struct Recorder {
    /// Stack of locks currently held by this thread.
    #[cfg(debug_assertions)]
    held: RefCell<Vec<&'static str>>,
    /// Every held→acquired pair observed on this thread.
    #[cfg(debug_assertions)]
    observed: RefCell<BTreeSet<(&'static str, &'static str)>>,
    /// Every lock name acquired on this thread.
    #[cfg(debug_assertions)]
    acquired: RefCell<BTreeSet<&'static str>>,
}

impl Recorder {
    /// A fresh recorder with nothing held or observed.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Record the acquisition of `name` and wrap `guard` so its release is
    /// recorded too. Call this *around* the acquisition expression so the
    /// lexical site keeps its `.lock(` token visible to the static pass:
    ///
    /// ```text
    /// let mut slots = self.lock_rec.track(
    ///     "slots",
    ///     self.slots.lock().expect("poisoned"),
    /// );
    /// ```
    pub fn track<G>(&self, name: &'static str, guard: G) -> Tracked<'_, G> {
        self.on_acquire(name);
        Tracked {
            guard,
            name,
            rec: self,
        }
    }

    fn on_acquire(&self, name: &'static str) {
        #[cfg(debug_assertions)]
        {
            self.acquired.borrow_mut().insert(name);
            let mut observed = self.observed.borrow_mut();
            for held in self.held.borrow().iter() {
                observed.insert((held, name));
            }
            self.held.borrow_mut().push(name);
        }
        #[cfg(not(debug_assertions))]
        let _ = name;
    }

    fn on_release(&self, name: &'static str) {
        #[cfg(debug_assertions)]
        {
            let mut held = self.held.borrow_mut();
            if let Some(at) = held.iter().rposition(|h| *h == name) {
                held.remove(at);
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = name;
    }

    /// Test hook: record a held→acquired pair as if it had happened, so
    /// differential tests can prove the consistency check actually fires.
    #[cfg(debug_assertions)]
    pub fn inject_pair(&self, from: &'static str, to: &'static str) {
        self.acquired.borrow_mut().insert(from);
        self.acquired.borrow_mut().insert(to);
        self.observed.borrow_mut().insert((from, to));
    }

    /// Every held→acquired pair observed so far, in sorted order.
    #[cfg(debug_assertions)]
    pub fn observed_pairs(&self) -> Vec<(&'static str, &'static str)> {
        self.observed.borrow().iter().copied().collect()
    }

    /// Every lock name acquired so far, in sorted order.
    #[cfg(debug_assertions)]
    pub fn observed_locks(&self) -> Vec<&'static str> {
        self.acquired.borrow().iter().copied().collect()
    }
}

/// The consistency check: runs when the rank's context is dropped at the
/// end of the rank body, so a violation panics the rank thread and
/// `run_threaded` re-raises it at the join. Skipped while unwinding so it
/// never masks the original failure.
#[cfg(debug_assertions)]
impl Drop for Recorder {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        for name in self.acquired.borrow().iter() {
            assert!(
                STATIC_LOCKS.contains(name),
                "runtime lock acquisition order check: lock `{name}` is not \
                 in the static model — add it to lockorder::STATIC_LOCKS and \
                 regenerate crates/lint/golden/lock_order.txt"
            );
        }
        for (from, to) in self.observed.borrow().iter() {
            assert!(
                STATIC_EDGES.contains(&(from, to)),
                "runtime lock acquisition order `{from}` -> `{to}` is not an \
                 edge of the static lock-order graph — update \
                 lockorder::STATIC_EDGES and regenerate \
                 crates/lint/golden/lock_order.txt if the nesting is intended"
            );
        }
    }
}

/// A lock guard wrapped for release tracking: derefs to the inner guard,
/// notifies the recorder when dropped.
pub struct Tracked<'a, G> {
    guard: G,
    name: &'static str,
    rec: &'a Recorder,
}

impl<G> std::ops::Deref for Tracked<'_, G> {
    type Target = G;
    fn deref(&self) -> &G {
        &self.guard
    }
}

impl<G> std::ops::DerefMut for Tracked<'_, G> {
    fn deref_mut(&mut self) -> &mut G {
        &mut self.guard
    }
}

impl<G> Drop for Tracked<'_, G> {
    fn drop(&mut self) {
        self.rec.on_release(self.name);
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn acquisitions_and_releases_balance() {
        let rec = Recorder::new();
        {
            let g = rec.track("slots", 7u32);
            assert_eq!(*g, 7);
        }
        assert_eq!(rec.observed_locks(), vec!["slots"]);
        assert!(rec.observed_pairs().is_empty());
        assert!(rec.held.borrow().is_empty());
    }

    #[test]
    fn nesting_records_the_pair() {
        let rec = Recorder::new();
        {
            let _a = rec.track("slots", ());
            let _b = rec.track("queue", ());
            assert_eq!(rec.observed_pairs(), vec![("slots", "queue")]);
        }
        std::mem::forget(rec); // the pair would (correctly) trip Drop
    }

    #[test]
    fn sequential_acquisitions_record_no_pair() {
        let rec = Recorder::new();
        {
            let _a = rec.track("slots", ());
        }
        {
            let _b = rec.track("slots", ());
        }
        assert!(rec.observed_pairs().is_empty());
    }

    #[test]
    fn tracked_deref_mut_reaches_the_guard() {
        let rec = Recorder::new();
        let mut g = rec.track("slots", vec![1u64]);
        g.push(2);
        assert_eq!(*g, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "lock acquisition order")]
    fn unmodeled_lock_trips_the_drop_check() {
        let rec = Recorder::new();
        {
            let _g = rec.track("phantom", ());
        }
        drop(rec);
    }

    #[test]
    #[should_panic(expected = "lock acquisition order")]
    fn injected_inversion_trips_the_drop_check() {
        let rec = Recorder::new();
        rec.inject_pair("slots", "slots");
        drop(rec);
    }
}
