//! Communication accounting.
//!
//! Every quantity the paper's heuristics and figures consume is a count the
//! runtime can record exactly: messages, bytes, per-rank maxima, collective
//! invocations. The engine keeps one [`CommStats`] per run.

use crate::fingerprint::{fp_mix, FP_EXCHANGE};

/// Statistics of a single bulk-synchronous exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    /// Cross-rank messages delivered.
    pub remote_msgs: u64,
    /// Rank-local messages (owner == sender); free in the cost model.
    pub local_msgs: u64,
    /// Total bytes moved across ranks.
    pub remote_bytes: u64,
    /// Maximum bytes sent by any single rank (bottleneck signal).
    pub max_rank_send_bytes: u64,
    /// Maximum bytes received by any single rank.
    pub max_rank_recv_bytes: u64,
    /// Messages removed by sender-side coalescing before this exchange
    /// (duplicate relaxations min-reduced per destination vertex). The
    /// delivered-message counters above are post-coalescing.
    pub coalesced_msgs: u64,
}

/// Cumulative communication statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    /// One record per completed superstep, in execution order.
    pub steps: Vec<StepStats>,
    /// Number of collective operations performed (allreduce/allgather).
    pub collectives: u64,
    /// Rolling collective-schedule fingerprint (see [`crate::fingerprint`]).
    /// Every recorded exchange and every collective folds its kind code and
    /// the current epoch into this hash, so two runs with the same schedule
    /// hold the same value.
    pub fingerprint: u64,
    /// Epoch tag mixed into the fingerprint; the engine advances it at each
    /// bucket boundary via [`CommStats::set_epoch`].
    pub epoch: u64,
}

impl CommStats {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one superstep record. Each exchange is also a rendezvous all
    /// ranks must reach, so it folds into the schedule fingerprint.
    pub fn record(&mut self, step: StepStats) {
        self.fp_mix(FP_EXCHANGE);
        self.steps.push(step);
    }

    /// Fold one collective of `kind` into the schedule fingerprint.
    pub fn fp_mix(&mut self, kind: u64) {
        self.fingerprint = fp_mix(self.fingerprint, kind, self.epoch);
    }

    /// Set the epoch tag mixed into subsequent fingerprint updates.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Messages that crossed rank boundaries, summed over all supersteps.
    pub fn total_remote_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.remote_msgs).sum()
    }

    /// Rank-local (self-addressed) messages, summed over all supersteps.
    pub fn total_local_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.local_msgs).sum()
    }

    /// All delivered messages, remote and local.
    pub fn total_msgs(&self) -> u64 {
        self.total_remote_msgs() + self.total_local_msgs()
    }

    /// Bytes that crossed rank boundaries, summed over all supersteps.
    pub fn total_remote_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.remote_bytes).sum()
    }

    /// Messages saved by sender-side coalescing, summed over all supersteps.
    pub fn total_coalesced_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.coalesced_msgs).sum()
    }

    /// Number of recorded supersteps.
    pub fn num_supersteps(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut s = CommStats::new();
        s.record(StepStats {
            remote_msgs: 3,
            local_msgs: 2,
            remote_bytes: 48,
            ..Default::default()
        });
        s.record(StepStats {
            remote_msgs: 1,
            local_msgs: 0,
            remote_bytes: 16,
            ..Default::default()
        });
        assert_eq!(s.total_remote_msgs(), 4);
        assert_eq!(s.total_local_msgs(), 2);
        assert_eq!(s.total_msgs(), 6);
        assert_eq!(s.total_remote_bytes(), 64);
        assert_eq!(s.num_supersteps(), 2);
    }

    #[test]
    fn coalescing_savings_accumulate() {
        let mut s = CommStats::new();
        s.record(StepStats {
            remote_msgs: 3,
            coalesced_msgs: 5,
            ..Default::default()
        });
        s.record(StepStats {
            coalesced_msgs: 2,
            ..Default::default()
        });
        assert_eq!(s.total_coalesced_msgs(), 7);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CommStats::new();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.num_supersteps(), 0);
        assert_eq!(s.fingerprint, 0);
    }

    #[test]
    fn fingerprint_tracks_schedule_not_traffic() {
        // Two ledgers with the same superstep/collective schedule agree on
        // the fingerprint even when the traffic volumes differ ...
        let mut a = CommStats::new();
        let mut b = CommStats::new();
        a.record(StepStats {
            remote_msgs: 100,
            ..Default::default()
        });
        b.record(StepStats::default());
        a.fp_mix(crate::fingerprint::FP_REDUCE_SUM);
        b.fp_mix(crate::fingerprint::FP_REDUCE_SUM);
        assert_eq!(a.fingerprint, b.fingerprint);
        // ... and diverge as soon as the schedules differ.
        a.fp_mix(crate::fingerprint::FP_REDUCE_MIN);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn epoch_tag_changes_the_mix() {
        let mut a = CommStats::new();
        let mut b = CommStats::new();
        a.set_epoch(1);
        b.set_epoch(2);
        a.record(StepStats::default());
        b.record(StepStats::default());
        assert_ne!(a.fingerprint, b.fingerprint);
    }
}
