//! Collective-schedule fingerprints.
//!
//! Every collective a backend issues — reductions, allgathers, bulk
//! exchanges — folds a kind code and the current epoch into a rolling
//! 64-bit hash. Two ranks (or two backends) that execute the same
//! sequence of collectives hold the same fingerprint; a rank that skips
//! or adds a collective diverges immediately and stays diverged, because
//! the mix is avalanche-quality rather than additive. The threaded
//! runtime asserts fingerprint uniformity across ranks in debug builds
//! ([`crate::threaded::RankCtx::assert_schedule_uniform`]); the static
//! counterpart is the `sssp-lint --protocol` schedule table.
//!
//! Kind codes are deliberately coarse: they identify the *operation
//! family* (min-reduce vs exchange), not the call site, so the two
//! backends can fingerprint through different internal plumbing while
//! still exposing per-kind divergence.

/// Generic reduction (custom combiner).
pub const FP_REDUCE: u64 = 0x11;
/// Min-reduction.
pub const FP_REDUCE_MIN: u64 = 0x12;
/// Max-reduction.
pub const FP_REDUCE_MAX: u64 = 0x13;
/// Sum-reduction.
pub const FP_REDUCE_SUM: u64 = 0x14;
/// Logical-or reduction (the "any rank active?" check).
pub const FP_REDUCE_ANY: u64 = 0x15;
/// Floating-point reduction (cost-model estimates).
pub const FP_REDUCE_F64: u64 = 0x16;
/// Allgather of per-rank contributions.
pub const FP_ALLGATHER: u64 = 0x17;
/// Bulk-synchronous message exchange (one superstep).
pub const FP_EXCHANGE: u64 = 0x18;
/// Epoch-window min-reduction (stepping-policy window selection). Its own
/// kind so a policy that adds or drops the window collective diverges
/// from one that does not, even at identical epochs.
pub const FP_WINDOW: u64 = 0x19;

/// Fold one collective of `kind` issued during `epoch` into the rolling
/// fingerprint `fp`. A splitmix64-style finalizer: order-sensitive,
/// avalanche on every input bit, and cheap enough to run unconditionally
/// (the debug gate is on the cross-rank *assertion*, not the hash).
#[inline]
#[must_use]
pub fn fp_mix(fp: u64, kind: u64, epoch: u64) -> u64 {
    let mut x =
        fp ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ epoch.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_order_sensitive() {
        let a = fp_mix(fp_mix(0, FP_REDUCE_MIN, 1), FP_EXCHANGE, 1);
        let b = fp_mix(fp_mix(0, FP_EXCHANGE, 1), FP_REDUCE_MIN, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_distinguishes_kind_and_epoch() {
        let base = fp_mix(0, FP_REDUCE_SUM, 3);
        assert_ne!(base, fp_mix(0, FP_REDUCE_MAX, 3));
        assert_ne!(base, fp_mix(0, FP_REDUCE_SUM, 4));
    }

    #[test]
    fn identical_sequences_agree() {
        let run = |seed: u64| {
            let mut fp = seed;
            for epoch in 0..5 {
                fp = fp_mix(fp, FP_REDUCE_MIN, epoch);
                fp = fp_mix(fp, FP_EXCHANGE, epoch);
                fp = fp_mix(fp, FP_REDUCE_SUM, epoch);
            }
            fp
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1));
    }
}
