//! Property-based tests of the communication substrate.

use proptest::prelude::*;

use sssp_comm::collective::{allreduce_any, allreduce_max, allreduce_min, allreduce_sum};
use sssp_comm::exchange::{exchange, exchange_with, Outbox};
use sssp_comm::packet::PacketConfig;
use sssp_comm::stats::CommStats;

/// Arbitrary traffic pattern: a list of (src, dst, payload) sends over p ranks.
fn arb_traffic() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (1usize..10).prop_flat_map(|p| {
        let sends = proptest::collection::vec((0..p, 0..p, any::<u32>()), 0..200);
        (Just(p), sends)
    })
}

proptest! {
    #[test]
    fn exchange_conserves_every_message((p, sends) in arb_traffic()) {
        let mut obs: Vec<Outbox<(usize, usize, u32)>> = (0..p).map(|_| Outbox::new(p)).collect();
        for &(s, d, x) in &sends {
            obs[s].send(d, (s, d, x));
        }
        let (inboxes, stats) = exchange(obs, 12);

        // Every message arrives exactly once, at its destination.
        let mut received: Vec<(usize, usize, u32)> = Vec::new();
        for (dst, inbox) in inboxes.iter().enumerate() {
            for &(s, d, x) in inbox {
                prop_assert_eq!(d, dst, "message delivered to wrong rank");
                received.push((s, d, x));
            }
        }
        let mut sent_sorted = sends.clone();
        sent_sorted.sort_unstable();
        received.sort_unstable();
        prop_assert_eq!(received, sent_sorted);

        // Stats split local/remote correctly.
        let local = sends.iter().filter(|&&(s, d, _)| s == d).count() as u64;
        prop_assert_eq!(stats.local_msgs, local);
        prop_assert_eq!(stats.remote_msgs, sends.len() as u64 - local);
        prop_assert_eq!(stats.remote_bytes, stats.remote_msgs * 12);
    }

    #[test]
    fn inbox_order_is_source_major((p, sends) in arb_traffic()) {
        let mut obs: Vec<Outbox<usize>> = (0..p).map(|_| Outbox::new(p)).collect();
        for &(s, d, _) in &sends {
            obs[s].send(d, s);
        }
        let (inboxes, _) = exchange(obs, 8);
        for inbox in &inboxes {
            // Sources appear in non-decreasing order within each inbox.
            prop_assert!(inbox.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn packet_framing_only_adds_bytes((p, sends) in arb_traffic()) {
        let build = || {
            let mut obs: Vec<Outbox<u32>> = (0..p).map(|_| Outbox::new(p)).collect();
            for &(s, d, x) in &sends {
                obs[s].send(d, x);
            }
            obs
        };
        let (_, raw) = exchange(build(), 16);
        let (inboxes, framed) = exchange_with(build(), 16, Some(&PacketConfig::bgq()));
        prop_assert_eq!(framed.remote_msgs, raw.remote_msgs);
        prop_assert!(framed.remote_bytes >= raw.remote_bytes);
        prop_assert!(framed.max_rank_send_bytes >= raw.max_rank_send_bytes);
        // Delivery identical regardless of framing.
        let total: usize = inboxes.iter().map(Vec::len).sum();
        prop_assert_eq!(total as u64, raw.remote_msgs + raw.local_msgs);
    }

    #[test]
    fn wire_bytes_monotone_in_count(count in 0u64..10_000, msg in 1usize..64) {
        let cfg = PacketConfig::bgq();
        let a = cfg.wire_bytes(count, msg);
        let b = cfg.wire_bytes(count + 1, msg);
        prop_assert!(b >= a);
        prop_assert!(a >= count * msg as u64);
    }

    #[test]
    fn collectives_match_reference(vals in proptest::collection::vec(0u64..u32::MAX as u64, 0..50)) {
        let mut st = CommStats::new();
        prop_assert_eq!(allreduce_sum(&vals, &mut st), vals.iter().sum::<u64>());
        prop_assert_eq!(allreduce_min(&vals, &mut st), vals.iter().copied().min().unwrap_or(u64::MAX));
        prop_assert_eq!(allreduce_max(&vals, &mut st), vals.iter().copied().max().unwrap_or(0));
        let flags: Vec<bool> = vals.iter().map(|&v| v % 2 == 0).collect();
        prop_assert_eq!(allreduce_any(&flags, &mut st), flags.contains(&true));
        prop_assert_eq!(st.collectives, 4);
    }
}
