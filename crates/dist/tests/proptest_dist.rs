//! Property-based tests of partitioning and vertex splitting.

use proptest::prelude::*;

use sssp_dist::{split_heavy_vertices, DistGraph, Partition};
use sssp_graph::{gen, CsrBuilder};

proptest! {
    #[test]
    fn partition_roundtrip(
        n in 0usize..200,
        n_proxy in 0usize..100,
        p in 1usize..17,
    ) {
        let part = Partition::with_proxies(n, n_proxy, p);
        let mut per_rank = vec![0usize; p];
        for v in 0..(n + n_proxy) as u32 {
            let r = part.owner(v);
            prop_assert!(r < p);
            let l = part.to_local(v);
            prop_assert!(l < part.local_count(r));
            prop_assert_eq!(part.to_global(r, l), v);
            per_rank[r] += 1;
        }
        for (r, &cnt) in per_rank.iter().enumerate() {
            prop_assert_eq!(cnt, part.local_count(r));
        }
    }

    #[test]
    fn dist_graph_covers_every_row(
        n in 2usize..80,
        m in 0usize..300,
        p in 1usize..9,
        seed in 0u64..50,
    ) {
        let csr = CsrBuilder::new().build(&gen::uniform(n, m, 30, seed));
        let dg = DistGraph::build(&csr, p, 2);
        for v in csr.vertices() {
            let r = dg.part.owner(v);
            let l = dg.part.to_local(v);
            let (t, w) = dg.locals[r].row(l);
            let (gt, gw) = csr.row_slices(v);
            prop_assert_eq!(t, gt);
            prop_assert_eq!(w, gw);
        }
    }

    #[test]
    fn splitting_caps_proxy_degrees(
        n in 4usize..60,
        m in 10usize..400,
        p in 1usize..6,
        thr in 4usize..40,
        seed in 0u64..50,
    ) {
        let csr = CsrBuilder::new().build(&gen::uniform(n, m, 30, seed));
        let (split, part, rep) = split_heavy_vertices(&csr, p, thr);
        prop_assert_eq!(part.num_vertices(), split.num_vertices());
        // Proxies carry at most `thr` shard edges plus the zero-weight star
        // edge back to their original vertex.
        for v in n..split.num_vertices() {
            prop_assert!(split.degree(v as u32) <= thr + 1);
        }
        // Originals that were split now only touch proxies.
        if rep.proxies_created > 0 {
            for v in 0..n as u32 {
                if csr.degree(v) > thr {
                    prop_assert_eq!(split.degree(v), csr.degree(v).div_ceil(thr));
                }
            }
        }
    }

    #[test]
    fn splitting_preserves_shortest_distances(
        n in 4usize..50,
        m in 10usize..300,
        p in 1usize..6,
        thr in 3usize..20,
        seed in 0u64..50,
    ) {
        // Reference shortest distances via a small local Dijkstra.
        fn dijkstra(g: &sssp_graph::Csr, root: u32) -> Vec<u64> {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut dist = vec![u64::MAX; g.num_vertices()];
            let mut heap = BinaryHeap::new();
            dist[root as usize] = 0;
            heap.push(Reverse((0u64, root)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u as usize] { continue; }
                for (v, w) in g.row(u) {
                    let nd = d + w as u64;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            dist
        }

        let csr = CsrBuilder::new().build(&gen::uniform(n, m, 30, seed));
        let (split, _, _) = split_heavy_vertices(&csr, p, thr);
        let before = dijkstra(&csr, 0);
        let after = dijkstra(&split, 0);
        for v in 0..n {
            prop_assert_eq!(before[v], after[v], "vertex {}", v);
        }
    }

    #[test]
    fn thread_loads_conserve_work(
        threads in 1usize..16,
        charges in proptest::collection::vec((0usize..64, 0u64..1000, any::<bool>()), 0..40),
    ) {
        let mut loads = sssp_dist::ThreadLoads::new(threads);
        let mut total = 0u64;
        for (local, n, balanced) in charges {
            loads.charge(local, n, balanced);
            total += n;
        }
        prop_assert_eq!(loads.total(), total);
        prop_assert!(loads.max() <= total);
        // Max is at least the average (pigeonhole).
        prop_assert!(loads.max() as u128 * threads as u128 >= total as u128);
    }
}
