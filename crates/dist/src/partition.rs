//! Vertex → rank ownership.
//!
//! Original ("base") vertices use the paper's **block** distribution by
//! default: `owner(v) = v / ⌈n/P⌉`. A **cyclic** distribution
//! (`owner(v) = v mod P`) is also provided — the standard Graph 500
//! counter-measure when vertex ids correlate with degree (un-scrambled
//! R-MAT generators place all hubs at low ids, which block distribution
//! would pile onto rank 0). Proxy vertices created by the splitting load
//! balancer occupy the id range `[n_base, n_base + n_proxy)` and are
//! always round-robin distributed, which is what scatters a split hub's
//! shards across distinct ranks.

use sssp_graph::VertexId;

/// How base vertices map to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Contiguous blocks of `⌈n/P⌉` vertices per rank (the paper's layout).
    Block,
    /// Round-robin: vertex `v` on rank `v mod P`.
    Cyclic,
}

/// Block-or-cyclic + proxy-region partition of `n_base + n_proxy` vertices
/// over `p` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    kind: PartitionKind,
    n_base: usize,
    n_proxy: usize,
    p: usize,
    block: usize,
}

impl Partition {
    /// Block-partition `n_base` vertices (no proxies) over `p` ranks.
    pub fn new(n_base: usize, p: usize) -> Self {
        Self::with_proxies(n_base, 0, p)
    }

    /// Block partition with an additional proxy region.
    pub fn with_proxies(n_base: usize, n_proxy: usize, p: usize) -> Self {
        Self::with_kind(PartitionKind::Block, n_base, n_proxy, p)
    }

    /// Cyclic-partition `n_base` vertices (no proxies) over `p` ranks.
    pub fn cyclic(n_base: usize, p: usize) -> Self {
        Self::with_kind(PartitionKind::Cyclic, n_base, 0, p)
    }

    /// Fully general constructor.
    pub fn with_kind(kind: PartitionKind, n_base: usize, n_proxy: usize, p: usize) -> Self {
        assert!(p > 0, "at least one rank required");
        let block = n_base.div_ceil(p).max(1);
        Partition {
            kind,
            n_base,
            n_proxy,
            p,
            block,
        }
    }

    /// Which distribution scheme this partition uses.
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }

    #[inline]
    /// Number of ranks `P`.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    #[inline]
    /// Total vertex count (base + proxies).
    pub fn num_vertices(&self) -> usize {
        self.n_base + self.n_proxy
    }

    #[inline]
    /// Number of original (non-proxy) vertices.
    pub fn num_base(&self) -> usize {
        self.n_base
    }

    #[inline]
    /// Number of proxy vertices appended by splitting.
    pub fn num_proxies(&self) -> usize {
        self.n_proxy
    }

    #[inline]
    /// Is `v` a proxy introduced by vertex splitting?
    pub fn is_proxy(&self, v: VertexId) -> bool {
        (v as usize) >= self.n_base
    }

    /// Owning rank of global vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        let v = v as usize;
        debug_assert!(v < self.num_vertices());
        if v < self.n_base {
            match self.kind {
                PartitionKind::Block => (v / self.block).min(self.p - 1),
                PartitionKind::Cyclic => v % self.p,
            }
        } else {
            (v - self.n_base) % self.p
        }
    }

    /// Number of base vertices owned by `rank`.
    pub fn base_count(&self, rank: usize) -> usize {
        match self.kind {
            PartitionKind::Block => {
                let lo = (rank * self.block).min(self.n_base);
                let hi = ((rank + 1) * self.block).min(self.n_base);
                hi - lo
            }
            PartitionKind::Cyclic => {
                if self.n_base == 0 {
                    0
                } else {
                    (self.n_base + self.p - 1 - rank) / self.p
                }
            }
        }
    }

    /// Number of proxy vertices owned by `rank`.
    pub fn proxy_count(&self, rank: usize) -> usize {
        if self.n_proxy == 0 {
            return 0;
        }
        // Count of i in [0, n_proxy) with i % p == rank.
        (self.n_proxy + self.p - 1 - rank) / self.p
    }

    /// Total vertices owned by `rank`.
    pub fn local_count(&self, rank: usize) -> usize {
        self.base_count(rank) + self.proxy_count(rank)
    }

    /// Local index of global vertex `v` on its owning rank. Base vertices
    /// come first (in ascending global-id order), then the rank's proxies.
    #[inline]
    pub fn to_local(&self, v: VertexId) -> usize {
        let v = v as usize;
        if v < self.n_base {
            match self.kind {
                PartitionKind::Block => v - self.owner(sssp_graph::checked_u32(v)) * self.block,
                PartitionKind::Cyclic => v / self.p,
            }
        } else {
            let pi = v - self.n_base;
            let rank = pi % self.p;
            self.base_count(rank) + pi / self.p
        }
    }

    /// Local index of `v` on its owning rank, narrowed to the `u32` domain
    /// of message fields via [`sssp_graph::checked_u32`]. The engine's
    /// message builders use this instead of `to_local(v) as u32` so that
    /// truncation can never pass silently (enforced by `sssp-lint`).
    #[inline]
    pub fn local_index(&self, v: VertexId) -> u32 {
        sssp_graph::checked_u32(self.to_local(v))
    }

    /// Global id of `local` on `rank` (inverse of [`Self::to_local`]).
    #[inline]
    pub fn to_global(&self, rank: usize, local: usize) -> VertexId {
        let base = self.base_count(rank);
        if local < base {
            match self.kind {
                PartitionKind::Block => sssp_graph::checked_u32(rank * self.block + local),
                PartitionKind::Cyclic => sssp_graph::checked_u32(local * self.p + rank),
            }
        } else {
            sssp_graph::checked_u32(self.n_base + (local - base) * self.p + rank)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_base_only() {
        let part = Partition::new(100, 7);
        for v in 0..100u32 {
            let r = part.owner(v);
            let l = part.to_local(v);
            assert!(l < part.local_count(r));
            assert_eq!(part.to_global(r, l), v);
        }
    }

    #[test]
    fn roundtrip_with_proxies() {
        let part = Partition::with_proxies(50, 23, 4);
        for v in 0..73u32 {
            let r = part.owner(v);
            let l = part.to_local(v);
            assert!(l < part.local_count(r), "v={v} r={r} l={l}");
            assert_eq!(part.to_global(r, l), v, "v={v}");
        }
    }

    #[test]
    fn counts_sum_to_n() {
        for (n, np, p) in [(100, 0, 7), (64, 13, 4), (5, 100, 8), (0, 3, 2)] {
            let part = Partition::with_proxies(n, np, p);
            let total: usize = (0..p).map(|r| part.local_count(r)).sum();
            assert_eq!(total, n + np);
        }
    }

    #[test]
    fn proxies_are_round_robin() {
        let part = Partition::with_proxies(10, 8, 4);
        // Proxy i (global 10 + i) should land on rank i % 4.
        for i in 0..8u32 {
            assert_eq!(part.owner(10 + i), (i % 4) as usize);
        }
    }

    #[test]
    fn block_distribution_is_contiguous() {
        let part = Partition::new(16, 4);
        for v in 0..16u32 {
            assert_eq!(part.owner(v), (v / 4) as usize);
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let part = Partition::with_proxies(10, 5, 1);
        for v in 0..15u32 {
            assert_eq!(part.owner(v), 0);
            assert_eq!(part.to_global(0, part.to_local(v)), v);
        }
    }

    #[test]
    fn more_ranks_than_vertices() {
        let part = Partition::new(3, 8);
        let total: usize = (0..8).map(|r| part.local_count(r)).sum();
        assert_eq!(total, 3);
        for v in 0..3u32 {
            let r = part.owner(v);
            assert_eq!(part.to_global(r, part.to_local(v)), v);
        }
    }

    #[test]
    fn is_proxy_boundary() {
        let part = Partition::with_proxies(5, 2, 2);
        assert!(!part.is_proxy(4));
        assert!(part.is_proxy(5));
        assert!(part.is_proxy(6));
    }

    #[test]
    fn cyclic_roundtrip() {
        let part = Partition::cyclic(101, 7);
        for v in 0..101u32 {
            assert_eq!(part.owner(v), (v % 7) as usize);
            let r = part.owner(v);
            let l = part.to_local(v);
            assert!(l < part.local_count(r));
            assert_eq!(part.to_global(r, l), v);
        }
        let total: usize = (0..7).map(|r| part.local_count(r)).sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn cyclic_with_proxies_roundtrip() {
        let part = Partition::with_kind(PartitionKind::Cyclic, 20, 9, 4);
        for v in 0..29u32 {
            let r = part.owner(v);
            let l = part.to_local(v);
            assert_eq!(part.to_global(r, l), v, "v={v}");
        }
    }

    #[test]
    fn cyclic_balances_clustered_ids() {
        // First 10 ids (the "hubs" in an unscrambled R-MAT) spread evenly
        // under cyclic but pile onto rank 0 under block.
        let block = Partition::new(100, 10);
        let cyclic = Partition::cyclic(100, 10);
        let block_r0 = (0..10u32).filter(|&v| block.owner(v) == 0).count();
        let cyclic_r0 = (0..10u32).filter(|&v| cyclic.owner(v) == 0).count();
        assert_eq!(block_r0, 10);
        assert_eq!(cyclic_r0, 1);
    }
}
