//! Distributed graph layer.
//!
//! Implements the data distribution described in §II of the paper:
//!
//! * vertices are **block-distributed** over `P` ranks ([`Partition`]), each
//!   vertex owned by exactly one rank;
//! * each rank holds the adjacency of its vertices as a local CSR slice with
//!   weight-sorted rows ([`LocalGraph`]);
//! * within a rank, vertices are further owned by logical **threads**
//!   ([`threads`]), with the heavy-vertex edge-splitting of §III-E;
//! * the inter-node **vertex splitting** load balancer of §III-E
//!   ([`split`]): vertices of extreme degree are replaced by proxies joined
//!   with zero-weight edges, their neighborhoods scattered across ranks.
//!
//! Proxies live in a dedicated id region `[n_base, n_base + n_proxy)` that is
//! round-robin distributed (so the shards of one hub land on distinct ranks),
//! while original vertices keep their ids — results never need re-mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod local_graph;
pub mod partition;
pub mod split;
pub mod threads;

pub use local_graph::{DistGraph, LocalGraph};
pub use partition::Partition;
pub use split::{split_heavy_vertices, SplitReport};
pub use threads::ThreadLoads;
