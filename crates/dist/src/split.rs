//! Inter-node vertex splitting (§III-E, second tier).
//!
//! At extreme scale the neighborhood of a single hub exceeds what one rank
//! can process, so the paper splits such vertices: a vertex `u` with degree
//! above the π′ threshold is given `ℓ` proxies `u₁ … u_ℓ` connected to `u`
//! by zero-weight edges; `u`'s original edges are partitioned round-robin
//! among the proxies, and the proxies are placed on distinct ranks (via the
//! partition's round-robin proxy region). Shortest distances are unchanged:
//! any path through `u` now takes two extra zero-weight hops.

use sssp_graph::{Csr, CsrBuilder, EdgeList, VertexId};

use crate::partition::Partition;

/// Outcome summary of a splitting pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitReport {
    /// Degree threshold above which vertices were split.
    pub threshold: usize,
    /// Number of vertices that exceeded the threshold.
    pub heavy_vertices: usize,
    /// Proxies appended to the id space.
    pub proxies_created: usize,
    /// Maximum degree before splitting.
    pub max_degree_before: usize,
    /// Maximum degree after splitting.
    pub max_degree_after: usize,
}

/// A reasonable default for π′: a vertex is "extreme" when its neighborhood
/// is a significant fraction of a rank's average edge share. Mirrors the
/// paper's (unpublished) heuristic in spirit: inter-node splitting only
/// triggers when intra-node balancing can no longer help.
pub fn auto_threshold(csr: &Csr, p: usize) -> usize {
    let per_rank = csr.num_directed_edges() / p.max(1);
    (per_rank / 4).max(64)
}

/// Split every vertex with degree > `threshold`. Returns the transformed
/// graph, the proxy-aware partition for `p` ranks, and a report.
///
/// The transformed graph preserves all shortest distances of the original
/// vertices (ids `0..n`); proxies occupy ids `n..n+proxies_created` and end
/// with `d(proxy) = d(original)`.
///
/// # Examples
///
/// ```
/// use sssp_dist::split_heavy_vertices;
/// use sssp_graph::{gen, CsrBuilder};
///
/// // A 100-leaf star: the center's neighborhood is split into 10 proxies.
/// let csr = CsrBuilder::new().build(&gen::star(101, 5));
/// let (split, part, report) = split_heavy_vertices(&csr, 4, 10);
/// assert_eq!(report.heavy_vertices, 1);
/// assert_eq!(report.proxies_created, 10);
/// assert_eq!(split.num_vertices(), 101 + 10);
/// // The proxies are owned by distinct ranks (round-robin).
/// assert_ne!(part.owner(101), part.owner(102));
/// ```
pub fn split_heavy_vertices(
    csr: &Csr,
    p: usize,
    threshold: usize,
) -> (Csr, Partition, SplitReport) {
    assert!(threshold >= 1, "threshold must be positive");
    let n = csr.num_vertices();

    // Plan: number of proxies per heavy vertex, and their id offsets.
    let mut num_proxies = vec![0usize; n];
    let mut proxy_base = vec![0usize; n];
    let mut total_proxies = 0usize;
    for v in 0..n {
        let d = csr.degree(sssp_graph::checked_u32(v));
        if d > threshold {
            proxy_base[v] = total_proxies;
            num_proxies[v] = d.div_ceil(threshold);
            total_proxies += num_proxies[v];
        }
    }

    let heavy_vertices = num_proxies.iter().filter(|&&k| k > 0).count();
    let report_before = csr.max_degree();

    if total_proxies == 0 {
        let part = Partition::new(n, p);
        return (
            csr.clone(),
            part,
            SplitReport {
                threshold,
                heavy_vertices: 0,
                proxies_created: 0,
                max_degree_before: report_before,
                max_degree_after: report_before,
            },
        );
    }

    // Rewrite edges: each endpoint incidence of a heavy vertex goes to the
    // next proxy in round-robin order.
    let mut el = EdgeList::new(n + total_proxies);
    let mut cursor = vec![0usize; n];
    let endpoint = |v: VertexId, cursor: &mut Vec<usize>| -> VertexId {
        let vi = v as usize;
        if num_proxies[vi] == 0 {
            return v;
        }
        let slot = cursor[vi] % num_proxies[vi];
        cursor[vi] += 1;
        sssp_graph::checked_u32(n + proxy_base[vi] + slot)
    };
    for (u, v, w) in csr.undirected_edges() {
        let nu = endpoint(u, &mut cursor);
        let nv = endpoint(v, &mut cursor);
        el.push(nu, nv, w);
    }
    // Zero-weight star from each heavy vertex to its proxies.
    for v in 0..n {
        for i in 0..num_proxies[v] {
            el.push(
                sssp_graph::checked_u32(v),
                sssp_graph::checked_u32(n + proxy_base[v] + i),
                0,
            );
        }
    }

    let new_csr = CsrBuilder::new().build(&el);
    let part = Partition::with_proxies(n, total_proxies, p);
    let report = SplitReport {
        threshold,
        heavy_vertices,
        proxies_created: total_proxies,
        max_degree_before: report_before,
        max_degree_after: new_csr.max_degree(),
    };
    (new_csr, part, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::gen;

    #[test]
    fn no_heavy_vertices_is_identity() {
        let csr = CsrBuilder::new().build(&gen::path(10, 3));
        let (g2, part, rep) = split_heavy_vertices(&csr, 2, 10);
        assert_eq!(rep.proxies_created, 0);
        assert_eq!(g2.num_vertices(), 10);
        assert_eq!(part.num_proxies(), 0);
    }

    #[test]
    fn star_center_gets_split() {
        let csr = CsrBuilder::new().build(&gen::star(101, 5)); // center degree 100
        let (g2, part, rep) = split_heavy_vertices(&csr, 4, 10);
        assert_eq!(rep.heavy_vertices, 1);
        assert_eq!(rep.proxies_created, 10);
        assert_eq!(part.num_proxies(), 10);
        // Center now touches only its proxies.
        assert_eq!(g2.degree(0), 10);
        // Every proxy: 10 leaf edges + 1 zero edge to the center.
        for i in 0..10u32 {
            assert_eq!(g2.degree(101 + i), 11);
        }
        assert!(rep.max_degree_after < rep.max_degree_before);
    }

    #[test]
    fn split_reduces_max_degree() {
        let el = gen::uniform(200, 3000, 20, 8);
        let csr = CsrBuilder::new().build(&el);
        let thr = 16;
        let (g2, _, rep) = split_heavy_vertices(&csr, 4, thr);
        // Original vertices now have degree ≤ threshold or their proxy count;
        // proxies have ≤ threshold + 1 edges (shard + star edge).
        for v in 0..g2.num_vertices() {
            if v < 200 {
                let d = csr.degree(v as VertexId);
                if d > thr {
                    assert_eq!(g2.degree(v as VertexId), d.div_ceil(thr));
                }
            } else {
                assert!(g2.degree(v as VertexId) <= thr + 1);
            }
        }
        assert!(rep.max_degree_after <= rep.max_degree_before);
    }

    #[test]
    fn edge_count_grows_only_by_stars() {
        let csr = CsrBuilder::new().build(&gen::star(51, 2));
        let (g2, _, rep) = split_heavy_vertices(&csr, 2, 10);
        assert_eq!(
            g2.num_undirected_edges(),
            csr.num_undirected_edges() + rep.proxies_created
        );
    }

    #[test]
    fn zero_weight_edges_present_on_star() {
        let csr = CsrBuilder::new().build(&gen::star(51, 2));
        let (g2, _, _) = split_heavy_vertices(&csr, 2, 10);
        let zero_edges = g2.undirected_edges().filter(|&(_, _, w)| w == 0).count();
        assert_eq!(zero_edges, 5);
    }
}
