//! Per-rank CSR slices and the assembled distributed graph.

use sssp_graph::{Csr, VertexId, Weight};

use crate::partition::Partition;

/// The adjacency of one rank's vertices. Rows are indexed by *local* vertex
/// id and keep the weight-sorted order inherited from the global CSR, so the
/// short/long split, the IOS inner bound and the pull-request count are all
/// binary searches here too.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>, // global ids
    weights: Vec<Weight>,
    /// Per-vertex power-of-two weight histograms (`hist_buckets` counters
    /// per row) — the approximate range-count structure §III-C suggests as
    /// an alternative to binary search on sorted rows.
    hist: Vec<u32>,
    hist_buckets: usize,
}

/// Histogram bucket of a weight: 0 for `w = 0`, otherwise `1 + ⌊log₂ w⌋`
/// (bucket `b ≥ 1` covers `[2^{b−1}, 2^b)`).
#[inline]
pub fn weight_bucket(w: Weight) -> usize {
    if w == 0 {
        0
    } else {
        1 + (31 - w.leading_zeros()) as usize
    }
}

impl LocalGraph {
    /// Assemble a local graph directly from per-vertex `(targets, weights)`
    /// rows (each row already weight-sorted). The distribution layer goes
    /// through [`DistGraph`](crate::DistGraph); this constructor exists for
    /// unit tests of row-consuming code.
    pub fn from_rows<I>(rows: I) -> Self
    where
        I: IntoIterator<Item = (Vec<VertexId>, Vec<Weight>)>,
    {
        let rows: Vec<(Vec<VertexId>, Vec<Weight>)> = rows.into_iter().collect();
        let total: usize = rows.iter().map(|(t, _)| t.len()).sum();
        let max_w = rows
            .iter()
            .flat_map(|(_, w)| w.iter().copied())
            .max()
            .unwrap_or(0);
        let hist_buckets = weight_bucket(max_w) + 1;
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut targets = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        let mut hist = vec![0u32; rows.len() * hist_buckets];
        offsets.push(0);
        for (i, (t, w)) in rows.into_iter().enumerate() {
            for &x in &w {
                hist[i * hist_buckets + weight_bucket(x)] += 1;
            }
            targets.extend_from_slice(&t);
            weights.extend_from_slice(&w);
            offsets.push(targets.len());
        }
        LocalGraph {
            offsets,
            targets,
            weights,
            hist,
            hist_buckets,
        }
    }

    /// Approximate number of edges of `local` with weight `< bound`, from
    /// the power-of-two histogram: whole buckets below `bound` count fully,
    /// the straddled bucket contributes linearly. `O(log w_max)` regardless
    /// of degree, and within a factor of 2 of the exact count.
    pub fn estimate_weight_below(&self, local: usize, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let row = &self.hist[local * self.hist_buckets..(local + 1) * self.hist_buckets];
        let mut est = 0.0f64;
        for (b, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = if b == 0 {
                (0u64, 1u64)
            } else {
                (1u64 << (b - 1), 1u64 << b)
            };
            if bound >= hi {
                est += c as f64;
            } else if bound > lo {
                est += c as f64 * (bound - lo) as f64 / (hi - lo) as f64;
            }
        }
        est.round() as u64
    }

    #[inline]
    /// Number of vertices this rank owns.
    pub fn num_local(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    /// Degree of the local vertex `local`.
    pub fn degree(&self, local: usize) -> usize {
        self.offsets[local + 1] - self.offsets[local]
    }

    /// `(targets, weights)` of the row, sorted by weight.
    #[inline]
    pub fn row(&self, local: usize) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[local];
        let hi = self.offsets[local + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Number of edges of `local` with weight `< bound` (binary search).
    #[inline]
    pub fn count_weight_below(&self, local: usize, bound: Weight) -> usize {
        let (_, ws) = self.row(local);
        ws.partition_point(|&w| w < bound)
    }

    /// First row position with weight `>= bound`; the suffix from here is
    /// the "long edge" range for `bound = Δ`.
    #[inline]
    pub fn weight_lower_bound(&self, local: usize, bound: Weight) -> usize {
        self.count_weight_below(local, bound)
    }

    /// Directed edge count of this rank’s slice.
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }
}

/// A graph distributed over `P` simulated ranks.
#[derive(Debug, Clone)]
pub struct DistGraph {
    /// The vertex partition shared by all ranks.
    pub part: Partition,
    /// Per-rank adjacency slices, indexed by rank.
    pub locals: Vec<LocalGraph>,
    /// Logical threads per rank (for the intra-node load model).
    pub threads_per_rank: usize,
    /// Directed edge slots over all ranks (2× undirected count).
    pub m_directed: u64,
    /// Undirected edge count of the *input* graph (pre-splitting); this is
    /// the `m` in the benchmark's `TEPS = m / t`.
    pub m_input_undirected: u64,
}

impl DistGraph {
    /// Distribute `csr` over `p` ranks with `threads_per_rank` logical
    /// threads each (block distribution, the paper's layout).
    pub fn build(csr: &Csr, p: usize, threads_per_rank: usize) -> Self {
        let part = Partition::new(csr.num_vertices(), p);
        Self::build_with_partition(
            csr,
            part,
            threads_per_rank,
            csr.num_undirected_edges() as u64,
        )
    }

    /// Distribute `csr` over `p` ranks with the §III-E degree-threshold
    /// vertex-splitting trigger armed: when the maximum degree exceeds the
    /// π′ threshold ([`crate::split::auto_threshold`]), heavy vertices are
    /// replaced by round-robin-distributed proxies before slicing, and the
    /// split report is returned alongside the graph. Shortest distances of
    /// the original ids `0..n` are preserved (zero-weight star edges), so
    /// this is the entry point for SSSP-style runs; hop- or mass-based
    /// algorithms (BFS, PageRank) must keep using [`DistGraph::build`],
    /// whose layout never rewrites the graph.
    pub fn build_auto_split(
        csr: &Csr,
        p: usize,
        threads_per_rank: usize,
    ) -> (Self, Option<crate::split::SplitReport>) {
        let threshold = crate::split::auto_threshold(csr, p);
        if p > 1 && csr.max_degree() > threshold {
            let (split, part, report) = crate::split::split_heavy_vertices(csr, p, threshold);
            let dg = Self::build_with_partition(
                &split,
                part,
                threads_per_rank,
                csr.num_undirected_edges() as u64,
            );
            (dg, Some(report))
        } else {
            (Self::build(csr, p, threads_per_rank), None)
        }
    }

    /// Distribute with a cyclic layout (`owner(v) = v mod P`) — useful when
    /// vertex ids correlate with degree.
    pub fn build_cyclic(csr: &Csr, p: usize, threads_per_rank: usize) -> Self {
        let part = Partition::cyclic(csr.num_vertices(), p);
        Self::build_with_partition(
            csr,
            part,
            threads_per_rank,
            csr.num_undirected_edges() as u64,
        )
    }

    /// Distribute a split graph (see [`crate::split`]): `part` carries the
    /// proxy region, `m_input_undirected` should be the pre-split edge count.
    pub fn build_with_partition(
        csr: &Csr,
        part: Partition,
        threads_per_rank: usize,
        m_input_undirected: u64,
    ) -> Self {
        assert_eq!(csr.num_vertices(), part.num_vertices());
        let locals = Self::slice(csr, &part);
        DistGraph {
            part,
            locals,
            threads_per_rank: threads_per_rank.max(1),
            m_directed: csr.num_directed_edges() as u64,
            m_input_undirected,
        }
    }

    fn slice(csr: &Csr, part: &Partition) -> Vec<LocalGraph> {
        (0..part.num_ranks())
            .map(|rank| {
                let rows: Vec<(Vec<VertexId>, Vec<Weight>)> = (0..part.local_count(rank))
                    .map(|local| {
                        let v = part.to_global(rank, local);
                        let (t, w) = csr.row_slices(v);
                        (t.to_vec(), w.to_vec())
                    })
                    .collect();
                LocalGraph::from_rows(rows)
            })
            .collect()
    }

    #[inline]
    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.part.num_ranks()
    }

    #[inline]
    /// Total vertex count (base + proxies).
    pub fn num_vertices(&self) -> usize {
        self.part.num_vertices()
    }

    /// Degree of a global vertex (routed through its owner's local graph).
    pub fn degree(&self, v: VertexId) -> usize {
        self.locals[self.part.owner(v)].degree(self.part.to_local(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::{gen, CsrBuilder};

    fn small() -> Csr {
        CsrBuilder::new().build(&gen::uniform(64, 400, 50, 3))
    }

    #[test]
    fn slicing_preserves_rows() {
        let csr = small();
        let dg = DistGraph::build(&csr, 5, 2);
        for v in csr.vertices() {
            let r = dg.part.owner(v);
            let l = dg.part.to_local(v);
            let (t, w) = dg.locals[r].row(l);
            let (gt, gw) = csr.row_slices(v);
            assert_eq!(t, gt);
            assert_eq!(w, gw);
        }
    }

    #[test]
    fn edge_totals_match() {
        let csr = small();
        let dg = DistGraph::build(&csr, 7, 1);
        let total: usize = dg.locals.iter().map(|l| l.num_directed_edges()).sum();
        assert_eq!(total, csr.num_directed_edges());
        assert_eq!(dg.m_directed, csr.num_directed_edges() as u64);
        assert_eq!(dg.m_input_undirected, csr.num_undirected_edges() as u64);
    }

    #[test]
    fn count_weight_below_matches_global() {
        let csr = small();
        let dg = DistGraph::build(&csr, 3, 1);
        for v in csr.vertices() {
            let r = dg.part.owner(v);
            let l = dg.part.to_local(v);
            for bound in [0, 1, 10, 25, 51] {
                assert_eq!(
                    dg.locals[r].count_weight_below(l, bound),
                    csr.count_weight_below(v, bound)
                );
            }
        }
    }

    #[test]
    fn degree_route_matches() {
        let csr = small();
        let dg = DistGraph::build(&csr, 4, 1);
        for v in csr.vertices() {
            assert_eq!(dg.degree(v), csr.degree(v));
        }
    }

    #[test]
    fn single_rank_holds_whole_graph() {
        let csr = small();
        let dg = DistGraph::build(&csr, 1, 4);
        assert_eq!(dg.locals[0].num_local(), csr.num_vertices());
        assert_eq!(dg.locals[0].num_directed_edges(), csr.num_directed_edges());
    }

    #[test]
    fn threads_clamped_to_one() {
        let csr = small();
        let dg = DistGraph::build(&csr, 2, 0);
        assert_eq!(dg.threads_per_rank, 1);
    }

    #[test]
    fn auto_split_triggers_on_extreme_degree() {
        // A 400-leaf star: center degree 400 far exceeds the π′ threshold
        // (max(m_directed/p/4, 64)), so the trigger must engage and scatter
        // the hub's neighborhood over proxies on distinct ranks.
        let csr = CsrBuilder::new().build(&gen::star(401, 5));
        for p in [2, 4, 6] {
            let (dg, report) = DistGraph::build_auto_split(&csr, p, 2);
            let report = report.expect("trigger should engage");
            assert!(report.proxies_created > 0);
            assert!(report.max_degree_after < report.max_degree_before);
            assert_eq!(dg.part.num_proxies(), report.proxies_created);
            assert_eq!(dg.part.num_base(), 401);
            // TEPS accounting still refers to the input graph.
            assert_eq!(dg.m_input_undirected, csr.num_undirected_edges() as u64);
        }
    }

    #[test]
    fn auto_split_leaves_mild_graphs_alone() {
        let csr = small(); // max degree well under the 64-edge floor
        let (dg, report) = DistGraph::build_auto_split(&csr, 4, 2);
        assert!(report.is_none());
        assert_eq!(dg.part.num_proxies(), 0);
        assert_eq!(dg.num_vertices(), csr.num_vertices());
    }

    #[test]
    fn auto_split_never_engages_on_one_rank() {
        // On a single rank there is no inter-node imbalance to fix.
        let csr = CsrBuilder::new().build(&gen::star(401, 5));
        let (dg, report) = DistGraph::build_auto_split(&csr, 1, 2);
        assert!(report.is_none());
        assert_eq!(dg.num_vertices(), csr.num_vertices());
    }

    #[test]
    fn weight_bucket_boundaries() {
        assert_eq!(weight_bucket(0), 0);
        assert_eq!(weight_bucket(1), 1);
        assert_eq!(weight_bucket(2), 2);
        assert_eq!(weight_bucket(3), 2);
        assert_eq!(weight_bucket(4), 3);
        assert_eq!(weight_bucket(255), 8);
        assert_eq!(weight_bucket(256), 9);
    }

    #[test]
    fn histogram_estimate_brackets_exact_count() {
        let csr = small();
        let dg = DistGraph::build(&csr, 3, 1);
        for r in 0..3 {
            let lg = &dg.locals[r];
            for v in 0..lg.num_local() {
                let deg = lg.degree(v) as u64;
                for bound in [1u64, 2, 5, 17, 33, 64, 100] {
                    let exact = lg.count_weight_below(v, bound as u32) as u64;
                    let est = lg.estimate_weight_below(v, bound);
                    // Linear interpolation within a power-of-two bucket is
                    // off by at most that bucket's population.
                    assert!(est <= deg);
                    let err = est.abs_diff(exact);
                    assert!(
                        err <= (exact / 2).max(4),
                        "rank {r} v {v} bound {bound}: est {est} exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn histogram_estimate_exact_at_bucket_edges() {
        // At power-of-two boundaries the estimate equals the exact count.
        let csr = small();
        let dg = DistGraph::build(&csr, 1, 1);
        let lg = &dg.locals[0];
        for v in 0..lg.num_local() {
            for bound in [1u64, 2, 4, 8, 16, 32, 64] {
                assert_eq!(
                    lg.estimate_weight_below(v, bound),
                    lg.count_weight_below(v, bound as u32) as u64
                );
            }
        }
    }

    #[test]
    fn histogram_estimate_full_range() {
        let csr = small();
        let dg = DistGraph::build(&csr, 1, 1);
        let lg = &dg.locals[0];
        for v in 0..lg.num_local() {
            assert_eq!(lg.estimate_weight_below(v, u64::MAX), lg.degree(v) as u64);
            assert_eq!(lg.estimate_weight_below(v, 0), 0);
        }
    }
}
