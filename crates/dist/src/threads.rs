//! Intra-rank thread model (§III-E, first tier).
//!
//! Each rank has `T` logical threads; vertex `local` is owned by thread
//! `local % T`. A *heavy* vertex (degree above the π threshold) does not
//! charge its whole neighborhood to its owner thread — the edges are split
//! evenly across all `T` threads, which is precisely the paper's intra-node
//! load balancing. The simulated per-phase compute time of a rank is the
//! maximum per-thread operation count, so the effect of the balancer shows
//! up directly in the cost model.

/// Per-thread operation ledger for one rank.
#[derive(Debug, Clone)]
pub struct ThreadLoads {
    ops: Vec<u64>,
}

impl ThreadLoads {
    /// Fresh ledger for `threads` logical threads.
    pub fn new(threads: usize) -> Self {
        ThreadLoads {
            ops: vec![0; threads.max(1)],
        }
    }

    /// Number of logical threads.
    pub fn num_threads(&self) -> usize {
        self.ops.len()
    }

    #[inline]
    /// Owning thread of local vertex `local` (cyclic by default).
    pub fn thread_of(&self, local: usize) -> usize {
        local % self.ops.len()
    }

    /// Charge `n` operations for vertex `local`. If `balanced` (the vertex
    /// is heavy and intra-node balancing is on) the work spreads evenly
    /// across threads; otherwise it all lands on the owner thread.
    #[inline]
    pub fn charge(&mut self, local: usize, n: u64, balanced: bool) {
        if balanced {
            let t = self.ops.len() as u64;
            let per = n / t;
            let rem = (n % t) as usize;
            for (i, o) in self.ops.iter_mut().enumerate() {
                *o += per + u64::from(i < rem);
            }
        } else {
            let t = self.thread_of(local);
            self.ops[t] += n;
        }
    }

    /// Largest per-thread load — the rank's critical-path compute.
    pub fn max(&self) -> u64 {
        self.ops.iter().copied().max().unwrap_or(0)
    }

    /// Total operations across threads.
    pub fn total(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Zero all per-thread counters.
    pub fn reset(&mut self) {
        self.ops.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbalanced_charges_owner_thread() {
        let mut l = ThreadLoads::new(4);
        l.charge(5, 100, false); // thread 1
        assert_eq!(l.max(), 100);
        assert_eq!(l.total(), 100);
    }

    #[test]
    fn balanced_spreads_evenly() {
        let mut l = ThreadLoads::new(4);
        l.charge(0, 103, true);
        assert_eq!(l.total(), 103);
        assert_eq!(l.max(), 26); // 26,26,26,25
    }

    #[test]
    fn balancing_reduces_max() {
        let mut unbal = ThreadLoads::new(8);
        let mut bal = ThreadLoads::new(8);
        unbal.charge(0, 1000, false);
        bal.charge(0, 1000, true);
        assert!(bal.max() < unbal.max());
        assert_eq!(bal.total(), unbal.total());
    }

    #[test]
    fn reset_clears() {
        let mut l = ThreadLoads::new(2);
        l.charge(0, 5, false);
        l.reset();
        assert_eq!(l.total(), 0);
    }

    #[test]
    fn single_thread_degenerates() {
        let mut l = ThreadLoads::new(1);
        l.charge(7, 10, true);
        l.charge(3, 10, false);
        assert_eq!(l.max(), 20);
    }
}
