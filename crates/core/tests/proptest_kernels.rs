//! Property-based tests of the auxiliary kernels (BFS, Crauser, PageRank,
//! connected components, multi-source SSSP, threaded variants).

use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::bfs::{run_bfs, seq_bfs};
use sssp_core::cc::run_cc;
use sssp_core::config::SsspConfig;
use sssp_core::crauser::run_crauser;
use sssp_core::engine::{run_sssp, run_sssp_multi};
use sssp_core::pagerank::{run_pagerank, seq_pagerank, PageRankConfig};
use sssp_core::threaded_kernels::{threaded_bellman_ford, threaded_cc};
use sssp_core::{seq, validate};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..50, 0usize..200, 1u32..50, 0u64..500)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

fn model() -> MachineModel {
    MachineModel::bgq_like()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_matches_sequential(g in arb_graph(), p in 1usize..6, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = DistGraph::build(&g, p, 2);
        let out = run_bfs(&dg, root, &model());
        prop_assert_eq!(out.depth, seq_bfs(&g, root));
    }

    #[test]
    fn crauser_matches_dijkstra(g in arb_graph(), p in 1usize..6, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = DistGraph::build(&g, p, 2);
        let out = run_crauser(&dg, root, &model());
        prop_assert_eq!(out.distances, seq::dijkstra(&g, root));
    }

    #[test]
    fn crauser_work_bound(g in arb_graph(), p in 1usize..5) {
        let dg = DistGraph::build(&g, p, 2);
        let out = run_crauser(&dg, 0, &model());
        prop_assert!(out.stats.relaxations <= 2 * g.num_undirected_edges() as u64);
    }

    #[test]
    fn pagerank_mass_conserved(g in arb_graph(), p in 1usize..5) {
        let dg = DistGraph::build(&g, p, 2);
        let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
        let total: f64 = out.scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum = {}", total);
        prop_assert!(out.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn pagerank_rank_count_invariant(g in arb_graph()) {
        let expect = seq_pagerank(&g, &PageRankConfig::default());
        for p in [1usize, 4] {
            let dg = DistGraph::build(&g, p, 2);
            let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
            for (a, b) in out.scores.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn cc_is_a_valid_component_labeling(g in arb_graph(), p in 1usize..6) {
        let dg = DistGraph::build(&g, p, 2);
        let out = run_cc(&dg, &model());
        // Labels constant along edges, and every label is the component's
        // minimum member id (hence a fixed point).
        for (u, v, _) in g.undirected_edges() {
            prop_assert_eq!(out.labels[u as usize], out.labels[v as usize]);
        }
        for v in g.vertices() {
            prop_assert!(out.labels[v as usize] <= v);
        }
    }

    #[test]
    fn multi_source_equals_min_of_singles(
        g in arb_graph(),
        p in 1usize..5,
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let mut sources: Vec<u32> =
            picks.iter().map(|ix| ix.index(g.num_vertices()) as u32).collect();
        sources.sort_unstable();
        sources.dedup();
        let dg = DistGraph::build(&g, p, 2);
        let cfg = SsspConfig::opt(20);
        let multi = run_sssp_multi(&dg, &sources, &cfg, &model());
        for (v, &got) in multi.distances.iter().enumerate() {
            let expect = sources
                .iter()
                .map(|&s| seq::dijkstra(&g, s)[v])
                .min()
                .unwrap();
            prop_assert_eq!(got, expect, "vertex {}", v);
        }
    }

    #[test]
    fn parent_tree_always_derivable(g in arb_graph(), p in 1usize..5) {
        let dg = DistGraph::build(&g, p, 2);
        let out = run_sssp(&dg, 0, &SsspConfig::opt(25), &model());
        let parent = validate::build_parent_tree(&g, 0, &out.distances);
        // Every reachable vertex has a path whose length equals its distance.
        for v in g.vertices() {
            if out.distances[v as usize] == u64::MAX {
                prop_assert!(validate::shortest_path(&parent, 0, v).is_none());
            } else {
                let path = validate::shortest_path(&parent, 0, v).unwrap();
                prop_assert_eq!(path[0], 0);
                prop_assert_eq!(*path.last().unwrap(), v);
            }
        }
    }

    #[test]
    fn threaded_bf_agrees_with_reference(g in arb_graph(), p in 1usize..5, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = Arc::new(DistGraph::build(&g, p, 1));
        prop_assert_eq!(threaded_bellman_ford(&dg, root), seq::dijkstra(&g, root));
    }

    #[test]
    fn threaded_cc_agrees_with_simulated(g in arb_graph(), p in 1usize..5) {
        let dg = Arc::new(DistGraph::build(&g, p, 1));
        let sim = run_cc(&dg, &model());
        prop_assert_eq!(threaded_cc(&dg), sim.labels);
    }
}
