//! Validation-layer tests: mismatch reporting on split graphs (proxy
//! distances ignored, original ids preserved) and a differential check of
//! the real-thread Bellman-Ford kernel against the simulated engine.

use std::sync::Arc;

use sssp_comm::cost::MachineModel;
use sssp_core::seq;
use sssp_core::threaded_kernels::threaded_bellman_ford;
use sssp_core::validate::{check_against_dijkstra, Mismatch};
use sssp_core::{run_sssp, SsspConfig};
use sssp_dist::{split_heavy_vertices, DistGraph};
use sssp_graph::{gen, CsrBuilder};

fn model() -> MachineModel {
    MachineModel::bgq_like()
}

#[test]
fn split_run_validates_clean_against_original_graph() {
    let el = gen::uniform(150, 3000, 40, 13);
    let g = CsrBuilder::new().build(&el);
    let (split_csr, part, rep) = split_heavy_vertices(&g, 4, 24);
    assert!(
        rep.proxies_created > 0,
        "test graph should trigger splitting"
    );
    let dg = DistGraph::build_with_partition(&split_csr, part, 4, g.num_undirected_edges() as u64);
    let out = run_sssp(&dg, 0, &SsspConfig::lb_opt(25), &model());

    // The output covers base + proxy vertices; validation only ever looks at
    // the original id range.
    assert_eq!(out.distances.len(), g.num_vertices() + rep.proxies_created);
    assert!(check_against_dijkstra(&g, 0, &out).is_empty());
}

#[test]
fn proxy_distances_are_ignored_by_mismatch_reporting() {
    let el = gen::uniform(120, 2400, 30, 7);
    let g = CsrBuilder::new().build(&el);
    let (split_csr, part, rep) = split_heavy_vertices(&g, 4, 20);
    assert!(rep.proxies_created > 0);
    let dg = DistGraph::build_with_partition(&split_csr, part, 4, g.num_undirected_edges() as u64);
    let mut out = run_sssp(&dg, 0, &SsspConfig::opt(20), &model());

    // Corrupting every proxy distance must not produce a mismatch: proxies
    // are artifacts of the transform, not part of the answer.
    for d in &mut out.distances[g.num_vertices()..] {
        *d = 0xDEAD_BEEF;
    }
    assert!(check_against_dijkstra(&g, 0, &out).is_empty());
}

#[test]
fn mismatches_on_split_graphs_carry_original_ids() {
    let el = gen::uniform(120, 2400, 30, 7);
    let g = CsrBuilder::new().build(&el);
    let (split_csr, part, rep) = split_heavy_vertices(&g, 4, 20);
    assert!(rep.proxies_created > 0);
    let dg = DistGraph::build_with_partition(&split_csr, part, 4, g.num_undirected_edges() as u64);
    let mut out = run_sssp(&dg, 0, &SsspConfig::opt(20), &model());

    // Corrupt one original vertex: the report must name exactly that id
    // (splitting preserves original ids in 0..n) with the right distances.
    let victim = 57u32;
    let expected = seq::dijkstra(&g, 0)[victim as usize];
    out.distances[victim as usize] = expected + 1;
    let mismatches = check_against_dijkstra(&g, 0, &out);
    assert_eq!(
        mismatches,
        vec![Mismatch {
            vertex: victim,
            expected,
            actual: expected + 1
        }]
    );
}

#[test]
fn threaded_bellman_ford_matches_simulated_engine() {
    // Differential test: the real-thread kernel and the simulated engine
    // implement the same BSP program; their answers must be identical on
    // random graphs, including ones with unreachable vertices.
    for seed in [1u64, 2, 3, 11, 42] {
        let n = 60 + (seed as usize % 3) * 17;
        let m = n * 6;
        let el = gen::uniform(n, m, 25, seed);
        let g = CsrBuilder::new().build(&el);
        let dg = Arc::new(DistGraph::build(&g, 4, 2));

        let threaded = threaded_bellman_ford(&dg, 0);
        let simulated = run_sssp(&dg, 0, &SsspConfig::bellman_ford(), &model());
        assert_eq!(threaded, simulated.distances, "seed {seed}");

        // Both must also agree with the sequential reference.
        assert!(
            check_against_dijkstra(&g, 0, &simulated).is_empty(),
            "seed {seed}"
        );
    }
}
