//! Property-based correctness of the distributed engine: every
//! configuration, over random graphs, partitions and roots, must agree with
//! sequential Dijkstra and satisfy the SSSP certificate (triangle
//! inequality over every edge).

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, IntraBalance, LongPhaseMode, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_core::seq;
use sssp_core::state::INF;
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..60, 0usize..250, 1u32..60, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

fn check_matches(g: &Csr, root: u32, cfg: &SsspConfig, p: usize) -> Result<(), TestCaseError> {
    let dg = DistGraph::build(g, p, 2);
    let out = run_sssp(&dg, root, cfg, &MachineModel::bgq_like());
    let expect = seq::dijkstra(g, root);
    prop_assert_eq!(&out.distances, &expect);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn del_matches_dijkstra(g in arb_graph(), delta in 1u32..80, p in 1usize..7, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        check_matches(&g, root, &SsspConfig::del(delta), p)?;
    }

    #[test]
    fn opt_matches_dijkstra(g in arb_graph(), delta in 1u32..80, p in 1usize..7, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        check_matches(&g, root, &SsspConfig::opt(delta), p)?;
    }

    #[test]
    fn lb_opt_matches_dijkstra(g in arb_graph(), delta in 1u32..40, p in 1usize..7, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        check_matches(&g, root, &SsspConfig::lb_opt(delta).with_intra_balance(IntraBalance::Threshold(4)), p)?;
    }

    #[test]
    fn bellman_ford_matches_dijkstra(g in arb_graph(), p in 1usize..7, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        check_matches(&g, root, &SsspConfig::bellman_ford(), p)?;
    }

    #[test]
    fn forced_decision_sequences_match(
        g in arb_graph(),
        delta in 2u32..50,
        p in 1usize..5,
        decisions in proptest::collection::vec(any::<bool>(), 0..20),
    ) {
        let seq_modes: Vec<LongPhaseMode> = decisions
            .into_iter()
            .map(|pull| if pull { LongPhaseMode::Pull } else { LongPhaseMode::Push })
            .collect();
        let cfg = SsspConfig::prune(delta).with_direction(DirectionPolicy::Forced(seq_modes));
        check_matches(&g, 0, &cfg, p)?;
    }

    #[test]
    fn certificate_holds_on_every_edge(g in arb_graph(), delta in 1u32..60, p in 1usize..6) {
        // SSSP certificate: d(root) = 0; for every edge {u, v},
        // d(v) ≤ d(u) + w; and every finite-distance vertex other than the
        // root has a tight incoming edge.
        let dg = DistGraph::build(&g, p, 2);
        let out = run_sssp(&dg, 0, &SsspConfig::opt(delta), &MachineModel::bgq_like());
        prop_assert_eq!(out.distances[0], 0);
        for (u, v, w) in g.undirected_edges() {
            let du = out.distances[u as usize];
            let dv = out.distances[v as usize];
            if du != INF {
                prop_assert!(dv <= du.saturating_add(w as u64));
            }
            if dv != INF {
                prop_assert!(du <= dv.saturating_add(w as u64));
            }
        }
        for v in g.vertices().skip_while(|&v| v == 0) {
            let dv = out.distances[v as usize];
            if v != 0 && dv != INF && dv != 0 {
                let tight = g
                    .row(v)
                    .any(|(u, w)| out.distances[u as usize].saturating_add(w as u64) == dv);
                prop_assert!(tight, "vertex {} has no tight predecessor", v);
            }
        }
    }

    #[test]
    fn split_then_solve_preserves_distances(
        g in arb_graph(),
        thr in 3usize..20,
        p in 1usize..6,
    ) {
        let (split, part, _) = sssp_dist::split_heavy_vertices(&g, p, thr);
        let dg = DistGraph::build_with_partition(&split, part, 2, g.num_undirected_edges() as u64);
        let out = run_sssp(&dg, 0, &SsspConfig::opt(20), &MachineModel::bgq_like());
        let expect = seq::dijkstra(&g, 0);
        prop_assert_eq!(&out.distances[..g.num_vertices()], &expect[..]);
    }

    #[test]
    fn runs_are_deterministic(g in arb_graph(), p in 1usize..6) {
        let dg = DistGraph::build(&g, p, 2);
        let model = MachineModel::bgq_like();
        let a = run_sssp(&dg, 0, &SsspConfig::opt(25), &model);
        let b = run_sssp(&dg, 0, &SsspConfig::opt(25), &model);
        prop_assert_eq!(a.distances, b.distances);
        prop_assert_eq!(a.stats.relaxations_total(), b.stats.relaxations_total());
        prop_assert_eq!(a.stats.phases, b.stats.phases);
        prop_assert_eq!(a.stats.comm.total_msgs(), b.stats.comm.total_msgs());
    }

    #[test]
    fn rank_count_does_not_change_results(g in arb_graph(), delta in 1u32..60) {
        let model = MachineModel::bgq_like();
        let reference = {
            let dg = DistGraph::build(&g, 1, 1);
            run_sssp(&dg, 0, &SsspConfig::prune(delta), &model).distances
        };
        for p in [2usize, 3, 8] {
            let dg = DistGraph::build(&g, p, 2);
            let out = run_sssp(&dg, 0, &SsspConfig::prune(delta), &model);
            prop_assert_eq!(&out.distances, &reference, "p = {}", p);
        }
    }

    #[test]
    fn seq_delta_stepping_matches_dijkstra(g in arb_graph(), delta in 1u32..80, root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let (d, _) = seq::delta_stepping(&g, root, delta);
        prop_assert_eq!(d, seq::dijkstra(&g, root));
    }

    #[test]
    fn seq_bellman_ford_matches_dijkstra(g in arb_graph(), root_pick in any::<prop::sample::Index>()) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let (d, rounds) = seq::bellman_ford(&g, root);
        prop_assert_eq!(d, seq::dijkstra(&g, root));
        prop_assert!(rounds <= g.num_vertices() as u64 + 1);
    }

    #[test]
    fn packet_framing_never_changes_results(g in arb_graph(), delta in 1u32..60, p in 1usize..6) {
        let dg = DistGraph::build(&g, p, 2);
        let raw = run_sssp(&dg, 0, &SsspConfig::opt(delta), &MachineModel::bgq_like());
        let pkt = run_sssp(&dg, 0, &SsspConfig::opt(delta), &MachineModel::bgq_like_packetized());
        prop_assert_eq!(raw.distances, pkt.distances);
        prop_assert_eq!(raw.stats.relaxations_total(), pkt.stats.relaxations_total());
        prop_assert!(pkt.stats.comm.total_remote_bytes() >= raw.stats.comm.total_remote_bytes());
    }

    #[test]
    fn pooled_buffers_never_change_results(
        g in arb_graph(),
        delta in 1u32..60,
        ios in any::<bool>(),
        dir_pick in 0usize..4,
        p in 1usize..6,
        seeds in proptest::collection::vec((any::<prop::sample::Index>(), 0u64..50), 1..4),
    ) {
        // Buffer pooling is a pure allocation strategy: a pooled run and a
        // fresh-allocation run must agree bit for bit on distances and on
        // every message count, across Δ, IOS, every direction policy and
        // arbitrary multi-seed starts.
        use sssp_core::engine::run_sssp_seeded;
        let dir = match dir_pick {
            0 => DirectionPolicy::AlwaysPush,
            1 => DirectionPolicy::AlwaysPull,
            2 => DirectionPolicy::Heuristic,
            _ => DirectionPolicy::Forced(vec![LongPhaseMode::Pull, LongPhaseMode::Push]),
        };
        let cfg = SsspConfig::opt(delta).with_ios(ios).with_direction(dir);
        let seed_list: Vec<(u32, u64)> = seeds
            .into_iter()
            .map(|(ix, d)| (ix.index(g.num_vertices()) as u32, d))
            .collect();
        let dg = DistGraph::build(&g, p, 2);
        let model = MachineModel::bgq_like();
        let pooled = run_sssp_seeded(&dg, &seed_list, &cfg, &model);
        let fresh = run_sssp_seeded(&dg, &seed_list, &cfg.clone().with_pooled_buffers(false), &model);
        prop_assert_eq!(&pooled.distances, &fresh.distances);
        prop_assert_eq!(pooled.stats.comm.total_msgs(), fresh.stats.comm.total_msgs());
        prop_assert_eq!(pooled.stats.comm.total_remote_msgs(), fresh.stats.comm.total_remote_msgs());
        prop_assert_eq!(pooled.stats.comm.total_remote_bytes(), fresh.stats.comm.total_remote_bytes());
        prop_assert_eq!(pooled.stats.comm.num_supersteps(), fresh.stats.comm.num_supersteps());
        prop_assert_eq!(pooled.stats.comm.collectives, fresh.stats.comm.collectives);
        prop_assert_eq!(pooled.stats.relaxations_total(), fresh.stats.relaxations_total());
    }

    #[test]
    fn coalescing_never_changes_results(g in arb_graph(), delta in 1u32..60, p in 1usize..6) {
        // Sender-side coalescing keeps only the minimum proposal per
        // (target, distance) key ahead of each exchange. Relaxation is an
        // idempotent min-reduction, so distances, phase structure and
        // superstep counts are all unaffected — only delivered-message
        // totals shrink, by exactly the recorded saving.
        let dg = DistGraph::build(&g, p, 2);
        let model = MachineModel::bgq_like();
        let on = run_sssp(&dg, 0, &SsspConfig::opt(delta), &model);
        let off = run_sssp(&dg, 0, &SsspConfig::opt(delta).with_coalescing(false), &model);
        prop_assert_eq!(&on.distances, &off.distances);
        prop_assert_eq!(on.stats.phases, off.stats.phases);
        prop_assert_eq!(on.stats.comm.num_supersteps(), off.stats.comm.num_supersteps());
        prop_assert_eq!(off.stats.comm.total_coalesced_msgs(), 0);
        prop_assert_eq!(
            on.stats.comm.total_msgs() + on.stats.comm.total_coalesced_msgs(),
            off.stats.comm.total_msgs()
        );
    }

    #[test]
    fn histogram_estimator_never_changes_results(g in arb_graph(), delta in 2u32..60, p in 1usize..6) {
        use sssp_core::config::PullEstimator;
        let dg = DistGraph::build(&g, p, 2);
        let cfg = SsspConfig::prune(delta).with_pull_estimator(PullEstimator::Histogram);
        let out = run_sssp(&dg, 0, &cfg, &MachineModel::bgq_like());
        prop_assert_eq!(out.distances, seq::dijkstra(&g, 0));
    }
}
