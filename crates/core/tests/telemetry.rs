//! Differential telemetry tests: the merged per-rank trace of a threaded
//! run must be *identical* to the simulated engine's trace — bucket by
//! bucket (mode chosen, est_push/est_pull, settled, per-epoch supersteps
//! and message splits), phase by phase, and in every global counter —
//! modulo the timing fields, which the trace deliberately omits.
//!
//! This is the acceptance gate for the unified run-telemetry layer: both
//! backends observe their traffic through the same [`Recorder`] hooks, so
//! any divergence here is a real accounting bug in one of them.

use std::sync::Arc;

use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_core::{threaded_delta_stepping, threaded_delta_stepping_traced, RunTrace};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder};

fn bench_graph() -> Csr {
    CsrBuilder::new().build(&gen::uniform(200, 1200, 40, 9))
}

/// The trace-equality sweep: Δ-stepping with the heuristic, both Always
/// policies, a Forced sequence and the hybrid tail. Every entry must
/// produce an empty trace diff on every partition count.
fn trace_matrix() -> Vec<SsspConfig> {
    vec![
        SsspConfig::opt(25),
        SsspConfig::del(15).with_direction(DirectionPolicy::AlwaysPush),
        SsspConfig::prune(15).with_direction(DirectionPolicy::AlwaysPull),
        SsspConfig::prune(20).with_direction(DirectionPolicy::Forced(vec![
            LongPhaseMode::Push,
            LongPhaseMode::Pull,
            LongPhaseMode::Push,
        ])),
        SsspConfig::bellman_ford(),
        SsspConfig::opt(20).with_coalescing(false),
    ]
}

fn traces_for(g: &Csr, p: usize, cfg: &SsspConfig) -> (RunTrace, RunTrace) {
    let dg = Arc::new(DistGraph::build(g, p, 2));
    let model = MachineModel::bgq_like();
    let simulated = run_sssp(&dg, 0, cfg, &model);
    let (threaded, trace_thr) = threaded_delta_stepping_traced(&dg, 0, cfg, &model);
    assert_eq!(
        threaded.distances, simulated.distances,
        "distances diverged before telemetry was even compared (p {p}, cfg {cfg:?})"
    );
    let trace_sim = RunTrace::from_run_stats(&simulated.stats, "simulated");
    (trace_sim, trace_thr)
}

#[test]
fn traced_backends_agree_bucket_by_bucket() {
    let g = bench_graph();
    for p in [1usize, 4, 6] {
        for cfg in trace_matrix() {
            let (sim, thr) = traces_for(&g, p, &cfg);
            let diffs = sim.diff(&thr);
            assert!(
                diffs.is_empty(),
                "telemetry diverged (p {p}, cfg {cfg:?}):\n{}",
                diffs.join("\n")
            );
        }
    }
}

#[test]
fn threaded_trace_survives_json_roundtrip() {
    let g = bench_graph();
    for cfg in [
        SsspConfig::opt(25),
        SsspConfig::bellman_ford(),
        SsspConfig::prune(15).with_direction(DirectionPolicy::AlwaysPull),
    ] {
        let dg = Arc::new(DistGraph::build(&g, 4, 2));
        let (_, trace) = threaded_delta_stepping_traced(&dg, 0, &cfg, &MachineModel::bgq_like());
        let parsed = RunTrace::from_json(&trace.to_json()).expect("trace JSON must parse back");
        assert_eq!(parsed, trace, "cfg {cfg:?}");
    }
}

#[test]
fn forced_runs_record_heuristic_estimates() {
    // Satellite 3: under a Forced direction the simulated engine records
    // the estimates the heuristic *would* have produced; the traced
    // threaded backend must do the same (equality is pinned by the diff
    // sweep above — here we pin that the estimates are real, not zeros,
    // and that the forced sequence was actually honored).
    let g = bench_graph();
    let cfg = SsspConfig::prune(8).with_direction(DirectionPolicy::Forced(vec![
        LongPhaseMode::Push,
        LongPhaseMode::Pull,
        LongPhaseMode::Push,
    ]));
    let dg = Arc::new(DistGraph::build(&g, 4, 2));
    let (_, trace) = threaded_delta_stepping_traced(&dg, 0, &cfg, &MachineModel::bgq_like());
    assert!(trace.buckets.len() >= 3, "graph too small for the sequence");
    assert_eq!(trace.buckets[0].mode, LongPhaseMode::Push);
    assert_eq!(trace.buckets[1].mode, LongPhaseMode::Pull);
    assert_eq!(trace.buckets[2].mode, LongPhaseMode::Push);
    assert!(
        trace
            .buckets
            .iter()
            .take(3)
            .any(|b| b.est_push > 0 || b.est_pull > 0),
        "forced buckets recorded no heuristic estimates"
    );
}

#[test]
fn pull_buckets_expose_request_supersteps_and_byte_maxima() {
    // Satellite 4: on a pull-forced multi-rank run the per-step byte
    // maxima and the request supersteps must surface in the trace.
    let g = bench_graph();
    let cfg = SsspConfig::prune(15).with_direction(DirectionPolicy::AlwaysPull);
    let dg = Arc::new(DistGraph::build(&g, 4, 2));
    let (_, trace) = threaded_delta_stepping_traced(&dg, 0, &cfg, &MachineModel::bgq_like());
    assert!(trace.max_step_send_bytes > 0, "no send bytes recorded");
    assert!(trace.max_step_recv_bytes > 0, "no recv bytes recorded");
    let pulls: Vec<_> = trace
        .buckets
        .iter()
        .filter(|b| b.mode == LongPhaseMode::Pull)
        .collect();
    assert!(!pulls.is_empty(), "AlwaysPull produced no pull buckets");
    assert!(
        pulls.iter().any(|b| b.requests > 0 && b.responses > 0),
        "no pull bucket carried requests and responses"
    );
    // Each pull bucket's epoch holds at least the request + response
    // supersteps (plus the IOS outer sub-step when enabled).
    for b in &pulls {
        let floor = if cfg.ios { 3 } else { 2 };
        assert!(
            b.supersteps >= floor,
            "pull bucket {} recorded only {} supersteps",
            b.bucket,
            b.supersteps
        );
    }
}

#[test]
fn degenerate_graphs_trace_cleanly() {
    let model = MachineModel::bgq_like();
    let cfg = SsspConfig::opt(10);

    // Single vertex, no edges.
    let g = CsrBuilder::new().build(&gen::path(1, 1));
    let dg = Arc::new(DistGraph::build(&g, 2, 1));
    let (out, trace) = threaded_delta_stepping_traced(&dg, 0, &cfg, &model);
    assert_eq!(out.distances, vec![0]);
    assert_eq!(trace.local_msgs + trace.remote_msgs, 0);
    let (sim, thr) = (
        RunTrace::from_run_stats(&run_sssp(&dg, 0, &cfg, &model).stats, "simulated"),
        trace,
    );
    assert!(sim.diff(&thr).is_empty(), "{:?}", sim.diff(&thr));

    // Edgeless multi-vertex graph: everything except the root unreached.
    let mut el = gen::path(1, 1);
    el.n = 4;
    let g = CsrBuilder::new().build(&el);
    let dg = Arc::new(DistGraph::build(&g, 3, 1));
    let (out, thr) = threaded_delta_stepping_traced(&dg, 0, &cfg, &model);
    assert_eq!(out.distances[0], 0);
    assert!(out.distances[1..].iter().all(|&d| d == u64::MAX));
    let sim = RunTrace::from_run_stats(&run_sssp(&dg, 0, &cfg, &model).stats, "simulated");
    assert!(sim.diff(&thr).is_empty(), "{:?}", sim.diff(&thr));
    let parsed = RunTrace::from_json(&thr.to_json()).expect("degenerate trace must roundtrip");
    assert_eq!(parsed, thr);

    // Disconnected pair: the far component stays unreached but the trace
    // still matches the simulated run.
    let mut el = gen::path(2, 5);
    el.n = 4;
    el.push(2, 3, 1);
    let g = CsrBuilder::new().build(&el);
    let dg = Arc::new(DistGraph::build(&g, 3, 1));
    let cfg = SsspConfig::del(4);
    let (out, thr) = threaded_delta_stepping_traced(&dg, 0, &cfg, &model);
    assert_eq!(out.distances, vec![0, 5, u64::MAX, u64::MAX]);
    let sim = RunTrace::from_run_stats(&run_sssp(&dg, 0, &cfg, &model).stats, "simulated");
    assert!(sim.diff(&thr).is_empty(), "{:?}", sim.diff(&thr));
}

#[test]
fn tracing_is_invisible_to_results() {
    // The recorder only observes; traced and untraced threaded runs must
    // agree on distances and transport counters exactly.
    let g = bench_graph();
    let dg = Arc::new(DistGraph::build(&g, 4, 2));
    let model = MachineModel::bgq_like();
    for cfg in trace_matrix() {
        let plain = threaded_delta_stepping(&dg, 0, &cfg, &model);
        let (traced, trace) = threaded_delta_stepping_traced(&dg, 0, &cfg, &model);
        assert_eq!(plain.distances, traced.distances, "cfg {cfg:?}");
        assert_eq!(
            plain.relax_local_msgs, traced.relax_local_msgs,
            "cfg {cfg:?}"
        );
        assert_eq!(
            plain.relax_remote_msgs, traced.relax_remote_msgs,
            "cfg {cfg:?}"
        );
        assert_eq!(plain.coalesced_msgs, traced.coalesced_msgs, "cfg {cfg:?}");
        assert_eq!(
            trace.local_msgs + trace.remote_msgs,
            traced.relax_msgs_total() + trace_request_msgs(&trace),
            "trace totals must cover relax traffic plus pull requests (cfg {cfg:?})"
        );
    }
}

/// Request messages are part of the trace totals but not of the output's
/// relax counters; recover them from the per-bucket request counts.
fn trace_request_msgs(trace: &RunTrace) -> u64 {
    trace.buckets.iter().map(|b| b.requests).sum()
}
