//! Differential suite for the flat hot-path data layout: the lazy cyclic
//! flat bucket queue and the stamp-bitset frontiers (`flat_state: true`,
//! the default) must be observationally identical to the legacy
//! `BTreeMap` layout — at the state level (same pop order, counts and
//! window proposals per epoch under every stepping policy's bucket
//! function) and end to end (bit-identical distances and telemetry
//! traces on both backends, degenerate graphs included).

use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::run_sssp;
use sssp_core::policy::{RadiusPolicy, RhoPolicy};
use sssp_core::state::{RankState, INF};
use sssp_core::{threaded_delta_stepping_traced, DeltaParam, RunTrace, SteppingPolicy};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder, EdgeList};

/// Nightly TSan runs dial proptest down via `PROPTEST_CASES`; honor it
/// like the other differential suites do.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..50, 0usize..200, 1u32..60, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

/// One configuration per stepping policy, each exercised with the flat
/// layout (default) and the legacy toggle.
fn policy_matrix() -> Vec<SsspConfig> {
    vec![
        SsspConfig::del(13),
        SsspConfig::opt(20),
        SsspConfig::rho(8),
        SsspConfig::radius(2),
    ]
}

/// Drive one relax/advance script through a flat and a legacy
/// [`RankState`] in lockstep under `policy`, comparing every bucket-queue
/// observation the engines make: epoch selection, live counts, window
/// counts and proposals, member sets, and (for in-ring windows, where the
/// layout guarantees bucket-then-push order on both stores) exact member
/// order.
fn drive_differential<P: SteppingPolicy>(
    n: usize,
    policy: &P,
    script: &[(usize, u64)],
    order_exact: bool,
) -> Result<(), TestCaseError> {
    let mut flat = RankState::new(0, n, 1);
    let mut legacy = RankState::new_legacy(0, n, 1);
    prop_assert!(flat.is_flat());
    prop_assert!(!legacy.is_flat());
    flat.set_root(0);
    legacy.set_root(0);

    let mut epoch = 0u64;
    for chunk in script.chunks(8) {
        for &(v, nd) in chunk {
            let v = v as u32;
            // Respect the engine's epoch invariant the layouts are built
            // around: settled vertices (bucket below the current epoch)
            // never improve, and no relaxation lands below the epoch
            // bucket. The skip decision reads identical state on both
            // sides, so they stay in lockstep.
            if policy.bucket_of(nd) < epoch || flat.bucket_of[v as usize] < epoch {
                continue;
            }
            let fr = flat.relax(v, nd, policy);
            let lr = legacy.relax(v, nd, policy);
            prop_assert_eq!(fr, lr, "relax({}, {}) disagreed", v, nd);
        }

        let from = epoch.checked_sub(1);
        let k = flat.next_nonempty_after(from);
        prop_assert_eq!(
            k,
            legacy.next_nonempty_after(from),
            "epoch selection diverged after epoch {}",
            epoch
        );
        let Some(k) = k else { continue };
        flat.advance_frontier(k);
        legacy.advance_frontier(k);
        epoch = k;

        prop_assert_eq!(flat.bucket_count(k), legacy.bucket_count(k));
        prop_assert_eq!(flat.window_count(k, k + 7), legacy.window_count(k, k + 7));
        prop_assert_eq!(
            flat.count_unsettled_after(k),
            legacy.count_unsettled_after(k)
        );
        for cap in [0u64, 2, 16] {
            prop_assert_eq!(
                flat.prefix_window_end(k, cap),
                legacy.prefix_window_end(k, cap),
                "prefix_window_end(k = {}, cap = {}) diverged",
                k,
                cap
            );
        }
        prop_assert_eq!(
            flat.next_nonempty_after(Some(k)),
            legacy.next_nonempty_after(Some(k))
        );

        let mut fm: Vec<u32> = flat.bucket_members(k).collect();
        let mut lm: Vec<u32> = legacy.bucket_members(k).collect();
        if order_exact {
            prop_assert_eq!(&fm, &lm, "bucket {} pop order diverged", k);
        }
        fm.sort_unstable();
        lm.sort_unstable();
        prop_assert_eq!(fm, lm, "bucket {} member set diverged", k);

        let mut fw: Vec<u32> = flat.window_members(k, k + 7).collect();
        let mut lw: Vec<u32> = legacy.window_members(k, k + 7).collect();
        if order_exact {
            prop_assert_eq!(&fw, &lw, "window [{}, {}] pop order diverged", k, k + 7);
        }
        fw.sort_unstable();
        lw.sort_unstable();
        prop_assert_eq!(fw, lw, "window [{}, {}] member set diverged", k, k + 7);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    // In-ring scripts (distances well inside one ring revolution): every
    // observation including pop order must match under all three
    // policies' bucket functions.
    #[test]
    fn flat_queue_matches_legacy_in_ring(
        n in 2usize..40,
        script in proptest::collection::vec((0usize..40, 0u64..400), 0..120),
    ) {
        let script: Vec<(usize, u64)> =
            script.into_iter().map(|(v, d)| (v % n, d)).collect();
        drive_differential(n, &DeltaParam::Finite(7), &script, true)?;
        drive_differential(n, &RhoPolicy::new(8, 2), &script, true)?;
        drive_differential(n, &RadiusPolicy::new(2), &script, true)?;
    }

    // Far-bucket scripts (Dial-granularity distances many ring
    // revolutions out): pushes overflow into the spill list and migrate
    // back as the frontier advances. Member sets, counts and proposals
    // must still match exactly; spill order is unspecified, so the order
    // check is off.
    #[test]
    fn flat_queue_matches_legacy_through_the_spill(
        n in 2usize..40,
        script in proptest::collection::vec((0usize..40, 0u64..50_000), 0..120),
    ) {
        let script: Vec<(usize, u64)> =
            script.into_iter().map(|(v, d)| (v % n, d)).collect();
        drive_differential(n, &RhoPolicy::new(8, 2), &script, false)?;
        drive_differential(n, &DeltaParam::Finite(3), &script, false)?;
    }

    // End to end: for every stepping policy, flat and legacy layouts
    // produce bit-identical distances and telemetry traces on both
    // backends.
    #[test]
    fn layouts_agree_end_to_end_on_both_backends(
        g in arb_graph(),
        p in 1usize..6,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        for cfg in policy_matrix() {
            let flat_cfg = cfg.clone().with_flat_state(true);
            let legacy_cfg = cfg.clone().with_flat_state(false);

            let f = run_sssp(&dg, root, &flat_cfg, &model);
            let l = run_sssp(&dg, root, &legacy_cfg, &model);
            prop_assert_eq!(
                &f.distances, &l.distances,
                "simulated distances diverged, p = {}, cfg = {:?}", p, &cfg
            );
            let tf = RunTrace::from_run_stats(&f.stats, "flat");
            let tl = RunTrace::from_run_stats(&l.stats, "legacy");
            let diffs = tf.diff(&tl);
            prop_assert!(
                diffs.is_empty(),
                "simulated traces diverged, cfg = {:?}:\n{}", &cfg, diffs.join("\n")
            );

            let (ft, ftrace) = threaded_delta_stepping_traced(&dg, root, &flat_cfg, &model);
            let (lt, ltrace) = threaded_delta_stepping_traced(&dg, root, &legacy_cfg, &model);
            prop_assert_eq!(&ft.distances, &f.distances, "threaded flat diverged");
            prop_assert_eq!(&lt.distances, &f.distances, "threaded legacy diverged");
            let diffs = ftrace.diff(&ltrace);
            prop_assert!(
                diffs.is_empty(),
                "threaded traces diverged, cfg = {:?}:\n{}", &cfg, diffs.join("\n")
            );
        }
    }
}

/// The stamp-bitset frontiers on the degenerate shapes the telemetry
/// suite watches: a single-vertex graph (one partly-used bitset word), an
/// edgeless graph across more ranks than edges, and a disconnected pair
/// where half the vertices never enter any frontier. Flat and legacy must
/// agree with the expected distances and with each other on both
/// backends.
#[test]
fn degenerate_graphs_agree_across_layouts_and_backends() {
    let model = MachineModel::bgq_like();

    let single = CsrBuilder::new().build(&EdgeList::new(1));
    let edgeless = CsrBuilder::new().build(&EdgeList::new(4));
    let mut el = EdgeList::new(4);
    el.push(0, 1, 5);
    el.push(2, 3, 1);
    let disconnected = CsrBuilder::new().build(&el);

    let shapes: Vec<(&str, Csr, usize, Vec<u64>)> = vec![
        ("single vertex", single, 2, vec![0]),
        ("edgeless", edgeless, 3, vec![0, INF, INF, INF]),
        ("disconnected pair", disconnected, 2, vec![0, 5, INF, INF]),
    ];

    for (name, g, p, expect) in shapes {
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        for cfg in policy_matrix() {
            for flat in [true, false] {
                let cfg = cfg.clone().with_flat_state(flat);
                let sim = run_sssp(&dg, 0, &cfg, &model);
                assert_eq!(
                    sim.distances, expect,
                    "{name}: simulated, flat = {flat}, cfg = {cfg:?}"
                );
                let (thr, _) = threaded_delta_stepping_traced(&dg, 0, &cfg, &model);
                assert_eq!(
                    thr.distances, expect,
                    "{name}: threaded, flat = {flat}, cfg = {cfg:?}"
                );
            }
        }
    }
}
