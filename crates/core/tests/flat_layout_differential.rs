//! Differential suite for the flat hot-path data layout: the lazy cyclic
//! flat bucket queue and the stamp-bitset frontiers must be
//! observationally identical to an eager `BTreeMap` bucket-queue oracle —
//! same pop order, counts and window proposals per epoch under every
//! stepping policy's bucket function — and end to end both backends must
//! match the sequential references, degenerate graphs included.
//!
//! The legacy `BTreeMap` layout itself (`SsspConfig::flat_state = false`)
//! was retired after its differential soak release; the oracle here is an
//! in-test reference model, and the tombstone tests at the bottom pin the
//! loud error the retired flag now produces on both backends.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::run_sssp;
use sssp_core::policy::{RadiusPolicy, RhoPolicy, NO_PROPOSAL};
use sssp_core::state::{RankState, INF, INF_BUCKET};
use sssp_core::{seq, threaded_delta_stepping_traced, DeltaParam, SteppingPolicy};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder, EdgeList};

/// Nightly TSan runs dial proptest down via `PROPTEST_CASES`; honor it
/// like the other differential suites do.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..50, 0usize..200, 1u32..60, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

/// One configuration per stepping policy.
fn policy_matrix() -> Vec<SsspConfig> {
    vec![
        SsspConfig::del(13),
        SsspConfig::opt(20),
        SsspConfig::rho(8),
        SsspConfig::radius(2),
    ]
}

/// The reference bucket queue: an eager `BTreeMap<bucket, members>` with
/// push-order member vectors — exactly the retired legacy layout's
/// semantics, rebuilt as a test-local model. Relaxations move the vertex
/// eagerly (remove from the old bucket, append to the new one), so member
/// vectors hold live entries only and counts are their lengths.
struct OracleBuckets {
    dist: Vec<u64>,
    bucket_of: Vec<u64>,
    buckets: BTreeMap<u64, Vec<u32>>,
}

impl OracleBuckets {
    fn new(n: usize) -> Self {
        OracleBuckets {
            dist: vec![INF; n],
            bucket_of: vec![INF_BUCKET; n],
            buckets: BTreeMap::new(),
        }
    }

    fn set_root(&mut self, v: u32) {
        self.dist[v as usize] = 0;
        self.bucket_of[v as usize] = 0;
        self.buckets.entry(0).or_default().push(v);
    }

    fn relax<P: SteppingPolicy>(&mut self, v: u32, nd: u64, policy: &P) -> bool {
        let li = v as usize;
        if nd >= self.dist[li] {
            return false;
        }
        let old_b = self.bucket_of[li];
        let new_b = policy.bucket_of(nd);
        self.dist[li] = nd;
        if new_b < old_b {
            if old_b != INF_BUCKET {
                let members = self.buckets.get_mut(&old_b).expect("bucket exists");
                let pos = members.iter().position(|&m| m == v).expect("member exists");
                members.remove(pos);
            }
            self.buckets.entry(new_b).or_default().push(v);
            self.bucket_of[li] = new_b;
        }
        true
    }

    /// Drop every bucket the frontier passed (the advance contract: no
    /// query ever looks below the epoch's bucket again).
    fn advance(&mut self, k: u64) {
        self.buckets = self.buckets.split_off(&k);
    }

    fn next_nonempty_after(&self, k: Option<u64>) -> Option<u64> {
        let start = match k {
            Some(k) => k + 1,
            None => 0,
        };
        self.buckets
            .range(start..)
            .find(|(_, m)| !m.is_empty())
            .map(|(&b, _)| b)
    }

    fn bucket_count(&self, k: u64) -> u64 {
        self.buckets.get(&k).map_or(0, |m| m.len() as u64)
    }

    fn window_count(&self, lo: u64, hi: u64) -> u64 {
        self.buckets
            .range(lo..=hi)
            .map(|(_, m)| m.len() as u64)
            .sum()
    }

    fn count_unsettled_after(&self, k: u64) -> u64 {
        let later: u64 = self
            .buckets
            .range(k.saturating_add(1)..)
            .map(|(_, m)| m.len() as u64)
            .sum();
        let infinite = self.bucket_of.iter().filter(|&&b| b == INF_BUCKET).count() as u64;
        later + infinite
    }

    fn prefix_window_end(&self, k: u64, cap: u64) -> u64 {
        let mut cum = 0u64;
        let mut last = k;
        for (&b, m) in self.buckets.range(k..) {
            if m.is_empty() {
                continue;
            }
            cum += m.len() as u64;
            if cum > cap {
                return if b == k { k } else { last };
            }
            last = b;
        }
        NO_PROPOSAL
    }

    fn window_members(&self, lo: u64, hi: u64) -> Vec<u32> {
        self.buckets
            .range(lo..=hi)
            .flat_map(|(_, m)| m.iter().copied())
            .collect()
    }
}

/// Drive one relax/advance script through a flat [`RankState`] and the
/// eager `BTreeMap` oracle in lockstep under `policy`, comparing every
/// bucket-queue observation the engines make: epoch selection, live
/// counts, window counts and proposals, member sets, and (for in-ring
/// windows, where the flat layout guarantees bucket-then-push order)
/// exact member order.
fn drive_differential<P: SteppingPolicy>(
    n: usize,
    policy: &P,
    script: &[(usize, u64)],
    order_exact: bool,
) -> Result<(), TestCaseError> {
    let mut flat = RankState::new(0, n, 1);
    let mut oracle = OracleBuckets::new(n);
    flat.set_root(0);
    oracle.set_root(0);

    let mut epoch = 0u64;
    for chunk in script.chunks(8) {
        for &(v, nd) in chunk {
            let v = v as u32;
            // Respect the engine's epoch invariant the layout is built
            // around: settled vertices (bucket below the current epoch)
            // never improve, and no relaxation lands below the epoch
            // bucket. The skip decision reads identical state on both
            // sides, so they stay in lockstep.
            if policy.bucket_of(nd) < epoch || flat.bucket_of[v as usize] < epoch {
                continue;
            }
            let fr = flat.relax(v, nd, policy);
            let or = oracle.relax(v, nd, policy);
            prop_assert_eq!(fr, or, "relax({}, {}) disagreed", v, nd);
        }

        let from = epoch.checked_sub(1);
        let k = flat.next_nonempty_after(from);
        prop_assert_eq!(
            k,
            oracle.next_nonempty_after(from),
            "epoch selection diverged after epoch {}",
            epoch
        );
        let Some(k) = k else { continue };
        flat.advance_frontier(k);
        oracle.advance(k);
        epoch = k;

        prop_assert_eq!(flat.bucket_count(k), oracle.bucket_count(k));
        prop_assert_eq!(flat.window_count(k, k + 7), oracle.window_count(k, k + 7));
        prop_assert_eq!(
            flat.count_unsettled_after(k),
            oracle.count_unsettled_after(k)
        );
        for cap in [0u64, 2, 16] {
            prop_assert_eq!(
                flat.prefix_window_end(k, cap),
                oracle.prefix_window_end(k, cap),
                "prefix_window_end(k = {}, cap = {}) diverged",
                k,
                cap
            );
        }
        prop_assert_eq!(
            flat.next_nonempty_after(Some(k)),
            oracle.next_nonempty_after(Some(k))
        );

        let mut fm: Vec<u32> = flat.bucket_members(k).collect();
        let mut om: Vec<u32> = oracle.window_members(k, k);
        if order_exact {
            prop_assert_eq!(&fm, &om, "bucket {} pop order diverged", k);
        }
        fm.sort_unstable();
        om.sort_unstable();
        prop_assert_eq!(fm, om, "bucket {} member set diverged", k);

        let mut fw: Vec<u32> = flat.window_members(k, k + 7).collect();
        let mut ow: Vec<u32> = oracle.window_members(k, k + 7);
        if order_exact {
            prop_assert_eq!(&fw, &ow, "window [{}, {}] pop order diverged", k, k + 7);
        }
        fw.sort_unstable();
        ow.sort_unstable();
        prop_assert_eq!(fw, ow, "window [{}, {}] member set diverged", k, k + 7);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    // In-ring scripts (distances well inside one ring revolution): every
    // observation including pop order must match under all three
    // policies' bucket functions.
    #[test]
    fn flat_queue_matches_the_oracle_in_ring(
        n in 2usize..40,
        script in proptest::collection::vec((0usize..40, 0u64..400), 0..120),
    ) {
        let script: Vec<(usize, u64)> =
            script.into_iter().map(|(v, d)| (v % n, d)).collect();
        drive_differential(n, &DeltaParam::Finite(7), &script, true)?;
        drive_differential(n, &RhoPolicy::new(8, 2), &script, true)?;
        drive_differential(n, &RadiusPolicy::new(2), &script, true)?;
    }

    // Far-bucket scripts (Dial-granularity distances many ring
    // revolutions out): pushes overflow into the spill list and migrate
    // back as the frontier advances. Member sets, counts and proposals
    // must still match exactly; spill order is unspecified, so the order
    // check is off.
    #[test]
    fn flat_queue_matches_the_oracle_through_the_spill(
        n in 2usize..40,
        script in proptest::collection::vec((0usize..40, 0u64..50_000), 0..120),
    ) {
        let script: Vec<(usize, u64)> =
            script.into_iter().map(|(v, d)| (v % n, d)).collect();
        drive_differential(n, &RhoPolicy::new(8, 2), &script, false)?;
        drive_differential(n, &DeltaParam::Finite(3), &script, false)?;
    }

    // End to end: for every stepping policy, both backends produce
    // distances matching the radix-heap Dijkstra reference, and the
    // backends match each other bit for bit.
    #[test]
    fn backends_agree_end_to_end_on_the_flat_layout(
        g in arb_graph(),
        p in 1usize..6,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let expect = seq::dijkstra_radix(&g, root);
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        for cfg in policy_matrix() {
            let sim = run_sssp(&dg, root, &cfg, &model);
            prop_assert_eq!(
                &sim.distances, &expect,
                "simulated distances diverged, p = {}, cfg = {:?}", p, &cfg
            );
            let (thr, _) = threaded_delta_stepping_traced(&dg, root, &cfg, &model);
            prop_assert_eq!(
                &thr.distances, &expect,
                "threaded distances diverged, p = {}, cfg = {:?}", p, &cfg
            );
        }
    }
}

/// The stamp-bitset frontiers on the degenerate shapes the telemetry
/// suite watches: a single-vertex graph (one partly-used bitset word), an
/// edgeless graph across more ranks than edges, and a disconnected pair
/// where half the vertices never enter any frontier. Both backends must
/// produce the expected distances under every policy.
#[test]
fn degenerate_graphs_agree_across_backends() {
    let model = MachineModel::bgq_like();

    let single = CsrBuilder::new().build(&EdgeList::new(1));
    let edgeless = CsrBuilder::new().build(&EdgeList::new(4));
    let mut el = EdgeList::new(4);
    el.push(0, 1, 5);
    el.push(2, 3, 1);
    let disconnected = CsrBuilder::new().build(&el);

    let shapes: Vec<(&str, Csr, usize, Vec<u64>)> = vec![
        ("single vertex", single, 2, vec![0]),
        ("edgeless", edgeless, 3, vec![0, INF, INF, INF]),
        ("disconnected pair", disconnected, 2, vec![0, 5, INF, INF]),
    ];

    for (name, g, p, expect) in shapes {
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        for cfg in policy_matrix() {
            let sim = run_sssp(&dg, 0, &cfg, &model);
            assert_eq!(sim.distances, expect, "{name}: simulated, cfg = {cfg:?}");
            let (thr, _) = threaded_delta_stepping_traced(&dg, 0, &cfg, &model);
            assert_eq!(thr.distances, expect, "{name}: threaded, cfg = {cfg:?}");
        }
    }
}

/// Tombstone for the retired layout, simulated backend: requesting
/// `flat_state = false` must fail loudly instead of silently running the
/// flat layout (or worse, resurrecting dead code paths).
#[test]
#[should_panic(expected = "legacy BTreeMap bucket layout")]
fn retired_legacy_flag_errors_loudly_on_the_simulated_backend() {
    let g = CsrBuilder::new().build(&gen::path(4, 3));
    let dg = DistGraph::build(&g, 2, 1);
    let cfg = SsspConfig::opt(10).with_flat_state(false);
    let _ = run_sssp(&dg, 0, &cfg, &MachineModel::bgq_like());
}

/// Tombstone for the retired layout, threaded backend.
#[test]
#[should_panic(expected = "legacy BTreeMap bucket layout")]
fn retired_legacy_flag_errors_loudly_on_the_threaded_backend() {
    let g = CsrBuilder::new().build(&gen::path(4, 3));
    let dg = Arc::new(DistGraph::build(&g, 2, 1));
    let cfg = SsspConfig::opt(10).with_flat_state(false);
    let _ = threaded_delta_stepping_traced(&dg, 0, &cfg, &MachineModel::bgq_like());
}
