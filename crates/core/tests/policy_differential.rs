//! Differential suite for the pluggable stepping-policy engine: the
//! Δ-stepping, ρ-stepping and radius-stepping policies must all produce
//! distances bit-identical to sequential Dijkstra (radix variant) on
//! BOTH backends — including unreachable vertices, single-vertex
//! graphs, multi-seed starts with duplicates, empty seed lists, and the
//! Δ = 1 / maximal-weight epoch-sentinel edge case.

use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::config::SsspConfig;
use sssp_core::engine::{run_sssp, run_sssp_seeded};
use sssp_core::seq;
use sssp_core::state::INF;
use sssp_core::{threaded_delta_stepping, threaded_sssp_seeded};
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder, EdgeList};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..60, 0usize..250, 1u32..60, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

/// Nightly TSan runs dial proptest down via `PROPTEST_CASES`; honor it
/// like the other threaded differential suites do.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One configuration per stepping policy, with parameters small enough
/// that the window policies actually split the tiny proptest graphs
/// into several epochs instead of swallowing them whole.
fn policy_matrix() -> Vec<SsspConfig> {
    vec![
        SsspConfig::del(13),
        SsspConfig::opt(20),
        SsspConfig::rho(8),
        SsspConfig::rho(64),
        SsspConfig::radius(1),
        SsspConfig::radius(4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    #[test]
    fn every_policy_matches_dijkstra_radix_on_both_backends(
        g in arb_graph(),
        p in 1usize..7,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let expect = seq::dijkstra_radix(&g, root);
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        for cfg in policy_matrix() {
            let simulated = run_sssp(&dg, root, &cfg, &model);
            prop_assert_eq!(
                &simulated.distances, &expect,
                "simulated backend, p = {}, cfg = {:?}", p, &cfg
            );
            let threaded = threaded_delta_stepping(&dg, root, &cfg, &model);
            prop_assert_eq!(
                &threaded.distances, &expect,
                "threaded backend, p = {}, cfg = {:?}", p, &cfg
            );
        }
    }

    #[test]
    fn multi_seed_runs_agree_across_backends(
        g in arb_graph(),
        p in 1usize..6,
        seeds in proptest::collection::vec((any::<prop::sample::Index>(), 0u64..500), 1..5),
    ) {
        let seed_list: Vec<(u32, u64)> = seeds
            .into_iter()
            .map(|(ix, d)| (ix.index(g.num_vertices()) as u32, d))
            .collect();
        // A duplicate of the first seed at a strictly larger distance
        // must be invisible: per-vertex min wins on both backends.
        let mut with_dup = seed_list.clone();
        with_dup.push((seed_list[0].0, seed_list[0].1 + 7));
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        for cfg in policy_matrix() {
            let simulated = run_sssp_seeded(&dg, &seed_list, &cfg, &model);
            let threaded = threaded_sssp_seeded(&dg, &seed_list, &cfg, &model);
            prop_assert_eq!(
                &threaded.distances, &simulated.distances,
                "p = {}, cfg = {:?}", p, &cfg
            );
            let sim_dup = run_sssp_seeded(&dg, &with_dup, &cfg, &model);
            let thr_dup = threaded_sssp_seeded(&dg, &with_dup, &cfg, &model);
            prop_assert_eq!(&sim_dup.distances, &simulated.distances);
            prop_assert_eq!(&thr_dup.distances, &simulated.distances);
        }
    }
}

#[test]
fn empty_seed_list_yields_all_inf_on_both_backends() {
    let g = CsrBuilder::new().build(&gen::uniform(20, 60, 30, 7));
    let dg = Arc::new(DistGraph::build(&g, 3, 2));
    let model = MachineModel::bgq_like();
    for cfg in policy_matrix() {
        let simulated = run_sssp_seeded(&dg, &[], &cfg, &model);
        assert!(
            simulated.distances.iter().all(|&d| d == INF),
            "simulated, cfg = {cfg:?}"
        );
        let threaded = threaded_sssp_seeded(&dg, &[], &cfg, &model);
        assert_eq!(threaded.distances, simulated.distances, "cfg = {cfg:?}");
    }
}

#[test]
fn single_vertex_graph_settles_its_root_under_every_policy() {
    let g = CsrBuilder::new().build(&gen::uniform(1, 0, 1, 0));
    let dg = Arc::new(DistGraph::build(&g, 2, 1));
    let model = MachineModel::bgq_like();
    for cfg in policy_matrix() {
        let simulated = run_sssp(&dg, 0, &cfg, &model);
        assert_eq!(simulated.distances, vec![0], "simulated, cfg = {cfg:?}");
        let threaded = threaded_delta_stepping(&dg, 0, &cfg, &model);
        assert_eq!(threaded.distances, vec![0], "threaded, cfg = {cfg:?}");
    }
}

#[test]
fn unreachable_vertices_stay_inf_under_every_policy() {
    // Two components: {0, 1} and {2, 3}; root 0 never reaches the second.
    let mut el = EdgeList::new(4);
    el.push(0, 1, 3);
    el.push(2, 3, 5);
    let g = CsrBuilder::new().build(&el);
    let expect = seq::dijkstra_radix(&g, 0);
    assert_eq!(expect[2], INF);
    assert_eq!(expect[3], INF);
    let dg = Arc::new(DistGraph::build(&g, 3, 1));
    let model = MachineModel::bgq_like();
    for cfg in policy_matrix() {
        let simulated = run_sssp(&dg, 0, &cfg, &model);
        assert_eq!(simulated.distances, expect, "simulated, cfg = {cfg:?}");
        let threaded = threaded_delta_stepping(&dg, 0, &cfg, &model);
        assert_eq!(threaded.distances, expect, "threaded, cfg = {cfg:?}");
    }
}

#[test]
fn delta_one_with_maximal_weights_terminates_past_the_epoch_sentinel() {
    // Regression for the `bucket_of` epoch-sentinel fix: under Δ = 1 the
    // bucket index IS the distance, so a seed at `u64::MAX - 1` lands in
    // the last representable bucket, one below the `u64::MAX` "no bucket
    // left" sentinel of the epoch-selection collective. Before the cap,
    // such a bucket index could collide with the sentinel and the run
    // would terminate early, leaving the vertex unsettled. Maximal
    // `u32::MAX` edge weights stress the same arithmetic on the reachable
    // component. Vertex 3 is isolated so no `d + w` is ever computed from
    // the near-maximal seed distance.
    let mut el = EdgeList::new(4);
    el.push(0, 1, u32::MAX);
    el.push(1, 2, u32::MAX);
    let g = CsrBuilder::new().build(&el);
    let seeds: &[(u32, u64)] = &[(0, 0), (3, u64::MAX - 1)];
    let expect = vec![0, u32::MAX as u64, 2 * (u32::MAX as u64), u64::MAX - 1];
    let model = MachineModel::bgq_like();
    for p in [1usize, 2, 4] {
        let dg = Arc::new(DistGraph::build(&g, p, 1));
        for cfg in [
            SsspConfig::del(1),
            SsspConfig::rho(2),
            SsspConfig::radius(1),
        ] {
            let simulated = run_sssp_seeded(&dg, seeds, &cfg, &model);
            assert_eq!(
                simulated.distances, expect,
                "simulated, p = {p}, cfg = {cfg:?}"
            );
            let threaded = threaded_sssp_seeded(&dg, seeds, &cfg, &model);
            assert_eq!(
                threaded.distances, expect,
                "threaded, p = {p}, cfg = {cfg:?}"
            );
        }
    }
}
