//! Differential property tests pinning the real-thread engine to the
//! simulated one: over random graphs, partitions and roots, every
//! configuration must produce bit-identical distances on both backends.
//! This is the evidence that the shared rank-local kernels plus the
//! source-ordered channel delivery reproduce the simulator's semantics
//! exactly — and that sender-side coalescing is invisible to results.

use std::sync::Arc;

use proptest::prelude::*;

use sssp_comm::cost::MachineModel;
use sssp_core::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use sssp_core::engine::run_sssp;
use sssp_core::threaded_delta_stepping;
use sssp_dist::DistGraph;
use sssp_graph::{gen, Csr, CsrBuilder};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..60, 0usize..250, 1u32..60, 0u64..1000)
        .prop_map(|(n, m, w_max, seed)| CsrBuilder::new().build(&gen::uniform(n, m, w_max, seed)))
}

/// Case count: the proptest default here is 32, but the nightly
/// ThreadSanitizer job dials it down via `PROPTEST_CASES` (TSan
/// instrumentation costs ~10x); `with_cases` would otherwise ignore the
/// environment.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

/// The configuration matrix the differential runs sweep: Δ at both
/// extremes and in between, each direction policy (including a forced
/// sequence), the hybrid tail on and off, and coalescing off.
fn config_matrix() -> Vec<SsspConfig> {
    vec![
        SsspConfig::dijkstra(),
        SsspConfig::prune(20),
        SsspConfig::bellman_ford(),
        SsspConfig::del(15).with_direction(DirectionPolicy::AlwaysPush),
        SsspConfig::prune(15).with_direction(DirectionPolicy::AlwaysPull),
        SsspConfig::opt(20),
        SsspConfig::prune(20).with_direction(DirectionPolicy::Forced(vec![
            LongPhaseMode::Push,
            LongPhaseMode::Pull,
            LongPhaseMode::Push,
        ])),
        SsspConfig::opt(20).with_coalescing(false),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn threaded_distances_match_simulated(
        g in arb_graph(),
        p in 1usize..7,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        for cfg in config_matrix() {
            let simulated = run_sssp(&dg, root, &cfg, &model);
            let threaded = threaded_delta_stepping(&dg, root, &cfg, &model);
            prop_assert_eq!(
                &threaded.distances,
                &simulated.distances,
                "p = {}, cfg = {:?}",
                p,
                &cfg
            );
        }
    }

    #[test]
    fn threaded_coalescing_is_invisible_to_distances(
        g in arb_graph(),
        delta in 1u32..60,
        p in 1usize..7,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = Arc::new(DistGraph::build(&g, p, 2));
        let model = MachineModel::bgq_like();
        let cfg = SsspConfig::opt(delta);
        let on = threaded_delta_stepping(&dg, root, &cfg, &model);
        let off = threaded_delta_stepping(&dg, root, &cfg.clone().with_coalescing(false), &model);
        prop_assert_eq!(&on.distances, &off.distances);
        prop_assert_eq!(off.coalesced_msgs, 0);
        // Message conservation: dropped + delivered under coalescing equals
        // delivered without it, with rank-local and wire messages counted
        // separately on both sides.
        prop_assert_eq!(
            on.relax_local_msgs + on.relax_remote_msgs + on.coalesced_msgs,
            off.relax_local_msgs + off.relax_remote_msgs
        );
    }

    #[test]
    fn threaded_runs_are_deterministic(
        g in arb_graph(),
        root_pick in any::<prop::sample::Index>(),
    ) {
        // True concurrency must not leak into results: with six racing
        // rank threads, repeat runs agree on distances and wire counts.
        let root = root_pick.index(g.num_vertices()) as u32;
        let dg = Arc::new(DistGraph::build(&g, 6, 1));
        let model = MachineModel::bgq_like();
        let a = threaded_delta_stepping(&dg, root, &SsspConfig::opt(25), &model);
        for _ in 0..3 {
            let b = threaded_delta_stepping(&dg, root, &SsspConfig::opt(25), &model);
            prop_assert_eq!(&b.distances, &a.distances);
            prop_assert_eq!(b.relax_local_msgs, a.relax_local_msgs);
            prop_assert_eq!(b.relax_remote_msgs, a.relax_remote_msgs);
            prop_assert_eq!(b.coalesced_msgs, a.coalesced_msgs);
        }
    }
}
