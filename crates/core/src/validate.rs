//! Validation of distributed runs against the sequential reference.

use sssp_graph::{Csr, VertexId};

use crate::engine::SsspOutput;
use crate::seq;
use crate::state::INF;

/// A mismatch between a distributed run and the Dijkstra reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Global id of the disagreeing vertex.
    pub vertex: VertexId,
    /// Distance per the sequential reference.
    pub expected: u64,
    /// Distance the engine produced.
    pub actual: u64,
}

/// Compare a run's distances against sequential Dijkstra on the *original*
/// graph. `out.distances` may be longer than `g.num_vertices()` when the
/// run used a split graph — proxy distances are ignored (original vertices
/// keep their ids under splitting).
pub fn check_against_dijkstra(g: &Csr, root: VertexId, out: &SsspOutput) -> Vec<Mismatch> {
    let expected = seq::dijkstra_radix(g, root);
    assert!(
        out.distances.len() >= expected.len(),
        "output shorter than graph"
    );
    expected
        .iter()
        .enumerate()
        .filter_map(|(v, &e)| {
            let a = out.distances[v];
            (a != e).then_some(Mismatch {
                vertex: v as VertexId,
                expected: e,
                actual: a,
            })
        })
        .collect()
}

/// Panic with a readable report if the run disagrees with Dijkstra.
pub fn assert_matches_dijkstra(g: &Csr, root: VertexId, out: &SsspOutput) {
    let mismatches = check_against_dijkstra(g, root, out);
    if !mismatches.is_empty() {
        let show: Vec<String> = mismatches
            .iter()
            .take(10)
            .map(|m| {
                format!(
                    "v{}: expected {}, got {}",
                    m.vertex,
                    fmt_dist(m.expected),
                    fmt_dist(m.actual)
                )
            })
            .collect();
        panic!(
            "{} mismatches vs Dijkstra (root {root}); first ones: {}",
            mismatches.len(),
            show.join("; ")
        );
    }
}

fn fmt_dist(d: u64) -> String {
    if d == INF {
        "INF".to_string()
    } else {
        d.to_string()
    }
}

/// Sentinel for "no parent" in a shortest-path tree.
pub const NO_PARENT: VertexId = VertexId::MAX;

/// Derive a shortest-path tree from a distance array: for every reachable
/// non-root vertex, pick a *tight* predecessor (`d(u) + w(u,v) = d(v)`).
/// Correct distance arrays always admit one; the engine therefore does not
/// need to carry parent pointers in its messages (and the paper's relax
/// traffic stays at its published size).
///
/// Panics if some reachable vertex has no tight predecessor — i.e. if
/// `dist` is not a valid SSSP solution for `g`.
pub fn build_parent_tree(g: &Csr, root: VertexId, dist: &[u64]) -> Vec<VertexId> {
    assert!(dist.len() >= g.num_vertices());
    let mut parent = vec![NO_PARENT; g.num_vertices()];
    for v in g.vertices() {
        let dv = dist[v as usize];
        if v == root || dv == INF {
            continue;
        }
        parent[v as usize] = g
            .row(v)
            .find(|&(u, w)| dist[u as usize].saturating_add(w as u64) == dv)
            .map(|(u, _)| u)
            .unwrap_or_else(|| panic!("vertex {v} has no tight predecessor; invalid distances"));
    }
    parent
}

/// Reconstruct the shortest path `root → v` from a parent tree. Returns
/// `None` when `v` is unreachable.
pub fn shortest_path(parent: &[VertexId], root: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
    if v != root && parent[v as usize] == NO_PARENT {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    while cur != root {
        cur = parent[cur as usize];
        debug_assert!(cur != NO_PARENT);
        path.push(cur);
        assert!(path.len() <= parent.len(), "parent cycle — invalid tree");
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sssp_graph::{gen, CsrBuilder};

    #[test]
    fn parent_tree_on_path_graph() {
        let g = CsrBuilder::new().build(&gen::path(5, 2));
        let dist = seq::dijkstra(&g, 0);
        let parent = build_parent_tree(&g, 0, &dist);
        assert_eq!(parent[0], NO_PARENT);
        for (v, &pv) in parent.iter().enumerate().skip(1) {
            assert_eq!(pv, v as u32 - 1);
        }
        let p = shortest_path(&parent, 0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn paths_have_correct_lengths() {
        let g = CsrBuilder::new().build(&gen::uniform(80, 500, 20, 3));
        let dist = seq::dijkstra(&g, 0);
        let parent = build_parent_tree(&g, 0, &dist);
        for v in g.vertices() {
            let Some(path) = shortest_path(&parent, 0, v) else {
                assert_eq!(dist[v as usize], INF);
                continue;
            };
            // Sum the edge weights along the reconstructed path.
            let mut total = 0u64;
            for pair in path.windows(2) {
                let w = g
                    .row(pair[1])
                    .filter(|&(u, _)| u == pair[0])
                    .map(|(_, w)| w)
                    .min()
                    .expect("path edge must exist");
                total += w as u64;
            }
            assert_eq!(total, dist[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn unreachable_has_no_path() {
        let mut el = gen::path(3, 1);
        el.n = 5;
        let g = CsrBuilder::new().build(&el);
        let dist = seq::dijkstra(&g, 0);
        let parent = build_parent_tree(&g, 0, &dist);
        assert!(shortest_path(&parent, 0, 4).is_none());
        assert!(shortest_path(&parent, 0, 2).is_some());
    }

    #[test]
    #[should_panic(expected = "no tight predecessor")]
    fn invalid_distances_rejected() {
        let g = CsrBuilder::new().build(&gen::path(3, 2));
        let bad = vec![0u64, 1, 4]; // d(1) should be 2
        let _ = build_parent_tree(&g, 0, &bad);
    }

    #[test]
    fn mismatch_reporting_works() {
        let g = CsrBuilder::new().build(&gen::path(3, 2));
        let out = crate::engine::SsspOutput {
            distances: vec![0, 2, 5], // d(2) should be 4
            stats: Default::default(),
            timed_out: false,
        };
        let mism = check_against_dijkstra(&g, 0, &out);
        assert_eq!(mism.len(), 1);
        assert_eq!(mism[0].vertex, 2);
        assert_eq!(mism[0].expected, 4);
        assert_eq!(mism[0].actual, 5);
    }
}
