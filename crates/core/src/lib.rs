//! The paper's contribution: distributed Δ-stepping with edge
//! classification, the IOS refinement, push/pull direction-optimized
//! pruning, Bellman-Ford hybridization and two-tier load balancing —
//! running on the simulated distributed runtime of `sssp-comm`.
//!
//! Entry point: [`engine::run_sssp`] with a [`config::SsspConfig`] preset:
//!
//! | Preset | Paper name | Ingredients |
//! |---|---|---|
//! | [`SsspConfig::dijkstra`] | Dijkstra (Dial) | Δ = 1 |
//! | [`SsspConfig::bellman_ford`] | Bellman-Ford | Δ = ∞ |
//! | [`SsspConfig::del`] | `Del-Δ` | Δ-stepping + short/long classification |
//! | [`SsspConfig::prune`] | `Prune-Δ` | + IOS + push/pull pruning heuristic |
//! | [`SsspConfig::opt`] | `OPT-Δ` | + hybridization (τ = 0.4) |
//! | [`SsspConfig::lb_opt`] | `LB-OPT` | + intra-node thread balancing |
//!
//! Inter-node vertex splitting (the second load-balancing tier) is a graph
//! transformation: apply [`sssp_dist::split_heavy_vertices`] before building
//! the [`sssp_dist::DistGraph`].
//!
//! [`SsspConfig::dijkstra`]: config::SsspConfig::dijkstra
//! [`SsspConfig::bellman_ford`]: config::SsspConfig::bellman_ford
//! [`SsspConfig::del`]: config::SsspConfig::del
//! [`SsspConfig::prune`]: config::SsspConfig::prune
//! [`SsspConfig::opt`]: config::SsspConfig::opt
//! [`SsspConfig::lb_opt`]: config::SsspConfig::lb_opt

pub mod betweenness;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod config;
pub mod crauser;
pub mod engine;
pub mod pagerank;
pub mod instrument;
pub mod seq;
pub mod state;
pub mod threaded_kernels;
pub mod validate;

pub use config::{DeltaParam, DirectionPolicy, IntraBalance, LongPhaseMode, SsspConfig};
pub use engine::{run_sssp, SsspOutput};
pub use instrument::RunStats;
