//! The paper's contribution: distributed Δ-stepping with edge
//! classification, the IOS refinement, push/pull direction-optimized
//! pruning, Bellman-Ford hybridization and two-tier load balancing —
//! running on the simulated distributed runtime of `sssp-comm`.
//!
//! Entry point: [`engine::run_sssp`] with a [`config::SsspConfig`] preset:
//!
//! | Preset | Paper name | Ingredients |
//! |---|---|---|
//! | [`SsspConfig::dijkstra`] | Dijkstra (Dial) | Δ = 1 |
//! | [`SsspConfig::bellman_ford`] | Bellman-Ford | Δ = ∞ |
//! | [`SsspConfig::del`] | `Del-Δ` | Δ-stepping + short/long classification |
//! | [`SsspConfig::prune`] | `Prune-Δ` | + IOS + push/pull pruning heuristic |
//! | [`SsspConfig::opt`] | `OPT-Δ` | + hybridization (τ = 0.4) |
//! | [`SsspConfig::lb_opt`] | `LB-OPT` | + intra-node thread balancing |
//!
//! Inter-node vertex splitting (the second load-balancing tier) is a graph
//! transformation: apply [`sssp_dist::split_heavy_vertices`] before building
//! the [`sssp_dist::DistGraph`].
//!
//! The same algorithm also runs on real OS threads (one per rank, channels
//! and barriers instead of the simulated runtime) via
//! [`threaded_delta_stepping`], with bit-identical distances.
//!
//! [`SsspConfig::dijkstra`]: config::SsspConfig::dijkstra
//! [`SsspConfig::bellman_ford`]: config::SsspConfig::bellman_ford
//! [`SsspConfig::del`]: config::SsspConfig::del
//! [`SsspConfig::prune`]: config::SsspConfig::prune
//! [`SsspConfig::opt`]: config::SsspConfig::opt
//! [`SsspConfig::lb_opt`]: config::SsspConfig::lb_opt

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Brandes betweenness centrality over repeated SSSP runs.
pub mod betweenness;
/// Distributed BFS baseline (the Graph 500 reference point of Fig. 1).
pub mod bfs;
/// Connected components via distributed label propagation.
pub mod cc;
/// Closeness centrality from sampled SSSP runs.
pub mod closeness;
/// Algorithm presets and tuning knobs ([`SsspConfig`], Δ, τ, π).
pub mod config;
/// Crauser-criterion Dijkstra baseline for the comparison tables.
pub mod crauser;
/// The paper's engine: Δ-stepping with IOS, push/pull and hybridization.
pub mod engine;
/// Per-run instrumentation: phase counts, traffic, simulated time.
pub mod instrument;
/// Distributed PageRank (exercises the same exchange substrate).
pub mod pagerank;
/// Pluggable stepping policies (Δ-, ρ- and radius stepping).
pub mod policy;
/// Sequential reference algorithms (Dijkstra, Bellman-Ford).
pub mod seq;
/// Per-rank bucket/distance state ([`state::RankState`]).
pub mod state;
/// Shared-memory (actually-threaded) kernels used for differential tests.
pub mod threaded_kernels;
/// Result checking against the sequential reference.
pub mod validate;

pub use config::{
    DeltaParam, DirectionPolicy, IntraBalance, LongPhaseMode, SsspConfig, SteppingPolicyKind,
};
pub use engine::threaded::{
    threaded_delta_stepping, threaded_delta_stepping_traced, threaded_sssp_query,
    threaded_sssp_query_deadline, threaded_sssp_seeded, EngineScratch, ThreadedSsspOutput,
};
pub use engine::{canonical_seeds, run_sssp, run_sssp_p2p, run_sssp_seeded_deadline, SsspOutput};
pub use instrument::{RunStats, RunTrace};
pub use policy::{EpochWindow, PolicyDispatch, SteppingPolicy, WindowRule};
