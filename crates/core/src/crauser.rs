//! Crauser et al.'s criteria-based parallel Dijkstra.
//!
//! The paper's related work points at parallel Dijkstra variants (e.g. in
//! the Parallel Boost Graph Library) as the main alternative line to
//! Δ-stepping. This module implements the strongest of those, the
//! IN/OUT-criteria algorithm of Crauser, Mehlhorn, Meyer and Sanders
//! (MFCS '98): per phase, every unsettled vertex `v` may be settled if
//!
//! * **OUT criterion** — `d(v) ≤ min over unsettled u of (d(u) + w_min(u))`
//!   (no future relaxation can undercut it), or
//! * **IN criterion** — `d(v) − w_min(v) ≤ min over unsettled u of d(u)`
//!   (no unsettled vertex could reach it more cheaply).
//!
//! Each settled vertex relaxes its edges exactly once, so the total work
//! matches Dijkstra's `2m` bound while extracting far more parallelism per
//! phase. Runs bulk-synchronously on the same simulated machine as the
//! Δ-stepping engine, with the same accounting, so its GTEPS are directly
//! comparable (it serves as the "work-optimal baseline" ablation).

use rayon::prelude::*;

use sssp_comm::collective::{allreduce_any, allreduce_min};
use sssp_comm::cost::{MachineModel, TimeClass, TimeLedger};
use sssp_comm::exchange::{exchange_with, Outbox};
use sssp_comm::stats::CommStats;
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

use crate::state::INF;

/// Run statistics of the Crauser algorithm.
#[derive(Debug, Clone, Default)]
pub struct CrauserStats {
    /// Number of phases (parallel Dijkstra rounds).
    pub phases: u64,
    /// Total edge relaxations performed.
    pub relaxations: u64,
    /// Vertices settled per phase (shows the parallelism the criteria
    /// extract compared to Dijkstra's one-per-phase).
    pub settled_per_phase: Vec<u64>,
    /// Message traffic ledger.
    pub comm: CommStats,
    /// Simulated time ledger.
    pub ledger: TimeLedger,
}

impl CrauserStats {
    /// Traversal rate in GTEPS given the graph’s directed edge count.
    pub fn gteps(&self, m_edges: u64) -> f64 {
        sssp_comm::cost::teps(m_edges, self.ledger.total_s()) / 1e9
    }
}

/// Output: distances indexed by global vertex id.
#[derive(Debug, Clone)]
pub struct CrauserOutput {
    /// Final distances indexed by global vertex id.
    pub distances: Vec<u64>,
    /// Full instrumentation record.
    pub stats: CrauserStats,
}

#[derive(Debug, Clone, Copy)]
struct RelaxMsg {
    target: u32,
    nd: u64,
}
const RELAX_BYTES: usize = 16;

/// Run criteria-based parallel Dijkstra from `root`.
pub fn run_crauser(dg: &DistGraph, root: VertexId, model: &MachineModel) -> CrauserOutput {
    let p = dg.num_ranks();
    let n = dg.num_vertices();
    let mut comm = CommStats::new();
    let mut ledger = TimeLedger::new();
    let mut stats = CrauserStats::default();

    struct Rank {
        dist: Vec<u64>,
        settled: Vec<bool>,
        /// Smallest incident weight per local vertex (`u32::MAX` if none).
        min_w: Vec<u32>,
    }

    let mut ranks: Vec<Rank> = (0..p)
        .map(|r| {
            let nl = dg.part.local_count(r);
            let min_w = (0..nl)
                .map(|v| dg.locals[r].row(v).1.first().copied().unwrap_or(u32::MAX))
                .collect();
            Rank {
                dist: vec![INF; nl],
                settled: vec![false; nl],
                min_w,
            }
        })
        .collect();

    if n == 0 {
        return CrauserOutput {
            distances: Vec::new(),
            stats,
        };
    }
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    ranks[dg.part.owner(root)].dist[dg.part.to_local(root)] = 0;

    loop {
        // Global minima over unsettled finite vertices: d_min and the OUT
        // threshold L = min(d(u) + w_min(u)).
        let local_mins: Vec<(u64, u64, bool)> = ranks
            .par_iter()
            .map(|rk| {
                let mut dmin = u64::MAX;
                let mut lout = u64::MAX;
                let mut any = false;
                for v in 0..rk.dist.len() {
                    if rk.settled[v] || rk.dist[v] == INF {
                        continue;
                    }
                    any = true;
                    dmin = dmin.min(rk.dist[v]);
                    if rk.min_w[v] != u32::MAX {
                        lout = lout.min(rk.dist[v] + rk.min_w[v] as u64);
                    }
                }
                (dmin, lout, any)
            })
            .collect();
        let anyv: Vec<bool> = local_mins.iter().map(|m| m.2).collect();
        if !allreduce_any(&anyv, &mut comm) {
            ledger.charge_collective(model, TimeClass::Bucket, p);
            break;
        }
        let dmins: Vec<u64> = local_mins.iter().map(|m| m.0).collect();
        let louts: Vec<u64> = local_mins.iter().map(|m| m.1).collect();
        let d_min = allreduce_min(&dmins, &mut comm);
        let l_out = allreduce_min(&louts, &mut comm);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        ledger.charge_collective(model, TimeClass::Bucket, p);

        // Settle by OUT / IN criteria and relax the settled vertices' edges.
        let threads = dg.threads_per_rank.max(1) as u64;
        let results: Vec<(Outbox<RelaxMsg>, u64, u64)> = ranks
            .par_iter_mut()
            .enumerate()
            .map(|(r, rk)| {
                let lg = &dg.locals[r];
                let mut ob = Outbox::new(p);
                let mut sent = 0u64;
                let mut settled_now = 0u64;
                for v in 0..rk.dist.len() {
                    if rk.settled[v] || rk.dist[v] == INF {
                        continue;
                    }
                    let dv = rk.dist[v];
                    let out_ok = dv <= l_out;
                    let in_ok =
                        rk.min_w[v] != u32::MAX && dv.saturating_sub(rk.min_w[v] as u64) <= d_min;
                    if !(out_ok || in_ok) {
                        continue;
                    }
                    rk.settled[v] = true;
                    settled_now += 1;
                    let (ts, ws) = lg.row(v);
                    for i in 0..ts.len() {
                        ob.send(
                            dg.part.owner(ts[i]),
                            RelaxMsg {
                                target: dg.part.to_local(ts[i]) as u32,
                                nd: dv + ws[i] as u64,
                            },
                        );
                    }
                    sent += ts.len() as u64;
                }
                (ob, sent, settled_now)
            })
            .collect();

        let mut obs = Vec::with_capacity(p);
        let mut sent_total = 0u64;
        let mut settled_total = 0u64;
        for (ob, s, k) in results {
            obs.push(ob);
            sent_total += s;
            settled_total += k;
        }
        debug_assert!(
            settled_total > 0,
            "criteria must settle at least the minimum"
        );
        let (inboxes, step) = exchange_with(obs, RELAX_BYTES, model.packet.as_ref());
        ranks
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .for_each(|(rk, inbox)| {
                for m in inbox {
                    let t = m.target as usize;
                    if !rk.settled[t] && m.nd < rk.dist[t] {
                        rk.dist[t] = m.nd;
                    }
                }
            });

        ledger.charge_superstep(
            model,
            TimeClass::Relax,
            sent_total / (p as u64 * threads).max(1) + 1,
            step.max_rank_send_bytes.max(step.max_rank_recv_bytes),
        );
        comm.record(step);
        stats.phases += 1;
        stats.relaxations += sent_total;
        stats.settled_per_phase.push(settled_total);
    }

    let mut distances = vec![INF; n];
    for (r, rk) in ranks.iter().enumerate() {
        for (l, &d) in rk.dist.iter().enumerate() {
            distances[dg.part.to_global(r, l) as usize] = d;
        }
    }
    stats.comm = comm;
    stats.ledger = ledger;
    CrauserOutput { distances, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sssp_graph::{gen, CsrBuilder};

    fn model() -> MachineModel {
        MachineModel::bgq_like()
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..6 {
            let g = CsrBuilder::new().build(&gen::uniform(150, 900, 40, seed));
            let expect = seq::dijkstra(&g, 0);
            for p in [1usize, 4, 7] {
                let dg = DistGraph::build(&g, p, 2);
                let out = run_crauser(&dg, 0, &model());
                assert_eq!(out.distances, expect, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn relaxes_each_edge_at_most_twice() {
        let g = CsrBuilder::new().build(&gen::uniform(200, 1400, 30, 3));
        let dg = DistGraph::build(&g, 4, 2);
        let out = run_crauser(&dg, 0, &model());
        assert!(out.stats.relaxations <= 2 * g.num_undirected_edges() as u64);
    }

    #[test]
    fn uses_fewer_phases_than_dijkstra() {
        let g = CsrBuilder::new().build(&gen::uniform(300, 2400, 50, 7));
        let dg = DistGraph::build(&g, 4, 2);
        let crauser = run_crauser(&dg, 0, &model());
        let dij = crate::engine::run_sssp(&dg, 0, &crate::SsspConfig::dijkstra(), &model());
        assert_eq!(crauser.distances, dij.distances);
        assert!(
            crauser.stats.phases < dij.stats.phases,
            "Crauser {} phases vs Dijkstra {}",
            crauser.stats.phases,
            dij.stats.phases
        );
        // The criteria settle multiple vertices in most phases.
        let multi = crauser
            .stats
            .settled_per_phase
            .iter()
            .filter(|&&k| k > 1)
            .count();
        assert!(multi > 0);
    }

    #[test]
    fn settled_counts_sum_to_reachable() {
        let g = CsrBuilder::new().build(&gen::uniform(120, 700, 20, 9));
        let dg = DistGraph::build(&g, 3, 2);
        let out = run_crauser(&dg, 0, &model());
        let reachable = out.distances.iter().filter(|&&d| d != INF).count() as u64;
        let settled: u64 = out.stats.settled_per_phase.iter().sum();
        assert_eq!(settled, reachable);
    }

    #[test]
    fn path_graph_settles_out_criterion() {
        // On a uniform-weight path the OUT criterion settles the whole
        // frontier wave; with w constant, d(u) + w_min is always the next
        // vertex's distance.
        let g = CsrBuilder::new().build(&gen::path(30, 5));
        let dg = DistGraph::build(&g, 3, 1);
        let out = run_crauser(&dg, 0, &model());
        assert_eq!(out.distances[29], 29 * 5);
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = CsrBuilder::new().build(&sssp_graph::EdgeList::new(1));
        let dg = DistGraph::build(&g, 2, 1);
        let out = run_crauser(&dg, 0, &model());
        assert_eq!(out.distances, vec![0]);
    }
}
