//! Distributed PageRank on the simulated machine.
//!
//! A companion kernel in the same data-intensive family the Graph 500
//! effort targets (§I-B): power iteration with damping, executed as
//! bulk-synchronous supersteps over the same [`DistGraph`] and cost model
//! as the SSSP engine. Included both as a usefulness test of the substrate
//! (a kernel with completely different traffic: dense, regular, every edge
//! every iteration) and as a baseline for comparing communication profiles.

use rayon::prelude::*;

use sssp_comm::collective::{allreduce_max_f64, allreduce_sum_f64};
use sssp_comm::cost::{MachineModel, TimeClass, TimeLedger};
use sssp_comm::exchange::{exchange_with, Outbox};
use sssp_comm::stats::CommStats;
use sssp_dist::DistGraph;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (the classic 0.85).
    pub damping: f64,
    /// Stop when the max per-vertex change drops below this.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// PageRank output.
#[derive(Debug, Clone)]
pub struct PageRankOutput {
    /// Score per global vertex; sums to ~1 over all vertices.
    pub scores: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the L1 residual fell below tolerance.
    pub converged: bool,
    /// Message traffic ledger.
    pub comm: CommStats,
    /// Simulated time ledger.
    pub ledger: TimeLedger,
}

#[derive(Debug, Clone, Copy)]
struct RankMsg {
    target: u32,
    contrib: f64,
}
const RANK_BYTES: usize = 12;

/// Run PageRank over the undirected graph (each edge treated as two
/// directed links, the standard convention for undirected PageRank).
pub fn run_pagerank(dg: &DistGraph, cfg: &PageRankConfig, model: &MachineModel) -> PageRankOutput {
    let p = dg.num_ranks();
    let n = dg.num_vertices();
    let mut comm = CommStats::new();
    let mut ledger = TimeLedger::new();

    let mut scores: Vec<Vec<f64>> = (0..p)
        .map(|r| vec![1.0 / n.max(1) as f64; dg.part.local_count(r)])
        .collect();
    if n == 0 {
        return PageRankOutput {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            comm,
            ledger,
        };
    }

    let base = (1.0 - cfg.damping) / n as f64;
    let mut iterations = 0;
    let mut converged = false;

    while iterations < cfg.max_iterations {
        iterations += 1;

        // Dangling mass (degree-0 vertices) is redistributed uniformly.
        let dangling: Vec<f64> = scores
            .par_iter()
            .enumerate()
            .map(|(r, sc)| {
                sc.iter()
                    .enumerate()
                    .filter(|&(v, _)| dg.locals[r].degree(v) == 0)
                    .map(|(_, &s)| s)
                    .sum()
            })
            .collect();
        let dangling_total = allreduce_sum_f64(&dangling, &mut comm);
        ledger.charge_collective(model, TimeClass::Bucket, p);

        // Push contributions along every edge.
        let results: Vec<(Outbox<RankMsg>, u64)> = (0..p)
            .into_par_iter()
            .map(|r| {
                let lg = &dg.locals[r];
                let sc = &scores[r];
                let mut ob = Outbox::new(p);
                let mut sent = 0u64;
                for (v, &s) in sc.iter().enumerate() {
                    let deg = lg.degree(v);
                    if deg == 0 {
                        continue;
                    }
                    let contrib = s / deg as f64;
                    let (ts, _) = lg.row(v);
                    for &t in ts {
                        ob.send(
                            dg.part.owner(t),
                            RankMsg {
                                target: dg.part.to_local(t) as u32,
                                contrib,
                            },
                        );
                    }
                    sent += deg as u64;
                }
                (ob, sent)
            })
            .collect();
        let (obs, sent): (Vec<_>, Vec<u64>) = results.into_iter().unzip();
        let sent_total: u64 = sent.iter().sum();
        let (inboxes, step) = exchange_with(obs, RANK_BYTES, model.packet.as_ref());

        // Accumulate and measure the residual.
        let deltas: Vec<f64> = scores
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .map(|(sc, inbox)| {
                let mut incoming = vec![0.0f64; sc.len()];
                for m in inbox {
                    incoming[m.target as usize] += m.contrib;
                }
                let mut max_delta = 0.0f64;
                for (v, s) in sc.iter_mut().enumerate() {
                    let next = base + cfg.damping * (incoming[v] + dangling_total / n as f64);
                    max_delta = max_delta.max((next - *s).abs());
                    *s = next;
                }
                max_delta
            })
            .collect();

        let threads = dg.threads_per_rank.max(1) as u64;
        ledger.charge_superstep(
            model,
            TimeClass::Relax,
            sent_total / (p as u64 * threads).max(1) + 1,
            step.max_rank_send_bytes.max(step.max_rank_recv_bytes),
        );
        comm.record(step);

        // Convergence allreduce.
        let global_delta = allreduce_max_f64(&deltas, &mut comm);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        if global_delta < cfg.tolerance {
            converged = true;
            break;
        }
    }

    let mut global = vec![0.0; n];
    for (r, sc) in scores.iter().enumerate() {
        for (l, &s) in sc.iter().enumerate() {
            global[dg.part.to_global(r, l) as usize] = s;
        }
    }
    PageRankOutput {
        scores: global,
        iterations,
        converged,
        comm,
        ledger,
    }
}

/// Sequential reference PageRank (same conventions).
pub fn seq_pagerank(g: &sssp_graph::Csr, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut scores = vec![1.0 / n as f64; n];
    let base = (1.0 - cfg.damping) / n as f64;
    for _ in 0..cfg.max_iterations {
        let dangling: f64 = g
            .vertices()
            .filter(|&v| g.degree(v) == 0)
            .map(|v| scores[v as usize])
            .sum();
        let mut next = vec![base + cfg.damping * dangling / n as f64; n];
        for u in g.vertices() {
            let deg = g.degree(u);
            if deg == 0 {
                continue;
            }
            let contrib = cfg.damping * scores[u as usize] / deg as f64;
            for (v, _) in g.row(u) {
                next[v as usize] += contrib;
            }
        }
        let max_delta = scores
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        scores = next;
        if max_delta < cfg.tolerance {
            break;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::{gen, CsrBuilder};

    fn model() -> MachineModel {
        MachineModel::bgq_like()
    }

    #[test]
    fn matches_sequential_reference() {
        let g = CsrBuilder::new().build(&gen::uniform(100, 600, 10, 4));
        let expect = seq_pagerank(&g, &PageRankConfig::default());
        for p in [1usize, 3, 7] {
            let dg = DistGraph::build(&g, p, 2);
            let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
            for (v, (&got, &want)) in out.scores.iter().zip(&expect).enumerate() {
                assert!((got - want).abs() < 1e-8, "p={p} v={v}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn scores_sum_to_one() {
        let g = CsrBuilder::new().build(&gen::uniform(80, 500, 10, 7));
        let dg = DistGraph::build(&g, 4, 2);
        let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
        let total: f64 = out.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
        assert!(out.converged);
    }

    #[test]
    fn hub_outranks_leaves() {
        let g = CsrBuilder::new().build(&gen::star(20, 1));
        let dg = DistGraph::build(&g, 3, 1);
        let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
        for leaf in 1..20 {
            assert!(out.scores[0] > out.scores[leaf]);
        }
    }

    #[test]
    fn symmetric_graph_gives_uniform_scores() {
        // On a clique every vertex is equivalent.
        let g = CsrBuilder::new().build(&gen::clique(8, 1));
        let dg = DistGraph::build(&g, 2, 1);
        let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
        for v in 1..8 {
            assert!((out.scores[v] - out.scores[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn dangling_vertices_keep_base_rank() {
        let mut el = gen::path(3, 1);
        el.n = 5; // two isolated (dangling) vertices
        let g = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&g, 2, 1);
        let out = run_pagerank(&dg, &PageRankConfig::default(), &model());
        let total: f64 = out.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(out.scores[3] > 0.0);
        assert!((out.scores[3] - out.scores[4]).abs() < 1e-12);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = CsrBuilder::new().build(&gen::uniform(50, 300, 5, 1));
        let dg = DistGraph::build(&g, 2, 1);
        let cfg = PageRankConfig {
            tolerance: 0.0,
            max_iterations: 5,
            ..Default::default()
        };
        let out = run_pagerank(&dg, &cfg, &model());
        assert_eq!(out.iterations, 5);
        assert!(!out.converged);
    }
}
