//! Sequential reference algorithms.
//!
//! [`dijkstra_radix`] is the ground truth every distributed variant is
//! validated against (a monotone radix-heap Dijkstra — O(m + n·log C)
//! instead of O(m·log n), which matters when validation reruns the oracle
//! for every root of a benchmark sweep). The classic binary-heap
//! [`dijkstra`] is retained as an independent implementation that the
//! differential tests pit against the radix variant. [`delta_stepping`] is
//! a single-threaded rendition of Fig. 2 used in tests to cross-check the
//! distributed engine's bucket semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sssp_graph::{Csr, VertexId};

use crate::state::INF;

/// Classic binary-heap Dijkstra. Returns the distance array (`u64::MAX` for
/// unreachable vertices).
pub fn dijkstra(g: &Csr, root: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    dist[root as usize] = 0;
    heap.push(Reverse((0, root)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.row(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// A radix heap: a monotone priority queue over `u64` keys. Entries land in
/// bucket `i` where `i` is the position of the highest bit in which the key
/// differs from the last extracted minimum (`i = 0` means "equal to it").
/// Extraction empties the smallest non-empty bucket, re-filing its entries
/// against the new minimum — each entry can only move to a *smaller* bucket,
/// so every entry is touched O(64) times total. Requires the monotonicity
/// Dijkstra guarantees: no key pushed is ever below the last minimum popped.
struct RadixHeap {
    /// `buckets[0]` holds keys equal to `last`; `buckets[i]` (1 ≤ i ≤ 64)
    /// holds keys whose highest differing bit from `last` is bit `i - 1`.
    buckets: Vec<Vec<(u64, VertexId)>>,
    /// The last minimum extracted (all live keys are ≥ `last`).
    last: u64,
    len: usize,
}

impl RadixHeap {
    fn new() -> Self {
        RadixHeap {
            buckets: (0..=64).map(|_| Vec::new()).collect(),
            last: 0,
            len: 0,
        }
    }

    fn bucket_index(&self, key: u64) -> usize {
        debug_assert!(key >= self.last, "radix heap requires monotone keys");
        (64 - (key ^ self.last).leading_zeros()) as usize
    }

    fn push(&mut self, key: u64, v: VertexId) {
        let i = self.bucket_index(key);
        self.buckets[i].push((key, v));
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(u64, VertexId)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            // Re-file the smallest non-empty bucket against its minimum key,
            // which becomes the new reference point `last`. Every entry has a
            // smaller highest-differing-bit vs the new minimum than vs the
            // old one, so all of them fall into strictly lower buckets.
            let i = self
                .buckets
                .iter()
                .position(|b| !b.is_empty())
                .expect("len > 0 but all buckets empty");
            let drained = std::mem::take(&mut self.buckets[i]);
            self.last = drained.iter().map(|&(k, _)| k).min().expect("non-empty");
            for (k, v) in drained {
                let j = self.bucket_index(k);
                debug_assert!(j < i);
                self.buckets[j].push((k, v));
            }
        }
        self.len -= 1;
        self.buckets[0].pop()
    }
}

/// Dijkstra over a [`RadixHeap`] instead of a binary heap. Same contract as
/// [`dijkstra`]: returns the distance array with `u64::MAX` for unreachable
/// vertices. This is the validation oracle; the binary-heap variant is kept
/// as an independent cross-check.
pub fn dijkstra_radix(g: &Csr, root: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let mut dist = vec![INF; n];
    let mut heap = RadixHeap::new();
    dist[root as usize] = 0;
    heap.push(0, root);
    while let Some((d, u)) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.row(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(nd, v);
            }
        }
    }
    dist
}

/// Classic sequential Bellman-Ford with a changed-vertex queue. Returns the
/// distance array and the number of rounds (the depth of the shortest-path
/// tree, the quantity §II-B bounds the phase count with).
pub fn bellman_ford(g: &Csr, root: VertexId) -> (Vec<u64>, u64) {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let mut dist = vec![INF; n];
    dist[root as usize] = 0;
    let mut active = vec![root];
    let mut rounds = 0u64;
    while !active.is_empty() {
        rounds += 1;
        let mut changed = Vec::new();
        let mut in_changed = vec![false; n];
        for &u in &active {
            let du = dist[u as usize];
            for (v, w) in g.row(u) {
                let nd = du + w as u64;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    if !in_changed[v as usize] {
                        in_changed[v as usize] = true;
                        changed.push(v);
                    }
                }
            }
        }
        active = changed;
        assert!(rounds <= n as u64, "Bellman-Ford failed to converge");
    }
    (dist, rounds)
}

/// Distribution of finite shortest distances over Δ-buckets: how many
/// distinct buckets are populated and the largest finite distance. §IV-E
/// uses this spread to explain why hybridization helps RMAT-2 more.
pub fn distance_spread(dist: &[u64], delta: u32) -> (usize, u64) {
    let mut buckets = std::collections::BTreeSet::new();
    let mut max_d = 0;
    for &d in dist {
        if d != INF {
            buckets.insert(d / delta as u64);
            max_d = max_d.max(d);
        }
    }
    (buckets.len(), max_d)
}

/// Statistics of a sequential Δ-stepping run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqDeltaStats {
    /// Total edge relaxations performed.
    pub relaxations: u64,
    /// Buckets processed.
    pub epochs: u64,
    /// Inner phases executed.
    pub phases: u64,
}

/// Sequential Δ-stepping with short/long edge classification, following the
/// paper's Fig. 2 pseudocode directly (buckets, phases, epochs).
pub fn delta_stepping(g: &Csr, root: VertexId, delta: u32) -> (Vec<u64>, SeqDeltaStats) {
    assert!(delta >= 1);
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let delta = delta as u64;
    let mut dist = vec![INF; n];
    let mut bucket_of = vec![u64::MAX; n];
    let mut buckets: std::collections::BTreeMap<u64, Vec<VertexId>> = Default::default();
    let mut stats = SeqDeltaStats::default();

    let relax = |v: VertexId,
                 nd: u64,
                 dist: &mut Vec<u64>,
                 bucket_of: &mut Vec<u64>,
                 buckets: &mut std::collections::BTreeMap<u64, Vec<VertexId>>|
     -> bool {
        if nd < dist[v as usize] {
            dist[v as usize] = nd;
            let nb = nd / delta;
            if nb < bucket_of[v as usize] {
                bucket_of[v as usize] = nb;
                buckets.entry(nb).or_default().push(v);
            }
            true
        } else {
            false
        }
    };

    dist[root as usize] = 0;
    bucket_of[root as usize] = 0;
    buckets.entry(0).or_default().push(root);

    let mut k = 0u64;
    // Advance to the next non-empty bucket ≥ k until none remains.
    while let Some((&kk, _)) = buckets
        .range(k..)
        .find(|(&b, vs)| vs.iter().any(|&v| bucket_of[v as usize] == b))
    {
        k = kk;
        stats.epochs += 1;
        let bucket_end = (k + 1) * delta - 1;

        // Short-edge phases.
        let mut active: Vec<VertexId> = buckets[&k]
            .iter()
            .copied()
            .filter(|&v| bucket_of[v as usize] == k)
            .collect();
        while !active.is_empty() {
            stats.phases += 1;
            let mut changed: Vec<VertexId> = Vec::new();
            for &u in &active {
                let du = dist[u as usize];
                for (v, w) in g.row(u) {
                    if (w as u64) < delta {
                        stats.relaxations += 1;
                        if relax(v, du + w as u64, &mut dist, &mut bucket_of, &mut buckets)
                            && bucket_of[v as usize] == k
                        {
                            changed.push(v);
                        }
                    }
                }
            }
            changed.sort_unstable();
            changed.dedup();
            active = changed;
        }

        // Long-edge phase: every vertex settled in this bucket relaxes its
        // long edges once.
        stats.phases += 1;
        let members: Vec<VertexId> = buckets[&k]
            .iter()
            .copied()
            .filter(|&v| bucket_of[v as usize] == k)
            .collect();
        for &u in &members {
            let du = dist[u as usize];
            debug_assert!(du <= bucket_end);
            for (v, w) in g.row(u) {
                if (w as u64) >= delta {
                    stats.relaxations += 1;
                    relax(v, du + w as u64, &mut dist, &mut bucket_of, &mut buckets);
                }
            }
        }
        k += 1;
    }
    (dist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::{gen, CsrBuilder};

    #[test]
    fn dijkstra_on_path() {
        let g = CsrBuilder::new().build(&gen::path(5, 3));
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let mut el = gen::path(3, 1);
        el.n = 5;
        let g = CsrBuilder::new().build(&el);
        let d = dijkstra(&g, 0);
        assert_eq!(d[3], INF);
        assert_eq!(d[4], INF);
    }

    #[test]
    fn dijkstra_from_middle() {
        let g = CsrBuilder::new().build(&gen::path(5, 2));
        let d = dijkstra(&g, 2);
        assert_eq!(d, vec![4, 2, 0, 2, 4]);
    }

    #[test]
    fn radix_dijkstra_matches_binary_heap_dijkstra() {
        // Differential test: the radix-heap oracle and the retained
        // binary-heap implementation must agree distance-for-distance on a
        // spread of densities and weight ranges (including unreachable
        // vertices and non-zero roots).
        for (n, m, w_max, seed) in [
            (1, 0, 1, 0),
            (50, 100, 1, 1),
            (200, 1200, 40, 11),
            (300, 600, 255, 7), // sparse → unreachable vertices
            (150, 2000, 3, 3),
        ] {
            let el = gen::uniform(n, m, w_max, seed);
            let g = CsrBuilder::new().build(&el);
            for root in [0, (n / 2) as VertexId] {
                assert_eq!(
                    dijkstra_radix(&g, root),
                    dijkstra(&g, root),
                    "n={n} m={m} w_max={w_max} seed={seed} root={root}"
                );
            }
        }
    }

    #[test]
    fn radix_dijkstra_on_path_and_unreachable() {
        let g = CsrBuilder::new().build(&gen::path(5, 3));
        assert_eq!(dijkstra_radix(&g, 0), vec![0, 3, 6, 9, 12]);
        let mut el = gen::path(3, 1);
        el.n = 5;
        let g = CsrBuilder::new().build(&el);
        let d = dijkstra_radix(&g, 0);
        assert_eq!(d[3], INF);
        assert_eq!(d[4], INF);
    }

    #[test]
    fn radix_heap_pops_in_sorted_order() {
        let mut h = RadixHeap::new();
        // Monotone workload: push a batch, pop some, push keys ≥ the last
        // popped minimum, as Dijkstra does.
        for (k, v) in [(5u64, 0u32), (3, 1), (9, 2), (3, 3)] {
            h.push(k, v);
        }
        let (k1, _) = h.pop().unwrap();
        assert_eq!(k1, 3);
        h.push(4, 4);
        h.push(u64::MAX - 1, 5);
        let mut rest = Vec::new();
        while let Some((k, _)) = h.pop() {
            rest.push(k);
        }
        assert_eq!(rest, vec![3, 4, 5, 9, u64::MAX - 1]);
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let el = gen::uniform(200, 1200, 40, 11);
        let g = CsrBuilder::new().build(&el);
        let reference = dijkstra(&g, 0);
        for delta in [1, 5, 25, 1000] {
            let (d, _) = delta_stepping(&g, 0, delta);
            assert_eq!(d, reference, "delta = {delta}");
        }
    }

    #[test]
    fn delta_one_epochs_equal_distinct_distances() {
        let el = gen::uniform(60, 300, 12, 5);
        let g = CsrBuilder::new().build(&el);
        let (d, stats) = delta_stepping(&g, 0, 1);
        let mut finite: Vec<u64> = d.iter().copied().filter(|&x| x != INF).collect();
        finite.sort_unstable();
        finite.dedup();
        assert_eq!(stats.epochs, finite.len() as u64);
    }

    #[test]
    fn larger_delta_fewer_epochs() {
        let el = gen::uniform(300, 2400, 60, 8);
        let g = CsrBuilder::new().build(&el);
        let (_, s1) = delta_stepping(&g, 0, 2);
        let (_, s2) = delta_stepping(&g, 0, 50);
        assert!(
            s2.epochs < s1.epochs,
            "epochs: {} vs {}",
            s2.epochs,
            s1.epochs
        );
    }

    #[test]
    fn bellman_ford_matches_dijkstra_reference() {
        for seed in 0..5 {
            let el = gen::uniform(150, 900, 40, seed);
            let g = CsrBuilder::new().build(&el);
            let (d, rounds) = bellman_ford(&g, 0);
            assert_eq!(d, dijkstra(&g, 0), "seed {seed}");
            assert!(rounds <= 150);
        }
    }

    #[test]
    fn bellman_ford_rounds_bound_tree_depth() {
        // On a path, the tree depth equals n-1 hops → n rounds (the last
        // round detects quiescence is folded into the count as n-1 active
        // rounds).
        let g = CsrBuilder::new().build(&gen::path(10, 2));
        let (d, rounds) = bellman_ford(&g, 0);
        assert_eq!(d[9], 18);
        assert_eq!(rounds, 10); // 9 productive rounds + 1 quiescence check
    }

    #[test]
    fn distance_spread_counts_buckets() {
        let dist = vec![0, 3, 26, 51, INF, 52];
        let (buckets, max_d) = distance_spread(&dist, 25);
        assert_eq!(buckets, 3); // buckets 0, 1, 2
        assert_eq!(max_d, 52);
    }

    #[test]
    fn dijkstra_relaxation_bound_holds_for_delta_one() {
        // With Δ = 1 every edge is long and is relaxed at most twice.
        let el = gen::uniform(100, 700, 30, 2);
        let g = CsrBuilder::new().build(&el);
        let (_, stats) = delta_stepping(&g, 0, 1);
        assert!(stats.relaxations <= 2 * g.num_undirected_edges() as u64);
    }
}
