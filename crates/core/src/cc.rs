//! Distributed connected components via label propagation.
//!
//! The min-label propagation algorithm on the BSP substrate: every vertex
//! starts labeled with its own id and repeatedly adopts the minimum label
//! among itself and its neighbors; labels stabilize at the component-wise
//! minimum vertex id. Structurally this is Bellman-Ford with `min` instead
//! of `+`, so it exercises the exact communication pattern of the SSSP
//! engine's hybrid tail and serves as a second correctness anchor for the
//! substrate (validated against the union-find reference in `sssp-graph`).

use rayon::prelude::*;

use sssp_comm::collective::allreduce_any;
use sssp_comm::cost::{MachineModel, TimeClass, TimeLedger};
use sssp_comm::exchange::{exchange_with, Outbox};
use sssp_comm::stats::CommStats;
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

/// Connected-components output.
#[derive(Debug, Clone)]
pub struct CcOutput {
    /// Per-vertex label = the minimum vertex id in its component.
    pub labels: Vec<VertexId>,
    /// Label-propagation rounds until fixpoint.
    pub rounds: u64,
    /// Message traffic ledger.
    pub comm: CommStats,
    /// Simulated time ledger.
    pub ledger: TimeLedger,
}

impl CcOutput {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut ls: Vec<VertexId> = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }
}

#[derive(Debug, Clone, Copy)]
struct LabelMsg {
    target: u32,
    label: VertexId,
}
const LABEL_BYTES: usize = 8;

/// Run min-label propagation until a global fixed point.
pub fn run_cc(dg: &DistGraph, model: &MachineModel) -> CcOutput {
    let p = dg.num_ranks();
    let n = dg.num_vertices();
    let mut comm = CommStats::new();
    let mut ledger = TimeLedger::new();

    let mut labels: Vec<Vec<VertexId>> = (0..p)
        .map(|r| {
            (0..dg.part.local_count(r))
                .map(|l| dg.part.to_global(r, l))
                .collect()
        })
        .collect();
    // Initially every vertex is "changed".
    let mut active: Vec<Vec<u32>> = (0..p)
        .map(|r| (0..dg.part.local_count(r) as u32).collect())
        .collect();
    let mut rounds = 0u64;

    loop {
        let flags: Vec<bool> = active.iter().map(|a| !a.is_empty()).collect();
        let cont = allreduce_any(&flags, &mut comm);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        if !cont {
            break;
        }
        rounds += 1;

        let results: Vec<(Outbox<LabelMsg>, u64)> = (0..p)
            .into_par_iter()
            .map(|r| {
                let lg = &dg.locals[r];
                let lab = &labels[r];
                let mut ob = Outbox::new(p);
                let mut sent = 0u64;
                for &v in &active[r] {
                    let (ts, _) = lg.row(v as usize);
                    for &t in ts {
                        ob.send(
                            dg.part.owner(t),
                            LabelMsg {
                                target: dg.part.to_local(t) as u32,
                                label: lab[v as usize],
                            },
                        );
                    }
                    sent += ts.len() as u64;
                }
                (ob, sent)
            })
            .collect();
        let (obs, sent): (Vec<_>, Vec<u64>) = results.into_iter().unzip();
        let sent_total: u64 = sent.iter().sum();
        let (inboxes, step) = exchange_with(obs, LABEL_BYTES, model.packet.as_ref());

        active = labels
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .map(|(lab, inbox)| {
                let mut changed = Vec::new();
                let mut seen = vec![false; lab.len()];
                for m in inbox {
                    let t = m.target as usize;
                    if m.label < lab[t] {
                        lab[t] = m.label;
                        if !seen[t] {
                            seen[t] = true;
                            changed.push(m.target);
                        }
                    }
                }
                changed
            })
            .collect();

        let threads = dg.threads_per_rank.max(1) as u64;
        ledger.charge_superstep(
            model,
            TimeClass::Relax,
            sent_total / (p as u64 * threads).max(1) + 1,
            step.max_rank_send_bytes.max(step.max_rank_recv_bytes),
        );
        comm.record(step);
        assert!(
            rounds <= n as u64 + 1,
            "label propagation failed to converge"
        );
    }

    let mut global = vec![0 as VertexId; n];
    for (r, lab) in labels.iter().enumerate() {
        for (l, &x) in lab.iter().enumerate() {
            global[dg.part.to_global(r, l) as usize] = x;
        }
    }
    CcOutput {
        labels: global,
        rounds,
        comm,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::components::components_union_find;
    use sssp_graph::{gen, CsrBuilder};

    fn model() -> MachineModel {
        MachineModel::bgq_like()
    }

    #[test]
    fn matches_union_find_partition() {
        for seed in 0..6 {
            let el = gen::uniform(150, 180, 10, seed);
            let g = CsrBuilder::new().build(&el);
            let reference = components_union_find(&el);
            for p in [1usize, 4, 6] {
                let dg = DistGraph::build(&g, p, 2);
                let out = run_cc(&dg, &model());
                // Same partition: labels agree iff reference labels agree.
                for u in 0..150 {
                    for v in (u + 1)..150 {
                        assert_eq!(
                            out.labels[u] == out.labels[v],
                            reference[u] == reference[v],
                            "seed {seed} p {p} pair ({u},{v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let mut el = gen::path(3, 1); // {0,1,2}
        el.n = 7;
        el.push(5, 6, 1); // {5,6}, isolated: 3, 4
        let g = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&g, 3, 1);
        let out = run_cc(&dg, &model());
        assert_eq!(out.labels, vec![0, 0, 0, 3, 4, 5, 5]);
        assert_eq!(out.num_components(), 4);
    }

    #[test]
    fn rounds_bounded_by_diameter() {
        let g = CsrBuilder::new().build(&gen::path(20, 1));
        let dg = DistGraph::build(&g, 4, 1);
        let out = run_cc(&dg, &model());
        // Label 0 must travel 19 hops; plus the initial flood + quiescence.
        assert!(
            out.rounds >= 19 && out.rounds <= 22,
            "rounds = {}",
            out.rounds
        );
        assert_eq!(out.num_components(), 1);
    }

    #[test]
    fn clique_converges_fast() {
        let g = CsrBuilder::new().build(&gen::clique(16, 1));
        let dg = DistGraph::build(&g, 4, 1);
        let out = run_cc(&dg, &model());
        assert_eq!(out.num_components(), 1);
        assert!(out.rounds <= 3, "rounds = {}", out.rounds);
    }
}
