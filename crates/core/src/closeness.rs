//! Closeness centrality and graph Voronoi partitions — the remaining
//! network-analysis primitives the paper's introduction motivates, built on
//! the multi-source engine entry points.

use sssp_comm::cost::MachineModel;
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

use crate::config::SsspConfig;
use crate::engine::{run_sssp, run_sssp_multi};
use crate::state::INF;

/// Harmonic closeness of every vertex, estimated from SSSP runs out of
/// `sources` (exact when `sources` covers all vertices): for vertex `v`,
/// `C(v) = Σ_{s ∈ sources, s ≠ v, d(s,v) < ∞} 1 / d(s, v)`, scaled by
/// `n / |sources|`. Harmonic closeness handles disconnected graphs
/// gracefully (unreachable pairs contribute zero), which is why modern
/// network-analysis toolkits prefer it to classic closeness.
pub fn harmonic_closeness_sampled(
    dg: &DistGraph,
    sources: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> Vec<f64> {
    assert!(!sources.is_empty(), "need at least one source");
    let n = dg.num_vertices();
    let scale = n as f64 / sources.len() as f64;
    let mut closeness = vec![0.0f64; n];
    for &s in sources {
        let out = run_sssp(dg, s, cfg, model);
        for (c, &d) in closeness.iter_mut().zip(&out.distances) {
            if d != INF && d > 0 {
                *c += scale / d as f64;
            }
        }
    }
    closeness
}

/// Graph Voronoi partition: assign every vertex to its nearest site (ties
/// broken toward the smaller distance the engine settles first — i.e.
/// deterministically). Returns `(site_index_per_vertex, distance_to_site)`;
/// unreachable vertices get `usize::MAX` / `u64::MAX`.
///
/// Implemented as one multi-source run (distance field) plus one run per
/// site (membership test via distance equality is ambiguous, so membership
/// is resolved by checking which site attains the field distance, in site
/// order).
pub fn voronoi(
    dg: &DistGraph,
    sites: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> (Vec<usize>, Vec<u64>) {
    assert!(!sites.is_empty(), "need at least one site");
    let n = dg.num_vertices();
    let field = run_sssp_multi(dg, sites, cfg, model);
    let mut owner = vec![usize::MAX; n];
    for (i, &s) in sites.iter().enumerate() {
        let out = run_sssp(dg, s, cfg, model);
        for (v, o) in owner.iter_mut().enumerate() {
            if *o == usize::MAX
                && field.distances[v] != INF
                && out.distances[v] == field.distances[v]
            {
                *o = i;
            }
        }
    }
    (owner, field.distances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::{gen, CsrBuilder};

    fn setup(n: usize, w: u32) -> DistGraph {
        let csr = CsrBuilder::new().build(&gen::path(n, w));
        DistGraph::build(&csr, 3, 2)
    }

    #[test]
    fn harmonic_closeness_on_path() {
        let dg = setup(5, 1);
        let sources: Vec<u32> = (0..5).collect();
        let c = harmonic_closeness_sampled(
            &dg,
            &sources,
            &SsspConfig::opt(25),
            &MachineModel::bgq_like(),
        );
        // Middle vertex: 1/2 + 1/1 + 1/1 + 1/2 = 3.0; endpoints:
        // 1 + 1/2 + 1/3 + 1/4 ≈ 2.083.
        assert!((c[2] - 3.0).abs() < 1e-9, "c[2] = {}", c[2]);
        assert!(c[2] > c[1] && c[1] > c[0]);
        assert!((c[0] - c[4]).abs() < 1e-9);
    }

    #[test]
    fn closeness_ignores_unreachable_pairs() {
        let mut el = gen::path(3, 1);
        el.n = 5; // vertices 3, 4 isolated
        let csr = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&csr, 2, 1);
        let sources: Vec<u32> = (0..5).collect();
        let c = harmonic_closeness_sampled(
            &dg,
            &sources,
            &SsspConfig::opt(25),
            &MachineModel::bgq_like(),
        );
        assert_eq!(c[3], 0.0);
        assert_eq!(c[4], 0.0);
        assert!(c[1] > 0.0);
    }

    #[test]
    fn voronoi_splits_a_path_between_endpoints() {
        let dg = setup(10, 1);
        let (owner, dist) = voronoi(
            &dg,
            &[0, 9],
            &SsspConfig::opt(25),
            &MachineModel::bgq_like(),
        );
        // Vertices 0..=4 are nearer to site 0 (vertex 4 ties 4-5 and goes
        // to the first site in order); 5..=9 to site 1.
        for (v, &o) in owner.iter().enumerate().take(5) {
            assert_eq!(o, 0, "v{v}");
        }
        for (v, &o) in owner.iter().enumerate().skip(6) {
            assert_eq!(o, 1, "v{v}");
        }
        assert_eq!(dist[0], 0);
        assert_eq!(dist[9], 0);
        assert_eq!(dist[4], 4);
    }

    #[test]
    fn voronoi_marks_unreachable() {
        let mut el = gen::path(3, 1);
        el.n = 4;
        let csr = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&csr, 2, 1);
        let (owner, dist) = voronoi(&dg, &[0], &SsspConfig::opt(25), &MachineModel::bgq_like());
        assert_eq!(owner[3], usize::MAX);
        assert_eq!(dist[3], u64::MAX);
        assert_eq!(owner[2], 0);
    }
}
