//! Engine correctness and behavior tests (exercised through the public
//! `run_sssp*` API).

use super::*;
use crate::config::DirectionPolicy;
use crate::validate::assert_matches_dijkstra;
use sssp_graph::{gen, Csr, CsrBuilder};

fn model() -> MachineModel {
    MachineModel::bgq_like()
}

fn medium_graph() -> Csr {
    CsrBuilder::new().build(&gen::uniform(300, 2400, 60, 7))
}

fn run_cfg(g: &Csr, p: usize, cfg: &SsspConfig) -> SsspOutput {
    let dg = DistGraph::build(g, p, 4);
    run_sssp(&dg, 0, cfg, &model())
}

#[test]
fn del_matches_dijkstra_on_path() {
    let g = CsrBuilder::new().build(&gen::path(20, 7));
    let out = run_cfg(&g, 3, &SsspConfig::del(25));
    assert_matches_dijkstra(&g, 0, &out);
}

#[test]
fn all_presets_match_dijkstra() {
    let g = medium_graph();
    for (name, cfg) in [
        ("dijkstra", SsspConfig::dijkstra()),
        ("bellman-ford", SsspConfig::bellman_ford()),
        ("del-25", SsspConfig::del(25)),
        ("prune-25", SsspConfig::prune(25)),
        ("opt-25", SsspConfig::opt(25)),
        ("lb-opt-25", SsspConfig::lb_opt(25)),
    ] {
        for p in [1, 4, 7] {
            let out = run_cfg(&g, p, &cfg);
            let mism = crate::validate::check_against_dijkstra(&g, 0, &out);
            assert!(
                mism.is_empty(),
                "{name} with p={p}: {} mismatches",
                mism.len()
            );
        }
    }
}

#[test]
fn forced_push_and_pull_match() {
    let g = medium_graph();
    for dir in [DirectionPolicy::AlwaysPush, DirectionPolicy::AlwaysPull] {
        let cfg = SsspConfig::prune(25).with_direction(dir.clone());
        let out = run_cfg(&g, 4, &cfg);
        let mism = crate::validate::check_against_dijkstra(&g, 0, &out);
        assert!(mism.is_empty(), "{dir:?}: {} mismatches", mism.len());
    }
}

#[test]
fn ios_changes_counts_not_results() {
    let g = medium_graph();
    let base = run_cfg(&g, 4, &SsspConfig::del(25));
    let ios = run_cfg(&g, 4, &SsspConfig::del(25).with_ios(true));
    assert_eq!(base.distances, ios.distances);
    // IOS only prunes short relaxations; some of them reappear as outer
    // shorts in the long phase.
    assert!(ios.stats.short_relaxations < base.stats.short_relaxations);
}

#[test]
fn bucket_evolution_is_mode_independent() {
    // Push and pull produce identical post-epoch states, so forcing
    // either sequence yields the same distances and the same settled
    // counts per bucket.
    let g = medium_graph();
    let push = run_cfg(
        &g,
        4,
        &SsspConfig::prune(25).with_direction(DirectionPolicy::AlwaysPush),
    );
    let pull = run_cfg(
        &g,
        4,
        &SsspConfig::prune(25).with_direction(DirectionPolicy::AlwaysPull),
    );
    assert_eq!(push.distances, pull.distances);
    let settled = |o: &SsspOutput| -> Vec<(u64, u64)> {
        o.stats
            .bucket_records
            .iter()
            .map(|r| (r.bucket, r.settled))
            .collect()
    };
    assert_eq!(settled(&push), settled(&pull));
}

#[test]
fn dijkstra_relaxes_each_edge_at_most_twice() {
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::dijkstra());
    assert!(out.stats.relaxations_total() <= 2 * g.num_undirected_edges() as u64);
    // Short phases are skipped entirely (no weights below Δ = 1).
    assert_eq!(out.stats.short_relaxations, 0);
}

#[test]
fn bellman_ford_uses_single_bucket() {
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::bellman_ford());
    assert_eq!(out.stats.epochs, 1);
    assert!(out.stats.long_push_relaxations == 0 && out.stats.pull_requests == 0);
}

#[test]
fn hybrid_reduces_buckets() {
    let g = medium_graph();
    let del = run_cfg(&g, 4, &SsspConfig::del(10));
    let opt = run_cfg(&g, 4, &SsspConfig::opt(10));
    assert!(opt.stats.buckets() < del.stats.buckets());
    assert!(opt.stats.hybrid_switch_at.is_some());
}

#[test]
fn unreachable_vertices_stay_inf() {
    let mut el = gen::path(5, 3);
    el.n = 9; // 4 isolated vertices
    let g = CsrBuilder::new().build(&el);
    let out = run_cfg(&g, 3, &SsspConfig::opt(25));
    for v in 5..9 {
        assert_eq!(out.dist(v), INF);
    }
    assert_eq!(out.reachable(), 5);
}

#[test]
fn root_from_every_rank_works() {
    let g = medium_graph();
    for root in [0u32, 77, 150, 299] {
        let dg = DistGraph::build(&g, 5, 2);
        let out = run_sssp(&dg, root, &SsspConfig::opt(25), &model());
        assert_matches_dijkstra(&g, root, &out);
    }
}

#[test]
fn split_graph_preserves_distances() {
    let el = gen::uniform(150, 3000, 40, 13);
    let g = CsrBuilder::new().build(&el);
    let (split_csr, part, rep) = sssp_dist::split_heavy_vertices(&g, 4, 24);
    assert!(
        rep.proxies_created > 0,
        "test graph should trigger splitting"
    );
    let dg = DistGraph::build_with_partition(&split_csr, part, 4, g.num_undirected_edges() as u64);
    let out = run_sssp(&dg, 0, &SsspConfig::lb_opt(25), &model());
    assert_matches_dijkstra(&g, 0, &out);
}

#[test]
fn zero_weight_edges_handled() {
    // A path with an explicit zero-weight edge in the middle.
    let mut el = sssp_graph::EdgeList::new(4);
    el.push(0, 1, 5);
    el.push(1, 2, 0);
    el.push(2, 3, 5);
    let g = CsrBuilder::new().build(&el);
    for cfg in [
        SsspConfig::dijkstra(),
        SsspConfig::del(3),
        SsspConfig::opt(3),
    ] {
        let out = run_cfg(&g, 2, &cfg);
        assert_eq!(out.distances, vec![0, 5, 5, 10]);
    }
}

#[test]
fn single_vertex_graph() {
    let el = sssp_graph::EdgeList::new(1);
    let g = CsrBuilder::new().build(&el);
    let out = run_cfg(&g, 2, &SsspConfig::opt(25));
    assert_eq!(out.distances, vec![0]);
}

#[test]
fn pruning_reduces_relaxations_on_skewed_graph() {
    use sssp_graph::rmat::{RmatGenerator, RmatParams};
    let el = RmatGenerator::new(RmatParams::RMAT1, 10, 16)
        .seed(5)
        .generate_weighted(255);
    let g = CsrBuilder::new().build(&el);
    let del = run_cfg(&g, 4, &SsspConfig::del(25));
    let prune = run_cfg(&g, 4, &SsspConfig::prune(25));
    assert_eq!(del.distances, prune.distances);
    assert!(
        prune.stats.relaxations_total() < del.stats.relaxations_total(),
        "pruning did not reduce relaxations: {} vs {}",
        prune.stats.relaxations_total(),
        del.stats.relaxations_total()
    );
}

#[test]
fn stats_phases_and_records_consistent() {
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::opt(25));
    assert_eq!(out.stats.phases as usize, out.stats.phase_records.len());
    assert_eq!(out.stats.epochs as usize, out.stats.bucket_records.len());
    let from_records: u64 = out.stats.phase_records.iter().map(|r| r.relaxations).sum();
    assert_eq!(from_records, out.stats.relaxations_total());
}

#[test]
fn settled_counts_sum_to_reachable_without_hybrid() {
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::prune(25));
    let settled: u64 = out.stats.bucket_records.iter().map(|r| r.settled).sum();
    assert_eq!(settled, out.reachable());
}

#[test]
fn multi_source_is_min_over_single_sources() {
    let g = medium_graph();
    let dg = DistGraph::build(&g, 4, 2);
    let sources = [0u32, 50, 200];
    let multi = run_sssp_multi(&dg, &sources, &SsspConfig::opt(25), &model());
    let singles: Vec<_> = sources
        .iter()
        .map(|&s| run_sssp(&dg, s, &SsspConfig::opt(25), &model()).distances)
        .collect();
    for (v, &got) in multi.distances.iter().enumerate() {
        let expect = singles.iter().map(|d| d[v]).min().unwrap();
        assert_eq!(got, expect, "vertex {v}");
    }
}

#[test]
fn seeded_run_matches_virtual_source_construction() {
    // Seeds (s, d) are equivalent to a virtual root connected to each s
    // by an edge of weight d.
    let g = medium_graph();
    let dg = DistGraph::build(&g, 3, 2);
    let seeds = [(5u32, 7u64), (100, 0), (250, 30)];
    let out = run_sssp_seeded(&dg, &seeds, &SsspConfig::opt(25), &model());
    let mut el2 = sssp_graph::EdgeList::new(g.num_vertices() + 1);
    for (u, v, w) in g.undirected_edges() {
        el2.push(u, v, w);
    }
    let virt = g.num_vertices() as u32;
    for &(s, d) in &seeds {
        el2.push(virt, s, d as u32);
    }
    let g2 = CsrBuilder::new().build(&el2);
    let expect = crate::seq::dijkstra(&g2, virt);
    for (v, &got) in out.distances.iter().enumerate().take(g.num_vertices()) {
        assert_eq!(got, expect[v], "vertex {v}");
    }
}

#[test]
fn duplicate_seeds_keep_minimum() {
    let g = CsrBuilder::new().build(&gen::path(4, 5));
    let dg = DistGraph::build(&g, 2, 1);
    let out = run_sssp_seeded(&dg, &[(0, 9), (0, 2)], &SsspConfig::del(5), &model());
    assert_eq!(out.distances[0], 2);
    assert_eq!(out.distances[3], 2 + 15);
}

#[test]
fn cyclic_partition_gives_identical_results() {
    let g = medium_graph();
    let expect = crate::seq::dijkstra(&g, 0);
    for p in [1usize, 4, 7] {
        let dg = DistGraph::build_cyclic(&g, p, 2);
        let out = run_sssp(&dg, 0, &SsspConfig::opt(25), &model());
        assert_eq!(out.distances, expect, "cyclic p={p}");
    }
}

#[test]
fn histogram_estimator_matches_results() {
    let g = medium_graph();
    let cfg = SsspConfig::opt(25).with_pull_estimator(crate::config::PullEstimator::Histogram);
    let out = run_cfg(&g, 4, &cfg);
    assert_matches_dijkstra(&g, 0, &out);
    let exp = run_cfg(
        &g,
        4,
        &SsspConfig::opt(25).with_pull_estimator(crate::config::PullEstimator::Expectation),
    );
    assert_eq!(out.distances, exp.distances);
}

#[test]
fn packet_framing_adds_wire_overhead_not_results() {
    let g = medium_graph();
    let dg = DistGraph::build(&g, 4, 4);
    let raw = run_sssp(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like());
    let pkt = run_sssp(
        &dg,
        0,
        &SsspConfig::opt(25),
        &MachineModel::bgq_like_packetized(),
    );
    assert_eq!(raw.distances, pkt.distances);
    assert_eq!(raw.stats.relaxations_total(), pkt.stats.relaxations_total());
    assert!(
        pkt.stats.comm.total_remote_bytes() > raw.stats.comm.total_remote_bytes(),
        "packet headers must show up on the wire"
    );
    assert!(pkt.stats.ledger.total_s() >= raw.stats.ledger.total_s());
}

#[test]
fn simulated_time_is_positive_and_split() {
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::del(25));
    assert!(out.stats.ledger.total_s() > 0.0);
    assert!(out.stats.ledger.bucket_s > 0.0);
    assert!(out.stats.ledger.relax_s > 0.0);
    assert!(out.stats.gteps(g.num_undirected_edges() as u64) > 0.0);
}

#[test]
fn forced_sequence_shorter_than_epochs_falls_back_to_heuristic() {
    use crate::config::LongPhaseMode;
    let g = medium_graph();
    // Force only the first bucket; everything after must match the pure
    // heuristic run's decisions.
    let heur = run_cfg(&g, 4, &SsspConfig::prune(25));
    let first = heur.stats.bucket_records[0].mode;
    let forced = run_cfg(
        &g,
        4,
        &SsspConfig::prune(25).with_direction(DirectionPolicy::Forced(vec![first])),
    );
    assert_eq!(forced.distances, heur.distances);
    let modes = |o: &SsspOutput| -> Vec<LongPhaseMode> {
        o.stats.bucket_records.iter().map(|r| r.mode).collect()
    };
    assert_eq!(modes(&forced), modes(&heur));
}

#[test]
fn always_pull_with_delta_one_matches_dijkstra() {
    // Dijkstra configuration driven entirely by the pull protocol.
    let g = CsrBuilder::new().build(&gen::uniform(150, 900, 25, 3));
    let cfg = SsspConfig::dijkstra().with_direction(DirectionPolicy::AlwaysPull);
    let out = run_cfg(&g, 5, &cfg);
    assert_matches_dijkstra(&g, 0, &out);
    assert!(out.stats.pull_requests > 0);
    assert_eq!(out.stats.long_push_relaxations, 0);
}

#[test]
fn intra_balance_threshold_zero_is_correct() {
    // π = 0 marks every vertex heavy — pure correctness check for the
    // balanced charging path.
    use crate::config::IntraBalance;
    let g = medium_graph();
    let cfg = SsspConfig::opt(25).with_intra_balance(IntraBalance::Threshold(0));
    let out = run_cfg(&g, 4, &cfg);
    assert_matches_dijkstra(&g, 0, &out);
}

#[test]
fn expectation_estimator_matches_results_and_decides_sanely() {
    use crate::config::PullEstimator;
    let g = medium_graph();
    let exact = run_cfg(
        &g,
        4,
        &SsspConfig::prune(25).with_pull_estimator(PullEstimator::Exact),
    );
    let expectation = run_cfg(
        &g,
        4,
        &SsspConfig::prune(25).with_pull_estimator(PullEstimator::Expectation),
    );
    assert_eq!(exact.distances, expectation.distances);
    // Both estimators should produce mostly the same decisions on a graph
    // with genuinely uniform weights.
    let agree = exact
        .stats
        .bucket_records
        .iter()
        .zip(&expectation.stats.bucket_records)
        .filter(|(a, b)| a.mode == b.mode)
        .count();
    assert!(
        2 * agree >= exact.stats.bucket_records.len(),
        "estimators disagree on most buckets: {agree}/{}",
        exact.stats.bucket_records.len()
    );
}

#[test]
fn heavy_multigraph_with_duplicate_edges() {
    // Duplicate parallel edges with different weights must not confuse the
    // classification (the lightest parallel edge decides the distance).
    let mut el = sssp_graph::EdgeList::new(4);
    for w in [50u32, 3, 20] {
        el.push(0, 1, w);
    }
    el.push(1, 2, 7);
    el.push(1, 2, 5);
    el.push(2, 3, 100);
    let g = CsrBuilder::new().build(&el);
    for cfg in [
        SsspConfig::dijkstra(),
        SsspConfig::del(10),
        SsspConfig::opt(10),
    ] {
        let out = run_cfg(&g, 2, &cfg);
        assert_eq!(out.distances, vec![0, 3, 8, 108]);
    }
}

#[test]
fn bucket_records_are_strictly_increasing() {
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::prune(25));
    let buckets: Vec<u64> = out.stats.bucket_records.iter().map(|r| r.bucket).collect();
    assert!(buckets.windows(2).all(|w| w[0] < w[1]), "{buckets:?}");
}

#[test]
fn comm_supersteps_bound_phase_count() {
    // Every phase needs at least one superstep; pull phases use up to three.
    let g = medium_graph();
    let out = run_cfg(&g, 4, &SsspConfig::opt(25));
    let steps = out.stats.comm.num_supersteps() as u64;
    assert!(steps >= out.stats.phases);
    assert!(steps <= 3 * out.stats.phases);
}

#[test]
fn edgeless_graph_safe_under_every_direction_policy() {
    // An edgeless graph has no weights at all: the extremes must collapse
    // to the degenerate (0, 0) instead of (u32::MAX, 0), and every long
    // phase mechanism must terminate with only the source reachable.
    let el = sssp_graph::EdgeList::new(5);
    let g = CsrBuilder::new().build(&el);
    for (name, cfg) in [
        ("push", SsspConfig::del(5)),
        (
            "pull",
            SsspConfig::prune(5).with_direction(DirectionPolicy::AlwaysPull),
        ),
        ("heuristic", SsspConfig::opt(5)),
    ] {
        let out = run_cfg(&g, 2, &cfg);
        let inf = crate::state::INF;
        assert_eq!(out.distances, vec![0, inf, inf, inf, inf], "{name}");
        assert_eq!(out.stats.reachable, 1, "{name}");
    }
}

#[test]
fn single_vertex_graph_under_push_and_pull_forcing() {
    let el = sssp_graph::EdgeList::new(1);
    let g = CsrBuilder::new().build(&el);
    for dir in [DirectionPolicy::AlwaysPush, DirectionPolicy::AlwaysPull] {
        let cfg = SsspConfig::opt(25).with_direction(dir.clone());
        let out = run_cfg(&g, 2, &cfg);
        assert_eq!(out.distances, vec![0], "{dir:?}");
    }
}

#[test]
fn auto_pi_rounds_the_average_degree() {
    use crate::config::IntraBalance;
    // 165 directed edges over 10 vertices: average degree 16.5 rounds to
    // 17, so π = 4·17 = 68. Truncating division used to give 4·16 = 64.
    assert_eq!(resolved_pi(IntraBalance::Auto, 165, 10), 68);
    assert_eq!(resolved_pi(IntraBalance::Auto, 164, 10), 64);
    // The floor of 64 and the empty graph both stay sane.
    assert_eq!(resolved_pi(IntraBalance::Auto, 4, 10), 64);
    assert_eq!(resolved_pi(IntraBalance::Auto, 0, 0), 64);
    assert_eq!(resolved_pi(IntraBalance::Off, 1000, 10), u64::MAX);
    assert_eq!(resolved_pi(IntraBalance::Threshold(7), 1000, 10), 7);
}

#[test]
fn receive_work_charged_to_target_owner_threads() {
    use crate::config::IntraBalance;
    // Star: vertex 0 → {4, 8, 12, 16}, all weight 3. With 4 threads per
    // rank every target lives on thread 0 (local % 4 == 0), so receive
    // work must pile up there — the old accounting spread the whole inbox
    // evenly and hid exactly this imbalance.
    //
    // With the unit model, p = 1 (all messages local → zero wire bytes)
    // and π = 1, the Relax-class time is the sum over supersteps of
    // (max thread ops + 1):
    //   short #1: heavy send spread 1/thread, 4 receives on thread 0 → 5+1
    //   short #2: 4 light sends on thread 0, 4 receives on thread 0 → 8+1
    //   long push: nothing left to send                            → 0+1
    let mut el = sssp_graph::EdgeList::new(17);
    for t in [4u32, 8, 12, 16] {
        el.push(0, t, 3);
    }
    let g = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&g, 1, 4);
    let cfg = SsspConfig::del(5)
        .with_intra_balance(IntraBalance::Threshold(1))
        .with_coalescing(false);
    let out = run_sssp(&dg, 0, &cfg, &MachineModel::unit());
    assert_eq!(out.distances[0], 0);
    for t in [4usize, 8, 12, 16] {
        assert_eq!(out.distances[t], 3);
    }
    assert_eq!(out.stats.ledger.relax_s, 16.0);

    // Coalescing folds short #2's four duplicate (0, 6) proposals into
    // one, so thread 0's receive pile shrinks by 3 there (5+1 instead of
    // 8+1) and the saving is recorded on the step stats.
    let cfg = SsspConfig::del(5).with_intra_balance(IntraBalance::Threshold(1));
    let out = run_sssp(&dg, 0, &cfg, &MachineModel::unit());
    assert_eq!(out.distances[0], 0);
    for t in [4usize, 8, 12, 16] {
        assert_eq!(out.distances[t], 3);
    }
    assert_eq!(out.stats.ledger.relax_s, 13.0);
    assert_eq!(out.stats.comm.total_coalesced_msgs(), 3);
}
