//! The push/pull decision heuristic (§III-C): estimate both mechanisms'
//! volumes (exact, histogram, or closed-form expectation), convert to
//! per-phase time with the machine model, and pick the cheaper — with the
//! bottleneck-rank (imbalance-aware) refinement the paper describes.
use rayon::prelude::*;

use sssp_comm::cost::TimeClass;

use crate::config::{DirectionPolicy, LongPhaseMode, PullEstimator};
use crate::state::INF;

use super::{Engine, RELAX_BYTES};

impl Engine<'_> {
    // -- push/pull decision heuristic (§III-C) ----------------------------------

    pub(super) fn decide(&mut self, k: u64) -> (LongPhaseMode, u64, u64) {
        match &self.cfg.direction {
            DirectionPolicy::AlwaysPush => (LongPhaseMode::Push, 0, 0),
            DirectionPolicy::AlwaysPull => (LongPhaseMode::Pull, 0, 0),
            DirectionPolicy::Heuristic => self.heuristic_decide(k),
            DirectionPolicy::Forced(seq) => {
                let idx = self.stats.bucket_records.len();
                match seq.get(idx) {
                    Some(&mode) => {
                        // Still compute the estimates so the record shows
                        // what the heuristic would have seen.
                        let (_, ep, el) = self.heuristic_decide(k);
                        (mode, ep, el)
                    }
                    None => self.heuristic_decide(k),
                }
            }
        }
    }

    pub(super) fn heuristic_decide(&mut self, k: u64) -> (LongPhaseMode, u64, u64) {
        let dg = self.dg;
        let delta = self.cfg.delta;
        let ios = self.cfg.ios;
        let estimator = self.cfg.pull_estimator;
        let short_bound = delta.short_bound();
        let bucket_end = delta.bucket_end(k);
        let w_max = self.max_weight as u64;
        let k_delta = match delta {
            crate::config::DeltaParam::Finite(d) => k * d as u64,
            crate::config::DeltaParam::Infinite => 0,
        };

        // Per-rank volume estimates (one pass; read-only), folded straight
        // into (Σpush, Σpull, max push, max pull, max scanned) so the hot
        // path stays free of per-bucket scratch vectors. The scanned count
        // is the rank's unsettled-vertex total — the pull model's scan
        // extent.
        let (push_total, pull_total, push_max, pull_max, scan_max) = self
            .states
            .par_iter()
            .map(|st| {
                let lg = &dg.locals[st.rank];
                // Push: the long-phase send volume of this rank.
                let mut push = 0u64;
                for u in st.bucket_members(k) {
                    let ul = u as usize;
                    let (_, ws) = lg.row(ul);
                    let start =
                        Self::push_range_start(ios, ws, st.dist[ul], bucket_end, short_bound);
                    push += (ws.len() - start) as u64;
                }
                // Pull: the request volume of this rank.
                let mut pull = 0u64;
                let mut scanned = 0u64;
                for vl in 0..st.n_local() {
                    if st.bucket_of[vl] <= k {
                        continue;
                    }
                    scanned += 1;
                    let dv = st.dist[vl];
                    let threshold = if dv == INF { u64::MAX } else { dv - k_delta };
                    match estimator {
                        PullEstimator::Exact => {
                            let (_, ws) = lg.row(vl);
                            let lo = ws.partition_point(|&w| (w as u64) < short_bound);
                            let hi = ws.partition_point(|&w| (w as u64) < threshold);
                            pull += (hi.saturating_sub(lo)) as u64;
                        }
                        PullEstimator::Histogram => {
                            let hi = lg.estimate_weight_below(vl, threshold);
                            let lo = lg.estimate_weight_below(vl, short_bound);
                            pull += hi.saturating_sub(lo);
                        }
                        PullEstimator::Expectation => {
                            // Uniform weights on [1, w_max]: expected number
                            // of edges with Δ ≤ w < T.
                            let deg = lg.degree(vl) as u64;
                            if w_max == 0 || short_bound > w_max {
                                continue;
                            }
                            let t_hi = threshold.saturating_sub(1).min(w_max);
                            let t_lo = short_bound.saturating_sub(1);
                            if t_hi > t_lo {
                                pull += deg * (t_hi - t_lo) / w_max;
                            }
                        }
                    }
                }
                (push, pull, push, pull, scanned)
            })
            .reduce_with(|a, b| {
                (
                    a.0 + b.0,
                    a.1 + b.1,
                    a.2.max(b.2),
                    a.3.max(b.3),
                    a.4.max(b.4),
                )
            })
            .unwrap_or((0, 0, 0, 0, 0));

        // The estimates travel through one allgather (§III-C preprocesses
        // per-vertex long-edge counts; at runtime only the per-rank sums
        // need to be shared).
        self.comm.collectives += 1;
        self.ledger
            .charge_collective(self.model, TimeClass::Relax, self.p);

        // Pull moves a request and (up to) a response per covered edge.
        let est_pull = 2 * pull_total;
        let est_push = push_total;

        // Convert volumes into estimated phase times, the quantity §III-C
        // actually minimizes ("estimating the communication volume and the
        // processing time"). The bottleneck rank's volume dominates when
        // the imbalance-aware refinement is on; otherwise the average is
        // used (the paper's first-cut heuristic).
        let m = self.model;
        let per_edge = m.gamma_s_per_op / m.threads_per_rank.max(1) as f64
            + m.beta_s_per_byte * RELAX_BYTES as f64;
        let bottleneck = |total: u64, maxr: u64| -> f64 {
            if self.cfg.imbalance_aware {
                (total as f64 / self.p as f64).max(maxr as f64)
            } else {
                total as f64 / self.p as f64
            }
        };
        let t_push = bottleneck(est_push, push_max) * per_edge;
        // Pull pays for requests + responses, the unsettled-vertex scan and
        // one to two extra superstep latencies (requests/responses, plus
        // the outer-short push under IOS).
        let extra_supersteps = if self.cfg.ios { 2.0 } else { 1.0 };
        let t_pull = bottleneck(est_pull, 2 * pull_max) * per_edge
            + scan_max as f64 * m.scan_s_per_op
            + extra_supersteps * m.alpha_s;

        let pull_wins = t_pull < t_push;
        (
            if pull_wins {
                LongPhaseMode::Pull
            } else {
                LongPhaseMode::Push
            },
            est_push,
            est_pull,
        )
    }
}
