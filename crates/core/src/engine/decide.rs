//! The push/pull decision heuristic (§III-C): estimate both mechanisms'
//! volumes (exact, histogram, or closed-form expectation), convert to
//! per-phase time with the machine model, and pick the cheaper — with the
//! bottleneck-rank (imbalance-aware) refinement the paper describes.
//!
//! Split into a rank-local volume pass ([`rank_volumes`]) and a pure
//! totals→decision conversion ([`decide_from_totals`]) so the simulated
//! engine (parallel fold over its rank states) and the real-thread engine
//! (one pass per rank thread + five allreduces) share the arithmetic.
use rayon::prelude::*;

use sssp_comm::collective::allgather;
use sssp_comm::cost::{MachineModel, TimeClass};
use sssp_dist::LocalGraph;

use crate::config::{DirectionPolicy, LongPhaseMode, PullEstimator, SsspConfig};
use crate::policy::EpochWindow;
use crate::state::{RankState, INF};

use super::{kernels, Engine, RELAX_BYTES};

/// One rank's §III-C volume estimates for the epoch window: the push send
/// volume, the pull request volume, and the number of unsettled vertices
/// scanned (the pull model's scan extent). Read-only over the rank state.
pub(super) fn rank_volumes(
    lg: &LocalGraph,
    st: &RankState,
    window: &EpochWindow,
    ios: bool,
    estimator: PullEstimator,
    w_max: u64,
) -> (u64, u64, u64) {
    let short_bound = window.short_bound;
    let end_dist = window.end_dist;
    let kd = window.start_dist;

    // Push: the long-phase send volume of this rank.
    let mut push = 0u64;
    for u in st.window_members(window.lo, window.hi) {
        let ul = u as usize;
        let (_, ws) = lg.row(ul);
        let start = kernels::push_range_start(ios, ws, st.dist[ul], end_dist, short_bound);
        push += (ws.len() - start) as u64;
    }
    // Pull: the request volume of this rank.
    let mut pull = 0u64;
    let mut scanned = 0u64;
    for vl in 0..st.n_local() {
        if st.bucket_of[vl] <= window.hi {
            continue;
        }
        scanned += 1;
        let dv = st.dist[vl];
        let threshold = if dv == INF { u64::MAX } else { dv - kd };
        match estimator {
            PullEstimator::Exact => {
                let (_, ws) = lg.row(vl);
                let lo = ws.partition_point(|&w| (w as u64) < short_bound);
                let hi = ws.partition_point(|&w| (w as u64) < threshold);
                pull += (hi.saturating_sub(lo)) as u64;
            }
            PullEstimator::Histogram => {
                let hi = lg.estimate_weight_below(vl, threshold);
                let lo = lg.estimate_weight_below(vl, short_bound);
                pull += hi.saturating_sub(lo);
            }
            PullEstimator::Expectation => {
                // Uniform weights on [1, w_max]: expected number of edges
                // with Δ ≤ w < T.
                let deg = lg.degree(vl) as u64;
                if w_max == 0 || short_bound > w_max {
                    continue;
                }
                let t_hi = threshold.saturating_sub(1).min(w_max);
                let t_lo = short_bound.saturating_sub(1);
                if t_hi > t_lo {
                    pull += deg * (t_hi - t_lo) / w_max;
                }
            }
        }
    }
    (push, pull, scanned)
}

/// Convert globally reduced volumes into the push/pull decision plus the
/// `(est_push, est_pull)` pair recorded per bucket. Pure arithmetic over
/// the machine model — both backends feed it their own reductions
/// (parallel fold here, allreduces on the thread backend).
#[allow(clippy::too_many_arguments)]
pub(super) fn decide_from_totals(
    cfg: &SsspConfig,
    model: &MachineModel,
    p: usize,
    push_total: u64,
    pull_total: u64,
    push_max: u64,
    pull_max: u64,
    scan_max: u64,
) -> (LongPhaseMode, u64, u64) {
    // Pull moves a request and (up to) a response per covered edge.
    let est_pull = 2 * pull_total;
    let est_push = push_total;

    // Convert volumes into estimated phase times, the quantity §III-C
    // actually minimizes ("estimating the communication volume and the
    // processing time"). The bottleneck rank's volume dominates when
    // the imbalance-aware refinement is on; otherwise the average is
    // used (the paper's first-cut heuristic).
    let per_edge = model.gamma_s_per_op / model.threads_per_rank.max(1) as f64
        + model.beta_s_per_byte * RELAX_BYTES as f64;
    let bottleneck = |total: u64, maxr: u64| -> f64 {
        if cfg.imbalance_aware {
            (total as f64 / p as f64).max(maxr as f64)
        } else {
            total as f64 / p as f64
        }
    };
    let t_push = bottleneck(est_push, push_max) * per_edge;
    // Pull pays for requests + responses, the unsettled-vertex scan and
    // one to two extra superstep latencies (requests/responses, plus
    // the outer-short push under IOS).
    let extra_supersteps = if cfg.ios { 2.0 } else { 1.0 };
    let t_pull = bottleneck(est_pull, 2 * pull_max) * per_edge
        + scan_max as f64 * model.scan_s_per_op
        + extra_supersteps * model.alpha_s;

    let pull_wins = t_pull < t_push;
    (
        if pull_wins {
            LongPhaseMode::Pull
        } else {
            LongPhaseMode::Push
        },
        est_push,
        est_pull,
    )
}

/// The §III-D hybrid switch test: true once more than fraction τ of the
/// graph's vertices is settled. Shared by both engine run loops so the
/// float arithmetic lives only in this module.
pub(super) fn hybrid_should_switch(tau: f64, settled_total: u64, n_total: u64) -> bool {
    settled_total as f64 > tau * n_total as f64
}

impl Engine<'_> {
    // -- push/pull decision heuristic (§III-C) ----------------------------------

    pub(super) fn decide(&mut self, window: &EpochWindow) -> (LongPhaseMode, u64, u64) {
        match &self.cfg.direction {
            DirectionPolicy::AlwaysPush => (LongPhaseMode::Push, 0, 0),
            DirectionPolicy::AlwaysPull => (LongPhaseMode::Pull, 0, 0),
            DirectionPolicy::Heuristic => self.heuristic_decide(window),
            DirectionPolicy::Forced(seq) => {
                let idx = self.stats.bucket_records.len();
                match seq.get(idx) {
                    Some(&mode) => {
                        // Still compute the estimates so the record shows
                        // what the heuristic would have seen.
                        let (_, ep, el) = self.heuristic_decide(window);
                        (mode, ep, el)
                    }
                    None => self.heuristic_decide(window),
                }
            }
        }
    }

    pub(super) fn heuristic_decide(&mut self, window: &EpochWindow) -> (LongPhaseMode, u64, u64) {
        let dg = self.dg;
        let ios = self.cfg.ios;
        let estimator = self.cfg.pull_estimator;
        let w_max = self.max_weight as u64;

        // Per-rank volume estimates (one pass; read-only), folded straight
        // into (Σpush, Σpull, max push, max pull, max scanned) so the hot
        // path stays free of per-bucket scratch vectors.
        let (push_total, pull_total, push_max, pull_max, scan_max) = self
            .states
            .par_iter()
            .map(|st| {
                let (push, pull, scanned) =
                    rank_volumes(&dg.locals[st.rank], st, window, ios, estimator, w_max);
                (push, pull, push, pull, scanned)
            })
            .reduce_with(|a, b| {
                (
                    a.0 + b.0,
                    a.1 + b.1,
                    a.2.max(b.2),
                    a.3.max(b.3),
                    a.4.max(b.4),
                )
            })
            .unwrap_or((0, 0, 0, 0, 0));

        // The estimates travel through one allgather (§III-C preprocesses
        // per-vertex long-edge counts; at runtime only the per-rank sums
        // need to be shared). The parallel fold above already globalized
        // them, so the gathered vector is read straight back.
        let g = allgather(
            &[push_total, pull_total, push_max, pull_max, scan_max],
            &mut self.comm,
        );
        self.ledger
            .charge_collective(self.model, TimeClass::Relax, self.p);

        decide_from_totals(self.cfg, self.model, self.p, g[0], g[1], g[2], g[3], g[4])
    }
}
