//! Runtime invariant checks — the dynamic half of the `sssp-lint` gate.
//!
//! Each check is a thin `#[inline]` wrapper around `debug_assert!`, so
//! release builds pay nothing while every debug test run exercises the
//! checks on every relaxed edge, pull request and superstep:
//!
//! * **IOS inner-edge bound** (§III-A) — short phases under IOS only relax
//!   edges that are short *and* stay inside the current bucket.
//! * **Pull-request threshold** (§III-B, eq. 1) — requests travel only
//!   along long edges that could still improve the requester.
//! * **Bucket monotonicity** — a vertex only ever moves to a lower bucket
//!   (checked in [`RankState::relax`](crate::state::RankState::relax)) and
//!   the run loop processes strictly increasing bucket indices.
//! * **Message conservation** — every superstep delivers exactly the
//!   messages that were sent, per [`StepStats`] accounting.

use sssp_comm::stats::StepStats;

use crate::state::INF;

/// IOS inner-edge bound (§III-A). When `ios` is off the short phase
/// legitimately relaxes edges that leave the bucket, so the check gates
/// on the flag.
#[inline]
pub(super) fn check_ios_inner_edge(ios: bool, w: u32, du: u64, short_bound: u64, bucket_end: u64) {
    debug_assert!(
        !ios || (w as u64) < short_bound,
        "IOS inner-edge bound violated: weight {w} is not short (bound {short_bound})"
    );
    debug_assert!(
        !ios || du + w as u64 <= bucket_end,
        "IOS inner-edge bound violated: d(u) + w = {} leaves the bucket (end {bucket_end})",
        du + w as u64,
    );
}

/// Pull-request threshold (§III-B, eq. 1): a request must travel along a
/// long edge (`w ≥ Δ`) that could still improve the requester
/// (`w < d(v) − kΔ`).
#[inline]
pub(super) fn check_pull_request(w: u32, dv: u64, k_delta: u64, short_bound: u64) {
    debug_assert!(
        (w as u64) >= short_bound,
        "pull request sent along a short edge: w = {w} < Δ bound {short_bound}"
    );
    debug_assert!(
        dv == INF || (w as u64) < dv - k_delta,
        "pull request violates eq. 1: w = {w} cannot improve d(v) = {dv} (kΔ = {k_delta})"
    );
}

/// Per-superstep message conservation: the inboxes delivered by an
/// exchange must hold exactly `remote_msgs + local_msgs` messages.
#[inline]
pub(super) fn check_conservation<M>(inboxes: &[Vec<M>], step: &StepStats) {
    debug_assert_eq!(
        inboxes.iter().map(|b| b.len() as u64).sum::<u64>(),
        step.remote_msgs + step.local_msgs,
        "superstep message conservation violated: delivered != sent"
    );
}

/// Epoch monotonicity: the run loop's bucket indices strictly increase
/// (the settled-bucket collective can never hand back an old bucket).
#[inline]
pub(super) fn check_epoch_monotone(k: u64, k_prev: Option<u64>) {
    debug_assert!(
        k_prev.is_none_or(|kp| k > kp),
        "bucket epochs must strictly increase: k = {k} after k_prev = {k_prev:?}"
    );
}
