//! Pull-mode long-edge phase (§III-B): unsettled vertices request along
//! long edges satisfying `w < d(v) − kΔ` (eq. 1); only sources settled in
//! the current bucket respond. Under IOS the settled bucket's outer short
//! edges are pushed in a preliminary sub-step.
use rayon::prelude::*;

use sssp_comm::cost::TimeClass;

use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord};
use crate::policy::EpochWindow;

use super::record::Recorder;
use super::{invariants, kernels, Engine, REQ_BYTES};

impl Engine<'_> {
    // -- long phase: pull ------------------------------------------------------

    pub(super) fn long_pull(&mut self, window: EpochWindow, record: &mut BucketRecord) {
        let dg = self.dg;
        let policy = self.policy;
        let pi = self.pi;

        let mut phase_relax = 0u64;
        let mut phase_remote = 0u64;

        // Sub-step 0 (IOS only): the outer short edges of the settled bucket
        // are not covered by the pull protocol (requests target long edges),
        // so push them directly. Without IOS, short phases already relaxed
        // every short edge.
        if self.cfg.ios {
            self.begin_superstep();
            let outer_total: u64 = self
                .states
                .par_iter_mut()
                .zip(self.relax_bufs.outboxes.par_iter_mut())
                .map(|(st, ob)| {
                    kernels::outer_short_send(
                        &dg.locals[st.rank],
                        &dg.part,
                        st,
                        &window,
                        pi,
                        &mut |dst, m| ob.send(dst, m),
                    )
                })
                .sum();
            // sssp-lint: protocol: long-pull.ios-outer-short
            let step = self.exchange_relax();
            invariants::check_conservation(&self.relax_bufs.inboxes, &step);
            self.states
                .par_iter_mut()
                .zip(self.relax_bufs.inboxes.par_iter())
                .for_each(|(st, inbox)| {
                    kernels::apply_relax(st, &policy, inbox.iter().copied());
                });
            self.charge_exchange(&step);
            phase_relax += outer_total;
            phase_remote += step.remote_msgs;
            self.stats.superstep(&step);
            self.stats.outer_short_relaxations += outer_total;
        }

        // Sub-step 1: requests. Every unsettled vertex v asks along each
        // long edge that could still improve it: w(e) < d(v) − kΔ (eq. 1).
        // Requests are never coalesced — each one expects its own response.
        self.begin_superstep();
        if !self.cfg.pooled_buffers {
            // Fresh-allocation mode: the request pool resets here, at its
            // fill site, rather than in begin_superstep — sub-step 2 begins
            // a superstep while the request inboxes are still unread.
            self.req_bufs.reset_capacity();
        }
        let (req_total, scan_max) = self
            .states
            .par_iter_mut()
            .zip(self.req_bufs.outboxes.par_iter_mut())
            .map(|(st, ob)| {
                kernels::pull_request_send(
                    &dg.locals[st.rank],
                    &dg.part,
                    st,
                    &window,
                    pi,
                    &mut |dst, m| ob.send(dst, m),
                )
            })
            .reduce_with(|a, b| (a.0 + b.0, a.1.max(b.1)))
            .unwrap_or((0, 0));
        self.ledger
            .charge_scan(self.model, TimeClass::Relax, scan_max);
        // sssp-lint: protocol: long-pull.requests
        let req_step = self
            .req_bufs
            .exchange(REQ_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&self.req_bufs.inboxes, &req_step);
        self.charge_exchange(&req_step);
        phase_remote += req_step.remote_msgs;
        self.stats.superstep(&req_step);

        // Sub-step 2: responses. Only sources settled in the current bucket
        // answer; everything else is the redundancy being pruned away.
        // (begin_superstep leaves `req_bufs` alone: its inboxes still hold
        // the sub-step 1 requests consumed below.)
        self.begin_superstep();
        let resp_total: u64 = self
            .states
            .par_iter_mut()
            .zip(self.req_bufs.inboxes.par_iter())
            .zip(self.relax_bufs.outboxes.par_iter_mut())
            .map(|((st, reqs), ob)| {
                kernels::pull_respond(
                    &dg.part,
                    st,
                    &window,
                    reqs.iter().copied(),
                    &mut |dst, m| ob.send(dst, m),
                )
            })
            .sum();
        // sssp-lint: protocol: long-pull.responses
        let resp_step = self.exchange_relax();
        invariants::check_conservation(&self.relax_bufs.inboxes, &resp_step);
        self.states
            .par_iter_mut()
            .zip(self.relax_bufs.inboxes.par_iter())
            .for_each(|(st, inbox)| {
                kernels::apply_relax(st, &policy, inbox.iter().copied());
            });
        self.charge_exchange(&resp_step);
        phase_remote += resp_step.remote_msgs;
        self.stats.superstep(&resp_step);

        record.requests = req_total;
        record.responses = resp_total;
        phase_relax += req_total + resp_total;
        self.stats.pull_requests += req_total;
        self.stats.pull_responses += resp_total;
        self.stats.phase(&PhaseRecord {
            bucket: window.lo,
            kind: PhaseKind::LongPull,
            relaxations: phase_relax,
            remote_msgs: phase_remote,
        });
    }
}
