//! Pull-mode long-edge phase (§III-B): unsettled vertices request along
//! long edges satisfying `w < d(v) − kΔ` (eq. 1); only sources settled in
//! the current bucket respond. Under IOS the settled bucket's outer short
//! edges are pushed in a preliminary sub-step.
use rayon::prelude::*;

use sssp_comm::cost::TimeClass;
use sssp_comm::exchange::{exchange_with, Outbox};

use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord};
use crate::state::INF;

use super::{invariants, Engine, RelaxMsg, ReqMsg, RELAX_BYTES, REQ_BYTES};

impl Engine<'_> {
    // -- long phase: pull ------------------------------------------------------

    pub(super) fn long_pull(&mut self, k: u64, record: &mut BucketRecord) {
        let dg = self.dg;
        let p = self.p;
        let delta = self.cfg.delta;
        let pi = self.pi;
        let short_bound = delta.short_bound();
        let bucket_end = delta.bucket_end(k);
        let k_delta = match delta {
            crate::config::DeltaParam::Finite(d) => k * d as u64,
            crate::config::DeltaParam::Infinite => 0,
        };

        let mut phase_relax = 0u64;
        let mut phase_remote = 0u64;

        // Sub-step 0 (IOS only): the outer short edges of the settled bucket
        // are not covered by the pull protocol (requests target long edges),
        // so push them directly. Without IOS, short phases already relaxed
        // every short edge.
        if self.cfg.ios {
            self.begin_superstep();
            let results: Vec<(Outbox<RelaxMsg>, u64)> = self
                .states
                .par_iter_mut()
                .map(|st| {
                    let lg = &dg.locals[st.rank];
                    let part = &dg.part;
                    let mut ob = Outbox::new(p);
                    let mut outer = 0u64;
                    let members: Vec<u32> = st.bucket_members(k).collect();
                    for u in members {
                        let ul = u as usize;
                        let du = st.dist[ul];
                        let (ts, ws) = lg.row(ul);
                        let start = Self::push_range_start(true, ws, du, bucket_end, short_bound);
                        let long_start = ws.partition_point(|&w| (w as u64) < short_bound);
                        for i in start..long_start {
                            let v = ts[i];
                            ob.send(
                                part.owner(v),
                                RelaxMsg {
                                    target: part.local_index(v),
                                    nd: du + ws[i] as u64,
                                },
                            );
                            outer += 1;
                        }
                        let heavy = (lg.degree(ul) as u64) > pi;
                        st.loads.charge(ul, (long_start - start) as u64, heavy);
                    }
                    (ob, outer)
                })
                .collect();
            let (obs, counts): (Vec<_>, Vec<u64>) = results.into_iter().unzip();
            let outer_total: u64 = counts.iter().sum();
            let (inboxes, step) = exchange_with(obs, RELAX_BYTES, self.model.packet.as_ref());
            invariants::check_conservation(&inboxes, &step);
            self.states
                .par_iter_mut()
                .zip(inboxes.into_par_iter())
                .for_each(|(st, inbox)| {
                    st.loads.charge(0, inbox.len() as u64, true);
                    for m in &inbox {
                        st.relax(m.target, m.nd, &delta);
                    }
                });
            self.charge_exchange(&step);
            phase_relax += outer_total;
            phase_remote += step.remote_msgs;
            self.comm.record(step);
            self.stats.outer_short_relaxations += outer_total;
        }

        // Sub-step 1: requests. Every unsettled vertex v asks along each
        // long edge that could still improve it: w(e) < d(v) − kΔ (eq. 1).
        self.begin_superstep();
        let results: Vec<(Outbox<ReqMsg>, u64, u64)> = self
            .states
            .par_iter_mut()
            .map(|st| {
                let lg = &dg.locals[st.rank];
                let part = &dg.part;
                let mut ob = Outbox::new(p);
                let mut reqs = 0u64;
                let mut scanned = 0u64;
                for vl in 0..st.n_local() {
                    if st.bucket_of[vl] <= k {
                        continue;
                    }
                    scanned += 1;
                    let dv = st.dist[vl];
                    let threshold = if dv == INF { u64::MAX } else { dv - k_delta };
                    let (ts, ws) = lg.row(vl);
                    let lo = ws.partition_point(|&w| (w as u64) < short_bound);
                    let hi = ws.partition_point(|&w| (w as u64) < threshold);
                    if hi <= lo {
                        continue;
                    }
                    let origin = part.to_global(st.rank, vl);
                    for i in lo..hi {
                        let u = ts[i];
                        invariants::check_pull_request(ws[i], dv, k_delta, short_bound);
                        ob.send(
                            part.owner(u),
                            ReqMsg {
                                u_local: part.local_index(u),
                                origin,
                                w: ws[i],
                            },
                        );
                    }
                    let heavy = (lg.degree(vl) as u64) > pi;
                    st.loads.charge(vl, (hi - lo) as u64, heavy);
                    reqs += (hi - lo) as u64;
                }
                (ob, reqs, scanned)
            })
            .collect();

        let mut obs = Vec::with_capacity(p);
        let mut req_total = 0u64;
        let mut scan_max = 0u64;
        for (ob, r, s) in results {
            obs.push(ob);
            req_total += r;
            scan_max = scan_max.max(s);
        }
        self.ledger
            .charge_scan(self.model, TimeClass::Relax, scan_max);
        let (req_inboxes, req_step) = exchange_with(obs, REQ_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&req_inboxes, &req_step);
        self.charge_exchange(&req_step);
        phase_remote += req_step.remote_msgs;
        self.comm.record(req_step);

        // Sub-step 2: responses. Only sources settled in the current bucket
        // answer; everything else is the redundancy being pruned away.
        self.begin_superstep();
        let results: Vec<(Outbox<RelaxMsg>, u64)> = self
            .states
            .par_iter_mut()
            .zip(req_inboxes.into_par_iter())
            .map(|(st, reqs)| {
                let part = &dg.part;
                let mut ob = Outbox::new(p);
                let mut responses = 0u64;
                st.loads.charge(0, reqs.len() as u64, true);
                for r in &reqs {
                    if st.bucket_of[r.u_local as usize] == k {
                        let nd = st.dist[r.u_local as usize] + r.w as u64;
                        ob.send(
                            part.owner(r.origin),
                            RelaxMsg {
                                target: part.local_index(r.origin),
                                nd,
                            },
                        );
                        responses += 1;
                    }
                }
                (ob, responses)
            })
            .collect();
        let (obs, counts): (Vec<_>, Vec<u64>) = results.into_iter().unzip();
        let resp_total: u64 = counts.iter().sum();
        let (resp_inboxes, resp_step) = exchange_with(obs, RELAX_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&resp_inboxes, &resp_step);
        self.states
            .par_iter_mut()
            .zip(resp_inboxes.into_par_iter())
            .for_each(|(st, inbox)| {
                st.loads.charge(0, inbox.len() as u64, true);
                for m in &inbox {
                    st.relax(m.target, m.nd, &delta);
                }
            });
        self.charge_exchange(&resp_step);
        phase_remote += resp_step.remote_msgs;
        self.comm.record(resp_step);

        record.requests = req_total;
        record.responses = resp_total;
        phase_relax += req_total + resp_total;
        self.stats.pull_requests += req_total;
        self.stats.pull_responses += resp_total;
        self.stats.phases += 1;
        self.stats.phase_records.push(PhaseRecord {
            bucket: k,
            kind: PhaseKind::LongPull,
            relaxations: phase_relax,
            remote_msgs: phase_remote,
        });
    }
}
