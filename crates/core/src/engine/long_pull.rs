//! Pull-mode long-edge phase (§III-B): unsettled vertices request along
//! long edges satisfying `w < d(v) − kΔ` (eq. 1); only sources settled in
//! the current bucket respond. Under IOS the settled bucket's outer short
//! edges are pushed in a preliminary sub-step.
use rayon::prelude::*;

use sssp_comm::cost::TimeClass;

use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord};
use crate::state::INF;

use super::{invariants, Engine, RelaxMsg, ReqMsg, RELAX_BYTES, REQ_BYTES};

impl Engine<'_> {
    // -- long phase: pull ------------------------------------------------------

    pub(super) fn long_pull(&mut self, k: u64, record: &mut BucketRecord) {
        let dg = self.dg;
        let delta = self.cfg.delta;
        let pi = self.pi;
        let short_bound = delta.short_bound();
        let bucket_end = delta.bucket_end(k);
        let k_delta = match delta {
            crate::config::DeltaParam::Finite(d) => k * d as u64,
            crate::config::DeltaParam::Infinite => 0,
        };

        let mut phase_relax = 0u64;
        let mut phase_remote = 0u64;

        // Sub-step 0 (IOS only): the outer short edges of the settled bucket
        // are not covered by the pull protocol (requests target long edges),
        // so push them directly. Without IOS, short phases already relaxed
        // every short edge.
        if self.cfg.ios {
            self.begin_superstep();
            let outer_total: u64 = self
                .states
                .par_iter_mut()
                .zip(self.relax_bufs.outboxes.par_iter_mut())
                .map(|(st, ob)| {
                    let lg = &dg.locals[st.rank];
                    let part = &dg.part;
                    let mut outer = 0u64;
                    st.collect_active_from_bucket(k);
                    for i in 0..st.active.len() {
                        let ul = st.active[i] as usize;
                        let du = st.dist[ul];
                        let (ts, ws) = lg.row(ul);
                        let start = Self::push_range_start(true, ws, du, bucket_end, short_bound);
                        let long_start = ws.partition_point(|&w| (w as u64) < short_bound);
                        for j in start..long_start {
                            let v = ts[j];
                            ob.send(
                                part.owner(v),
                                RelaxMsg {
                                    target: part.local_index(v),
                                    nd: du + ws[j] as u64,
                                },
                            );
                            outer += 1;
                        }
                        let heavy = (lg.degree(ul) as u64) > pi;
                        st.loads.charge(ul, (long_start - start) as u64, heavy);
                    }
                    outer
                })
                .sum();
            let step = self
                .relax_bufs
                .exchange(RELAX_BYTES, self.model.packet.as_ref());
            invariants::check_conservation(&self.relax_bufs.inboxes, &step);
            self.states
                .par_iter_mut()
                .zip(self.relax_bufs.inboxes.par_iter())
                .for_each(|(st, inbox)| {
                    for m in inbox.iter() {
                        st.charge_recv(m.target);
                        st.relax(m.target, m.nd, &delta);
                    }
                });
            self.charge_exchange(&step);
            phase_relax += outer_total;
            phase_remote += step.remote_msgs;
            self.comm.record(step);
            self.stats.outer_short_relaxations += outer_total;
        }

        // Sub-step 1: requests. Every unsettled vertex v asks along each
        // long edge that could still improve it: w(e) < d(v) − kΔ (eq. 1).
        self.begin_superstep();
        if !self.cfg.pooled_buffers {
            // Fresh-allocation mode: the request pool resets here, at its
            // fill site, rather than in begin_superstep — sub-step 2 begins
            // a superstep while the request inboxes are still unread.
            self.req_bufs.reset_capacity();
        }
        let (req_total, scan_max) = self
            .states
            .par_iter_mut()
            .zip(self.req_bufs.outboxes.par_iter_mut())
            .map(|(st, ob)| {
                let lg = &dg.locals[st.rank];
                let part = &dg.part;
                let mut reqs = 0u64;
                let mut scanned = 0u64;
                for vl in 0..st.n_local() {
                    if st.bucket_of[vl] <= k {
                        continue;
                    }
                    scanned += 1;
                    let dv = st.dist[vl];
                    let threshold = if dv == INF { u64::MAX } else { dv - k_delta };
                    let (ts, ws) = lg.row(vl);
                    let lo = ws.partition_point(|&w| (w as u64) < short_bound);
                    let hi = ws.partition_point(|&w| (w as u64) < threshold);
                    if hi <= lo {
                        continue;
                    }
                    let origin = part.to_global(st.rank, vl);
                    for i in lo..hi {
                        let u = ts[i];
                        invariants::check_pull_request(ws[i], dv, k_delta, short_bound);
                        ob.send(
                            part.owner(u),
                            ReqMsg {
                                u_local: part.local_index(u),
                                origin,
                                w: ws[i],
                            },
                        );
                    }
                    let heavy = (lg.degree(vl) as u64) > pi;
                    st.loads.charge(vl, (hi - lo) as u64, heavy);
                    reqs += (hi - lo) as u64;
                }
                (reqs, scanned)
            })
            .reduce_with(|a, b| (a.0 + b.0, a.1.max(b.1)))
            .unwrap_or((0, 0));
        self.ledger
            .charge_scan(self.model, TimeClass::Relax, scan_max);
        let req_step = self
            .req_bufs
            .exchange(REQ_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&self.req_bufs.inboxes, &req_step);
        self.charge_exchange(&req_step);
        phase_remote += req_step.remote_msgs;
        self.comm.record(req_step);

        // Sub-step 2: responses. Only sources settled in the current bucket
        // answer; everything else is the redundancy being pruned away.
        // (begin_superstep leaves `req_bufs` alone: its inboxes still hold
        // the sub-step 1 requests consumed below.)
        self.begin_superstep();
        let resp_total: u64 = self
            .states
            .par_iter_mut()
            .zip(self.req_bufs.inboxes.par_iter())
            .zip(self.relax_bufs.outboxes.par_iter_mut())
            .map(|((st, reqs), ob)| {
                let part = &dg.part;
                let mut responses = 0u64;
                for r in reqs.iter() {
                    st.charge_recv(r.u_local);
                    if st.bucket_of[r.u_local as usize] == k {
                        let nd = st.dist[r.u_local as usize] + r.w as u64;
                        ob.send(
                            part.owner(r.origin),
                            RelaxMsg {
                                target: part.local_index(r.origin),
                                nd,
                            },
                        );
                        responses += 1;
                    }
                }
                responses
            })
            .sum();
        let resp_step = self
            .relax_bufs
            .exchange(RELAX_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&self.relax_bufs.inboxes, &resp_step);
        self.states
            .par_iter_mut()
            .zip(self.relax_bufs.inboxes.par_iter())
            .for_each(|(st, inbox)| {
                for m in inbox.iter() {
                    st.charge_recv(m.target);
                    st.relax(m.target, m.nd, &delta);
                }
            });
        self.charge_exchange(&resp_step);
        phase_remote += resp_step.remote_msgs;
        self.comm.record(resp_step);

        record.requests = req_total;
        record.responses = resp_total;
        phase_relax += req_total + resp_total;
        self.stats.pull_requests += req_total;
        self.stats.pull_responses += resp_total;
        self.stats.phases += 1;
        self.stats.phase_records.push(PhaseRecord {
            bucket: k,
            kind: PhaseKind::LongPull,
            relaxations: phase_relax,
            remote_msgs: phase_remote,
        });
    }
}
