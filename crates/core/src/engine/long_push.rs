//! Push-mode long-edge phase (§III-B): every vertex settled in the current
//! bucket relaxes its long (and, under IOS, outer-short) edges outward,
//! with receiver-side self/backward/forward classification for Fig 7.
use rayon::prelude::*;

use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord};
use crate::policy::EpochWindow;

use super::record::Recorder;
use super::{invariants, kernels, Engine};

impl Engine<'_> {
    // -- long phase: push -----------------------------------------------------

    pub(super) fn long_push(&mut self, window: EpochWindow, record: &mut BucketRecord) {
        self.begin_superstep();
        let dg = self.dg;
        let policy = self.policy;
        let ios = self.cfg.ios;
        let pi = self.pi;

        let (outer_total, long_total) = self
            .states
            .par_iter_mut()
            .zip(self.relax_bufs.outboxes.par_iter_mut())
            .map(|(st, ob)| {
                kernels::long_push_send(
                    &dg.locals[st.rank],
                    &dg.part,
                    st,
                    &window,
                    ios,
                    pi,
                    &mut |dst, m| ob.send(dst, m),
                )
            })
            .reduce_with(|a, b| (a.0 + b.0, a.1 + b.1))
            .unwrap_or((0, 0));

        // sssp-lint: protocol: long-push.exchange-relax
        let step = self.exchange_relax();
        invariants::check_conservation(&self.relax_bufs.inboxes, &step);

        // Receiver-side classification (§III-B / Fig 7): self, backward or
        // forward, judged against the target's bucket before applying.
        let (se, be, fe) = self
            .states
            .par_iter_mut()
            .zip(self.relax_bufs.inboxes.par_iter())
            .map(|(st, inbox)| {
                kernels::classify_apply_relax(st, &window, &policy, inbox.iter().copied())
            })
            .reduce_with(|a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
            .unwrap_or((0, 0, 0));
        record.self_edges += se;
        record.backward_edges += be;
        record.forward_edges += fe;

        self.charge_exchange(&step);
        self.stats.superstep(&step);
        self.stats.outer_short_relaxations += outer_total;
        self.stats.long_push_relaxations += long_total;
        self.stats.phase(&PhaseRecord {
            bucket: window.lo,
            kind: PhaseKind::LongPush,
            relaxations: outer_total + long_total,
            remote_msgs: step.remote_msgs,
        });
    }
}
