//! Push-mode long-edge phase (§III-B): every vertex settled in the current
//! bucket relaxes its long (and, under IOS, outer-short) edges outward,
//! with receiver-side self/backward/forward classification for Fig 7.
use rayon::prelude::*;

use sssp_comm::exchange::{exchange_with, Outbox};

use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord};

use super::{invariants, Engine, RelaxMsg, RELAX_BYTES};

impl Engine<'_> {
    // -- long phase: push -----------------------------------------------------

    /// Row index where the long-phase push range of `u` starts: with IOS the
    /// suffix of edges that could not have been relaxed as inner shorts
    /// (`w > bucket_end − d(u)`), otherwise the long edges (`w ≥ Δ`).
    #[inline]
    pub(super) fn push_range_start(
        ios: bool,
        ws: &[u32],
        du: u64,
        bucket_end: u64,
        short_bound: u64,
    ) -> usize {
        if ios {
            let bound = (bucket_end - du).min(short_bound.saturating_sub(1));
            ws.partition_point(|&w| (w as u64) <= bound)
        } else {
            ws.partition_point(|&w| (w as u64) < short_bound)
        }
    }

    pub(super) fn long_push(&mut self, k: u64, record: &mut BucketRecord) {
        self.begin_superstep();
        let dg = self.dg;
        let p = self.p;
        let delta = self.cfg.delta;
        let ios = self.cfg.ios;
        let pi = self.pi;
        let short_bound = delta.short_bound();
        let bucket_end = delta.bucket_end(k);

        let results: Vec<(Outbox<RelaxMsg>, u64, u64)> = self
            .states
            .par_iter_mut()
            .map(|st| {
                let lg = &dg.locals[st.rank];
                let part = &dg.part;
                let mut ob = Outbox::new(p);
                let (mut outer, mut long) = (0u64, 0u64);
                let members: Vec<u32> = st.bucket_members(k).collect();
                for u in members {
                    let ul = u as usize;
                    let du = st.dist[ul];
                    let (ts, ws) = lg.row(ul);
                    let start = Self::push_range_start(ios, ws, du, bucket_end, short_bound);
                    for i in start..ts.len() {
                        let v = ts[i];
                        ob.send(
                            part.owner(v),
                            RelaxMsg {
                                target: part.local_index(v),
                                nd: du + ws[i] as u64,
                            },
                        );
                        if (ws[i] as u64) < short_bound {
                            outer += 1;
                        } else {
                            long += 1;
                        }
                    }
                    let heavy = (lg.degree(ul) as u64) > pi;
                    st.loads.charge(ul, (ts.len() - start) as u64, heavy);
                }
                (ob, outer, long)
            })
            .collect();

        let mut obs = Vec::with_capacity(p);
        let (mut outer_total, mut long_total) = (0u64, 0u64);
        for (ob, o, l) in results {
            obs.push(ob);
            outer_total += o;
            long_total += l;
        }
        let (inboxes, step) = exchange_with(obs, RELAX_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&inboxes, &step);

        // Receiver-side classification (§III-B / Fig 7): self, backward or
        // forward, judged against the target's bucket before applying.
        let tallies: Vec<(u64, u64, u64)> = self
            .states
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .map(|(st, inbox)| {
                st.loads.charge(0, inbox.len() as u64, true);
                let (mut se, mut be, mut fe) = (0u64, 0u64, 0u64);
                for m in &inbox {
                    let b = st.bucket_of[m.target as usize];
                    if b == k {
                        se += 1;
                    } else if b < k {
                        be += 1;
                    } else {
                        fe += 1;
                    }
                    st.relax(m.target, m.nd, &delta);
                }
                (se, be, fe)
            })
            .collect();
        for (se, be, fe) in tallies {
            record.self_edges += se;
            record.backward_edges += be;
            record.forward_edges += fe;
        }

        self.charge_exchange(&step);
        self.comm.record(step);
        self.stats.outer_short_relaxations += outer_total;
        self.stats.long_push_relaxations += long_total;
        self.stats.phases += 1;
        self.stats.phase_records.push(PhaseRecord {
            bucket: k,
            kind: PhaseKind::LongPush,
            relaxations: outer_total + long_total,
            remote_msgs: step.remote_msgs,
        });
    }
}
