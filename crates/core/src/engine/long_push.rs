//! Push-mode long-edge phase (§III-B): every vertex settled in the current
//! bucket relaxes its long (and, under IOS, outer-short) edges outward,
//! with receiver-side self/backward/forward classification for Fig 7.
use rayon::prelude::*;

use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord};

use super::{invariants, Engine, RelaxMsg, RELAX_BYTES};

impl Engine<'_> {
    // -- long phase: push -----------------------------------------------------

    /// Row index where the long-phase push range of `u` starts: with IOS the
    /// suffix of edges that could not have been relaxed as inner shorts
    /// (`w > bucket_end − d(u)`), otherwise the long edges (`w ≥ Δ`).
    #[inline]
    pub(super) fn push_range_start(
        ios: bool,
        ws: &[u32],
        du: u64,
        bucket_end: u64,
        short_bound: u64,
    ) -> usize {
        if ios {
            let bound = (bucket_end - du).min(short_bound.saturating_sub(1));
            ws.partition_point(|&w| (w as u64) <= bound)
        } else {
            ws.partition_point(|&w| (w as u64) < short_bound)
        }
    }

    pub(super) fn long_push(&mut self, k: u64, record: &mut BucketRecord) {
        self.begin_superstep();
        let dg = self.dg;
        let delta = self.cfg.delta;
        let ios = self.cfg.ios;
        let pi = self.pi;
        let short_bound = delta.short_bound();
        let bucket_end = delta.bucket_end(k);

        let (outer_total, long_total) = self
            .states
            .par_iter_mut()
            .zip(self.relax_bufs.outboxes.par_iter_mut())
            .map(|(st, ob)| {
                let lg = &dg.locals[st.rank];
                let part = &dg.part;
                let (mut outer, mut long) = (0u64, 0u64);
                st.collect_active_from_bucket(k);
                for i in 0..st.active.len() {
                    let ul = st.active[i] as usize;
                    let du = st.dist[ul];
                    let (ts, ws) = lg.row(ul);
                    let start = Self::push_range_start(ios, ws, du, bucket_end, short_bound);
                    for j in start..ts.len() {
                        let v = ts[j];
                        ob.send(
                            part.owner(v),
                            RelaxMsg {
                                target: part.local_index(v),
                                nd: du + ws[j] as u64,
                            },
                        );
                        if (ws[j] as u64) < short_bound {
                            outer += 1;
                        } else {
                            long += 1;
                        }
                    }
                    let heavy = (lg.degree(ul) as u64) > pi;
                    st.loads.charge(ul, (ts.len() - start) as u64, heavy);
                }
                (outer, long)
            })
            .reduce_with(|a, b| (a.0 + b.0, a.1 + b.1))
            .unwrap_or((0, 0));

        let step = self
            .relax_bufs
            .exchange(RELAX_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&self.relax_bufs.inboxes, &step);

        // Receiver-side classification (§III-B / Fig 7): self, backward or
        // forward, judged against the target's bucket before applying.
        let (se, be, fe) = self
            .states
            .par_iter_mut()
            .zip(self.relax_bufs.inboxes.par_iter())
            .map(|(st, inbox)| {
                let (mut se, mut be, mut fe) = (0u64, 0u64, 0u64);
                for m in inbox.iter() {
                    let b = st.bucket_of[m.target as usize];
                    if b == k {
                        se += 1;
                    } else if b < k {
                        be += 1;
                    } else {
                        fe += 1;
                    }
                    st.charge_recv(m.target);
                    st.relax(m.target, m.nd, &delta);
                }
                (se, be, fe)
            })
            .reduce_with(|a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
            .unwrap_or((0, 0, 0));
        record.self_edges += se;
        record.backward_edges += be;
        record.forward_edges += fe;

        self.charge_exchange(&step);
        self.comm.record(step);
        self.stats.outer_short_relaxations += outer_total;
        self.stats.long_push_relaxations += long_total;
        self.stats.phases += 1;
        self.stats.phase_records.push(PhaseRecord {
            bucket: k,
            kind: PhaseKind::LongPush,
            relaxations: outer_total + long_total,
            remote_msgs: step.remote_msgs,
        });
    }
}
