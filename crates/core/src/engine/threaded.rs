//! The real-thread Δ-stepping engine: the complete epoch loop of
//! [`super::Engine`] — bucket collectives, repeated inner-short phases,
//! the per-bucket §III-C push/pull decision and the τ-triggered
//! Bellman-Ford tail — running one OS thread per rank over
//! [`sssp_comm::threaded::RankCtx`].
//!
//! Both backends call the same rank-local kernels (`super::kernels`), so
//! the relaxation logic exists exactly once; this module contributes only
//! the SPMD driver: which kernel runs when, and how its messages travel.
//! Because channel inboxes are delivered in source-rank order (matching
//! the simulated transpose) and sender-side coalescing leaves each lane
//! sorted by `(target, nd)`, a threaded run applies the *identical*
//! message sequence in the *identical* order as a simulated run — final
//! distances are bit-identical, which the differential proptests pin.
//!
//! Collectives use only the `sssp_comm::threaded` rendezvous primitives;
//! everything else is rank-private state.

use std::sync::Arc;

use sssp_comm::cost::MachineModel;
use sssp_comm::exchange::{coalesce_lane_min, shrink_oversized};
use sssp_comm::threaded::{run_threaded, RankCtx};
use sssp_dist::{DistGraph, LocalGraph};
use sssp_graph::VertexId;

use crate::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use crate::state::{RankState, INF};

use super::{decide, kernels, resolved_pi, RelaxMsg, ReqMsg};

/// Messages of the threaded engine's single channel world: relax proposals
/// and pull requests share one wire type (a superstep carries only one of
/// the two kinds, exactly as the simulated engine keeps separate buffer
/// pools per kind).
enum Wire {
    /// A relaxation proposal.
    Relax(RelaxMsg),
    /// A pull request.
    Req(ReqMsg),
}

impl Wire {
    #[inline]
    fn relax(&self) -> RelaxMsg {
        match self {
            Wire::Relax(m) => *m,
            // A request inside a relax superstep breaks the SPMD protocol;
            // aborting the run is the correct response.
            // sssp-lint: allow(no-panic-hot-path): SPMD protocol contract
            Wire::Req(_) => panic!("pull request delivered in a relax superstep"),
        }
    }

    #[inline]
    fn req(&self) -> ReqMsg {
        match self {
            Wire::Req(m) => *m,
            // sssp-lint: allow(no-panic-hot-path): SPMD protocol contract
            Wire::Relax(_) => panic!("relaxation delivered in a request superstep"),
        }
    }
}

/// Result of a threaded run: final distances plus the transport counters
/// the wall-clock benchmark records.
#[derive(Debug, Clone)]
pub struct ThreadedSsspOutput {
    /// Final distances indexed by global vertex id (`u64::MAX` = unreached).
    pub distances: Vec<u64>,
    /// Relaxation messages that entered an exchange (post-coalescing, all
    /// ranks summed). Pull requests are not included.
    pub relax_msgs: u64,
    /// Relaxation messages removed by sender-side coalescing before the
    /// exchanges (all ranks summed).
    pub coalesced_msgs: u64,
}

/// Per-rank return value of the rank body.
struct RankResult {
    dist: Vec<u64>,
    relax_msgs: u64,
    coalesced_msgs: u64,
}

/// Per-rank transport counters plus the epoch's pool high-water mark.
struct Traffic {
    relax_msgs: u64,
    coalesced_msgs: u64,
    hwm: usize,
}

/// Run the configured SSSP algorithm from `root` with one OS thread per
/// rank. Distances are bit-identical to [`super::run_sssp`] under every
/// configuration; only wall-clock behavior (and the absence of the
/// simulated cost model) differs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sssp_core::{threaded_delta_stepping, SsspConfig};
/// use sssp_comm::cost::MachineModel;
/// use sssp_dist::DistGraph;
/// use sssp_graph::{gen, CsrBuilder};
///
/// let csr = CsrBuilder::new().build(&gen::path(5, 3));
/// let dg = Arc::new(DistGraph::build(&csr, 2, 2));
/// let out = threaded_delta_stepping(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like());
/// assert_eq!(out.distances, vec![0, 3, 6, 9, 12]);
/// ```
pub fn threaded_delta_stepping(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> ThreadedSsspOutput {
    let n = dg.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let p = dg.num_ranks();
    let dg_body = Arc::clone(dg);
    let cfg_body = cfg.clone();
    let model_body = *model;
    let per_rank = run_threaded(p, move |mut ctx: RankCtx<Wire>| {
        rank_body(&dg_body, root, &cfg_body, &model_body, &mut ctx)
    });

    let mut distances = vec![INF; n];
    let mut relax_msgs = 0u64;
    let mut coalesced_msgs = 0u64;
    for (rank, res) in per_rank.into_iter().enumerate() {
        for (l, &d) in res.dist.iter().enumerate() {
            distances[dg.part.to_global(rank, l) as usize] = d;
        }
        relax_msgs += res.relax_msgs;
        coalesced_msgs += res.coalesced_msgs;
    }
    ThreadedSsspOutput {
        distances,
        relax_msgs,
        coalesced_msgs,
    }
}

/// Coalesce (when enabled) and exchange a relax superstep's lanes. Counts
/// post-coalescing wire messages and removed duplicates, and tracks the
/// epoch high-water mark for the pool-shrink policy.
fn exchange_relax(
    ctx: &mut RankCtx<Wire>,
    out: &mut [Vec<Wire>],
    inbox: &mut Vec<Wire>,
    coalescing: bool,
    t: &mut Traffic,
) {
    if coalescing {
        for lane in out.iter_mut() {
            t.coalesced_msgs += coalesce_lane_min(lane, |w| w.relax().target, |w| w.relax().nd);
        }
    }
    for lane in out.iter() {
        t.relax_msgs += lane.len() as u64;
        t.hwm = t.hwm.max(lane.len());
    }
    ctx.exchange_pooled(out, inbox);
    t.hwm = t.hwm.max(inbox.len());
}

/// Exchange a request superstep's lanes. Requests are never coalesced —
/// each one expects its own response — and do not count as relax traffic.
fn exchange_reqs(
    ctx: &mut RankCtx<Wire>,
    out: &mut [Vec<Wire>],
    inbox: &mut Vec<Wire>,
    t: &mut Traffic,
) {
    for lane in out.iter() {
        t.hwm = t.hwm.max(lane.len());
    }
    ctx.exchange_pooled(out, inbox);
    t.hwm = t.hwm.max(inbox.len());
}

/// The §III-C decision on the thread backend: rank-local volume estimates
/// reduced through five allreduces, then the shared totals→decision
/// arithmetic. Forced and Always policies skip the collectives uniformly
/// (every rank holds the same config, so the SPMD sequence stays aligned).
#[allow(clippy::too_many_arguments)]
fn decide_threaded(
    ctx: &mut RankCtx<Wire>,
    lg: &LocalGraph,
    st: &RankState,
    k: u64,
    cfg: &SsspConfig,
    model: &MachineModel,
    p: usize,
    max_weight: u64,
    buckets_done: usize,
) -> LongPhaseMode {
    let heuristic = |ctx: &mut RankCtx<Wire>| -> LongPhaseMode {
        let (push, pull, scanned) = decide::rank_volumes(
            lg,
            st,
            k,
            &cfg.delta,
            cfg.ios,
            cfg.pull_estimator,
            max_weight,
        );
        let push_total = ctx.allreduce_sum(push);
        let pull_total = ctx.allreduce_sum(pull);
        let push_max = ctx.allreduce_max(push);
        let pull_max = ctx.allreduce_max(pull);
        let scan_max = ctx.allreduce_max(scanned);
        decide::decide_from_totals(
            cfg, model, p, push_total, pull_total, push_max, pull_max, scan_max,
        )
        .0
    };
    match &cfg.direction {
        DirectionPolicy::AlwaysPush => LongPhaseMode::Push,
        DirectionPolicy::AlwaysPull => LongPhaseMode::Pull,
        DirectionPolicy::Heuristic => heuristic(ctx),
        DirectionPolicy::Forced(seq) => match seq.get(buckets_done) {
            Some(&mode) => mode,
            None => heuristic(ctx),
        },
    }
}

/// One rank's whole run: the exact epoch loop of the simulated engine,
/// with every simulated collective replaced by its `RankCtx` counterpart
/// and every buffer rank-private.
fn rank_body(
    dg: &DistGraph,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
    ctx: &mut RankCtx<Wire>,
) -> RankResult {
    let r = ctx.rank();
    let p = ctx.num_ranks();
    let lg = &dg.locals[r];
    let part = &dg.part;
    let delta = cfg.delta;
    let n_total = dg.num_vertices() as u64;
    let mut st = RankState::new(r, part.local_count(r), dg.threads_per_rank);

    // Global weight extremes: a local scan over the weight-sorted rows,
    // reduced through two collectives (the simulated engine scans every
    // rank directly). Degenerate (edgeless) graphs collapse to (0, 0).
    let (mut w_lo, mut w_hi) = (u64::from(u32::MAX), 0u64);
    for v in 0..lg.num_local() {
        let (_, ws) = lg.row(v);
        if let (Some(&first), Some(&last)) = (ws.first(), ws.last()) {
            w_lo = w_lo.min(first as u64);
            w_hi = w_hi.max(last as u64);
        }
    }
    let mut min_weight = ctx.allreduce_min(w_lo);
    let mut max_weight = ctx.allreduce_max(w_hi);
    if dg.m_directed == 0 {
        min_weight = 0;
        max_weight = 0;
    }

    let pi = resolved_pi(cfg.intra_balance, dg.m_directed, n_total);
    let has_short = dg.m_directed > 0 && min_weight < delta.short_bound();

    let mut out: Vec<Vec<Wire>> = (0..p).map(|_| Vec::new()).collect();
    let mut inbox: Vec<Wire> = Vec::new();
    let mut req_inbox: Vec<Wire> = Vec::new();
    let mut t = Traffic {
        relax_msgs: 0,
        coalesced_msgs: 0,
        hwm: 0,
    };

    st.begin_phase();
    if part.owner(root) == r {
        st.relax(part.local_index(root), 0, &delta);
    }

    let mut k_prev: Option<u64> = None;
    let mut settled_total = 0u64;
    let mut buckets_done = 0usize;

    loop {
        // Bucket collective: smallest nonempty bucket across all ranks.
        let k = ctx.allreduce_min(st.next_nonempty_after(k_prev).unwrap_or(u64::MAX));
        if k == u64::MAX {
            break;
        }

        // Hybrid switch (§III-D): merge the remaining buckets and finish
        // with Bellman-Ford rounds.
        if let (Some(tau), Some(kp)) = (cfg.hybrid_tau, k_prev) {
            if decide::hybrid_should_switch(tau, settled_total, n_total) {
                st.collect_active_unsettled(kp);
                while ctx.any(!st.active.is_empty()) {
                    st.begin_phase();
                    st.loads.reset();
                    kernels::bf_send(lg, part, &mut st, pi, &mut |dst, m| {
                        out[dst].push(Wire::Relax(m))
                    });
                    exchange_relax(ctx, &mut out, &mut inbox, cfg.coalescing, &mut t);
                    kernels::apply_relax(&mut st, &delta, inbox.iter().map(Wire::relax));
                    st.collect_active_changed();
                }
                break;
            }
        }

        // Stage 1: repeated inner-short phases.
        st.collect_active_from_bucket(k);
        if has_short {
            while ctx.any(!st.active.is_empty()) {
                st.begin_phase();
                st.loads.reset();
                kernels::short_send(lg, part, &mut st, k, &delta, cfg.ios, pi, &mut |dst, m| {
                    out[dst].push(Wire::Relax(m))
                });
                exchange_relax(ctx, &mut out, &mut inbox, cfg.coalescing, &mut t);
                kernels::apply_relax(&mut st, &delta, inbox.iter().map(Wire::relax));
                st.collect_active_changed_in_bucket(k);
            }
        }

        // Stage 2: long-edge phase, push or pull.
        let mode = decide_threaded(ctx, lg, &st, k, cfg, model, p, max_weight, buckets_done);
        match mode {
            LongPhaseMode::Push => {
                st.begin_phase();
                st.loads.reset();
                kernels::long_push_send(
                    lg,
                    part,
                    &mut st,
                    k,
                    &delta,
                    cfg.ios,
                    pi,
                    &mut |dst, m| out[dst].push(Wire::Relax(m)),
                );
                exchange_relax(ctx, &mut out, &mut inbox, cfg.coalescing, &mut t);
                kernels::classify_apply_relax(&mut st, k, &delta, inbox.iter().map(Wire::relax));
            }
            LongPhaseMode::Pull => {
                if cfg.ios {
                    st.begin_phase();
                    st.loads.reset();
                    kernels::outer_short_send(lg, part, &mut st, k, &delta, pi, &mut |dst, m| {
                        out[dst].push(Wire::Relax(m))
                    });
                    exchange_relax(ctx, &mut out, &mut inbox, cfg.coalescing, &mut t);
                    kernels::apply_relax(&mut st, &delta, inbox.iter().map(Wire::relax));
                }
                st.begin_phase();
                st.loads.reset();
                kernels::pull_request_send(lg, part, &mut st, k, &delta, pi, &mut |dst, m| {
                    out[dst].push(Wire::Req(m))
                });
                exchange_reqs(ctx, &mut out, &mut req_inbox, &mut t);
                st.begin_phase();
                st.loads.reset();
                kernels::pull_respond(
                    part,
                    &mut st,
                    k,
                    req_inbox.iter().map(Wire::req),
                    &mut |dst, m| out[dst].push(Wire::Relax(m)),
                );
                exchange_relax(ctx, &mut out, &mut inbox, cfg.coalescing, &mut t);
                kernels::apply_relax(&mut st, &delta, inbox.iter().map(Wire::relax));
            }
        }

        // Settled-count collective (drives the hybrid switch; the paper
        // computes it at every epoch end).
        settled_total += ctx.allreduce_sum(st.bucket_count(k));
        k_prev = Some(k);
        buckets_done += 1;

        // Epoch-boundary pool bound: release lanes, inboxes and channel
        // spares that ballooned past 4× this epoch's high-water mark.
        ctx.trim_spares();
        for lane in out.iter_mut() {
            shrink_oversized(lane, t.hwm);
        }
        shrink_oversized(&mut inbox, t.hwm);
        shrink_oversized(&mut req_inbox, t.hwm);
        t.hwm = 0;
    }

    RankResult {
        dist: st.dist,
        relax_msgs: t.relax_msgs,
        coalesced_msgs: t.coalesced_msgs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sssp_graph::{gen, CsrBuilder};

    #[test]
    fn threaded_matches_sequential_dijkstra() {
        for seed in 0..3 {
            let g = CsrBuilder::new().build(&gen::uniform(120, 700, 30, seed));
            let expect = seq::dijkstra(&g, 0);
            let model = MachineModel::bgq_like();
            for p in [1usize, 3, 5] {
                let dg = Arc::new(DistGraph::build(&g, p, 2));
                for cfg in [
                    SsspConfig::dijkstra(),
                    SsspConfig::del(15),
                    SsspConfig::prune(20),
                    SsspConfig::opt(20),
                    SsspConfig::bellman_ford(),
                ] {
                    let out = threaded_delta_stepping(&dg, 0, &cfg, &model);
                    assert_eq!(out.distances, expect, "seed {seed} p {p}");
                }
            }
        }
    }

    #[test]
    fn threaded_matches_simulated_bit_identical() {
        let g = CsrBuilder::new().build(&gen::uniform(200, 1200, 40, 9));
        let model = MachineModel::bgq_like();
        for p in [1usize, 4, 6] {
            let dg = Arc::new(DistGraph::build(&g, p, 2));
            for cfg in [SsspConfig::opt(25), SsspConfig::prune(12).with_ios(false)] {
                let simulated = super::super::run_sssp(&dg, 0, &cfg, &model);
                let threaded = threaded_delta_stepping(&dg, 0, &cfg, &model);
                assert_eq!(threaded.distances, simulated.distances, "p {p}");
            }
        }
    }

    #[test]
    fn coalescing_toggle_preserves_distances_and_counts_savings() {
        // Dense-ish graph: plenty of parallel proposals per target, so the
        // coalescer must fire. Turning it off must not change distances,
        // only the wire counts.
        let g = CsrBuilder::new().build(&gen::uniform(80, 900, 25, 7));
        let dg = Arc::new(DistGraph::build(&g, 4, 2));
        let model = MachineModel::bgq_like();
        let on = threaded_delta_stepping(&dg, 0, &SsspConfig::opt(20), &model);
        let off =
            threaded_delta_stepping(&dg, 0, &SsspConfig::opt(20).with_coalescing(false), &model);
        assert_eq!(on.distances, off.distances);
        assert_eq!(off.coalesced_msgs, 0);
        assert!(on.coalesced_msgs > 0, "coalescer never fired");
        // Conservation: every message the coalesced run dropped is one the
        // uncoalesced run carried.
        assert_eq!(on.relax_msgs + on.coalesced_msgs, off.relax_msgs);
    }

    #[test]
    fn threaded_handles_degenerate_graphs() {
        // Single vertex, no edges.
        let g = CsrBuilder::new().build(&gen::path(1, 1));
        let dg = Arc::new(DistGraph::build(&g, 2, 1));
        let out = threaded_delta_stepping(&dg, 0, &SsspConfig::opt(10), &MachineModel::bgq_like());
        assert_eq!(out.distances, vec![0]);
        assert_eq!(out.relax_msgs, 0);

        // Disconnected pair: the far component stays unreached.
        let mut el = gen::path(2, 5);
        el.n = 4;
        el.push(2, 3, 1);
        let g = CsrBuilder::new().build(&el);
        let dg = Arc::new(DistGraph::build(&g, 3, 1));
        let out = threaded_delta_stepping(&dg, 0, &SsspConfig::del(4), &MachineModel::bgq_like());
        assert_eq!(out.distances, vec![0, 5, INF, INF]);
    }
}
